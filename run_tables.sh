#!/bin/bash
# Regenerates every paper table. Usage: ./run_tables.sh [scale] [extra flags...]
#   ./run_tables.sh small
#   ./run_tables.sh paper --episodes 1000
set -u
cd "$(dirname "$0")"
SCALE="${1:-small}"
shift || true
mkdir -p reports
for bin in table1 table2 table3 table4 table5 table6 timing ablation_encoder; do
  echo "=== $bin ($(date +%H:%M:%S)) ==="
  ./target/release/$bin --scale "$SCALE" "$@" 2>&1 | tee reports/${bin}.log
done
echo "ALL TABLES DONE $(date +%H:%M:%S)"
