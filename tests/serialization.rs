//! Model persistence: a trained θ serialised and loaded into a fresh model
//! must reproduce bit-identical predictions.

use fewner::prelude::*;
use fewner::tensor::{ParamStore, SavedParams};

#[test]
fn saved_theta_reproduces_identical_predictions() {
    let data = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&data, (8, 3, 5), 42).unwrap();
    let spec = EmbeddingSpec {
        dim: 20,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);
    let bb = BackboneConfig {
        word_dim: 20,
        hidden: 12,
        phi_dim: 10,
        slot_ctx_dim: 4,
        ..BackboneConfig::default_for(3)
    };
    let cfg = MetaConfig {
        meta_batch: 2,
        meta_lr: 1e-2,
        ..MetaConfig::default()
    };
    let mut trained = Fewner::new(bb.clone(), &enc, cfg.clone()).unwrap();
    let schedule = TrainConfig::new(3, 1).iterations(20).query_size(4).seed(9);
    fewner::core::Trainer::new()
        .train(&mut trained, &split.train, &enc, &cfg, &schedule)
        .unwrap();

    // Serialise θ through JSON (the SavedParams wire format).
    let saved = trained.theta.to_saved();
    let json = serde_round_trip(&saved);

    // A fresh model with the same architecture, loaded from the snapshot.
    let mut restored = Fewner::new(bb, &enc, cfg).unwrap();
    restored.theta.load_saved(&json).unwrap();

    let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let tasks = sampler.eval_set(17, 5).unwrap();
    for task in &tasks {
        let a = trained.adapt_and_predict(task, &enc).unwrap();
        let b = restored.adapt_and_predict(task, &enc).unwrap();
        assert_eq!(a, b, "predictions diverged after a save/load round trip");
    }
}

#[test]
fn loading_into_wrong_architecture_is_rejected() {
    let data = DatasetProfile::bionlp13cg().generate(0.02).unwrap();
    let spec = EmbeddingSpec {
        dim: 20,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);
    let small = BackboneConfig {
        word_dim: 20,
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        ..BackboneConfig::default_for(3)
    };
    let big = BackboneConfig {
        hidden: 16,
        ..small.clone()
    };
    let cfg = MetaConfig::default();
    let a = Fewner::new(small, &enc, cfg.clone()).unwrap();
    let mut b = Fewner::new(big, &enc, cfg).unwrap();
    let saved = a.theta.to_saved();
    assert!(
        b.theta.load_saved(&saved).is_err(),
        "shape mismatch must be rejected"
    );
}

#[test]
fn saved_params_json_is_stable() {
    let mut store = ParamStore::new();
    store.add("w", fewner::tensor::Array::from_vec(1, 2, vec![1.5, -2.5]));
    let saved = store.to_saved();
    let round = serde_round_trip(&saved);
    assert_eq!(round.entries.len(), 1);
    assert_eq!(round.entries[0].0, "w");
    assert_eq!(round.entries[0].1.data(), &[1.5, -2.5]);
}

fn serde_round_trip(saved: &SavedParams) -> SavedParams {
    use fewner::util::{FromJson, Json, ToJson};
    let json = saved.to_json().to_string();
    SavedParams::from_json(&Json::parse(&json).unwrap()).unwrap()
}
