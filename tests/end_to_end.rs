//! Cross-crate integration tests: full training → adaptation → evaluation
//! pipelines for every method, and the FEWNER-specific invariants the paper
//! claims (θ fixed at test time, adaptation only through φ).

use fewner::prelude::*;

fn fixture() -> (
    fewner::corpus::Dataset,
    fewner::corpus::TypeSplit,
    TokenEncoder,
) {
    let data = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&data, (8, 3, 5), 42).unwrap();
    let spec = EmbeddingSpec {
        dim: 20,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);
    (data, split, enc)
}

fn bb(cond: Conditioning) -> BackboneConfig {
    BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 12,
        phi_dim: 10,
        slot_ctx_dim: 4,
        conditioning: cond,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    }
}

fn meta() -> MetaConfig {
    MetaConfig {
        meta_lr: 1e-2,
        meta_batch: 2,
        inner_steps_train: 2,
        inner_steps_test: 4,
        ..MetaConfig::default()
    }
}

fn schedule(iters: usize) -> TrainConfig {
    TrainConfig::new(3, 1)
        .iterations(iters)
        .query_size(4)
        .seed(9)
}

#[test]
fn meta_training_improves_fewner_over_untrained() {
    let (_, split, enc) = fixture();
    let cfg = meta();
    let mut learner = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();

    let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let tasks = sampler.eval_set(77, 12).unwrap();
    let before = evaluate(&learner, &tasks, &enc).unwrap();

    fewner::core::Trainer::new()
        .train(&mut learner, &split.train, &enc, &cfg, &schedule(200))
        .unwrap();
    let after = evaluate(&learner, &tasks, &enc).unwrap();
    assert!(
        after.mean > before.mean + 0.02,
        "training must help: {} -> {}",
        before.as_percent(),
        after.as_percent()
    );
}

#[test]
fn every_method_trains_and_produces_valid_bio() {
    let (_, split, enc) = fixture();
    let cfg = meta();
    let mut learners: Vec<Box<dyn EpisodicLearner>> = vec![
        Box::new(Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap()),
        Box::new(Maml::new(bb(Conditioning::None), &enc, cfg.clone()).unwrap()),
        Box::new(FineTuneLearner::new(bb(Conditioning::None), &enc, cfg.clone()).unwrap()),
        Box::new(ProtoLearner::new(bb(Conditioning::None), &enc, cfg.clone()).unwrap()),
        Box::new(
            SnailLearner::new(
                bb(Conditioning::None),
                SnailConfig::default_for(3),
                &enc,
                cfg.clone(),
            )
            .unwrap(),
        ),
        Box::new(FrozenLmLearner::new(LmFlavor::Elmo, &enc, 3, cfg.clone()).unwrap()),
    ];

    let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
    let mut rng = Rng::new(5);
    let batch: Vec<_> = (0..2).map(|_| sampler.sample(&mut rng).unwrap()).collect();
    let eval_sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let task = &eval_sampler.eval_set(7, 1).unwrap()[0];
    let tags = task.tag_set();

    for learner in &mut learners {
        let loss = learner.meta_step(&batch, &enc).unwrap();
        assert!(loss.is_finite(), "{}", learner.name());
        let preds = learner.adapt_and_predict(task, &enc).unwrap();
        assert_eq!(preds.len(), task.query.len(), "{}", learner.name());
        for (pred_idx, sent) in preds.iter().zip(&task.query) {
            assert_eq!(pred_idx.len(), sent.len(), "{}", learner.name());
            // CRF-decoding methods are BIO-valid by construction; token
            // classifiers may emit stray I-tags, which lenient span
            // decoding must still handle without panicking.
            let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
            let _ = fewner::text::tags_to_spans(&pred);
        }
    }
}

#[test]
fn fewner_adaptation_touches_only_phi() {
    let (_, split, enc) = fixture();
    let cfg = meta();
    let mut learner = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();
    fewner::core::Trainer::new()
        .train(&mut learner, &split.train, &enc, &cfg, &schedule(10))
        .unwrap();

    let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let tasks = sampler.eval_set(31, 4).unwrap();
    let theta_before = learner.theta.snapshot();
    for task in &tasks {
        learner.adapt_and_predict(task, &enc).unwrap();
    }
    assert_eq!(theta_before, learner.theta.snapshot());
}

#[test]
fn fixed_eval_seed_gives_identical_scores_across_runs() {
    let (_, split, enc) = fixture();
    let cfg = meta();
    let mut learner = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();
    fewner::core::Trainer::new()
        .train(&mut learner, &split.train, &enc, &cfg, &schedule(15))
        .unwrap();

    let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let a = evaluate(&learner, &sampler.eval_set(123, 8).unwrap(), &enc).unwrap();
    let b = evaluate(&learner, &sampler.eval_set(123, 8).unwrap(), &enc).unwrap();
    assert_eq!(a.mean, b.mean);
    assert_eq!(a.ci95, b.ci95);
}

#[test]
fn parallel_evaluation_matches_serial_on_trained_model() {
    let (_, split, enc) = fixture();
    let cfg = meta();
    let mut learner = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();
    fewner::core::Trainer::new()
        .train(&mut learner, &split.train, &enc, &cfg, &schedule(10))
        .unwrap();
    let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let tasks = sampler.eval_set(5, 6).unwrap();
    let serial = evaluate(&learner, &tasks, &enc).unwrap();
    let parallel = evaluate_parallel(&learner, &tasks, &enc, 2).unwrap();
    assert!((serial.mean - parallel.mean).abs() < 1e-12);
}

#[test]
fn bilstm_encoder_is_a_drop_in_replacement() {
    // The paper's model-agnosticism claim: swap the BiGRU for a BiLSTM and
    // the whole meta-learning pipeline must run unchanged.
    let (_, split, enc) = fixture();
    let cfg = meta();
    let lstm_bb = BackboneConfig {
        encoder: EncoderKind::BiLstm,
        ..bb(Conditioning::Film)
    };
    let mut learner = Fewner::new(lstm_bb, &enc, cfg.clone()).unwrap();
    fewner::core::Trainer::new()
        .train(&mut learner, &split.train, &enc, &cfg, &schedule(20))
        .unwrap();
    let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let score = evaluate(&learner, &sampler.eval_set(9, 5).unwrap(), &enc).unwrap();
    assert!((0.0..=1.0).contains(&score.mean));
    // Parameter names reflect the encoder choice.
    assert!(learner.theta.get("bilstm.fwd.wx").is_some());
    assert!(learner.theta.get("bigru.fwd.wx").is_none());
}

#[test]
fn whole_pipeline_works_on_cross_domain_data() {
    // GENIA-profile source, BioNLP-profile target, full-view training.
    let source = DatasetProfile::genia().generate(0.015).unwrap();
    let target = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let train = full_view(&source);
    let (_val, test) = holdout_target(&target, 11).unwrap();
    let spec = EmbeddingSpec {
        dim: 20,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&source, &target], &spec, 4);
    let cfg = meta();
    let mut learner = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();
    fewner::core::Trainer::new()
        .train(&mut learner, &train, &enc, &cfg, &schedule(10))
        .unwrap();
    let sampler = EpisodeSampler::new(&test, 3, 1, 4).unwrap();
    let score = evaluate(&learner, &sampler.eval_set(3, 5).unwrap(), &enc).unwrap();
    assert!((0.0..=1.0).contains(&score.mean));
}
