//! Compile-pins the prelude surface.
//!
//! This test imports **only** from `fewner::prelude` and touches every name
//! the prelude exports. If a re-export is dropped (or a type stops being
//! constructible the documented way), this file stops compiling — making
//! prelude changes a deliberate, reviewed act rather than collateral damage.

use fewner::prelude::*;

/// Mentioning each type in a signature pins the re-export at compile time
/// without needing runtime values for all of them.
#[allow(dead_code, clippy::too_many_arguments)]
fn surface_pins(
    _fewner: &Fewner,
    _ctx: &AdaptedCtx,
    _maml: &Maml,
    _fine: &FineTuneLearner,
    _proto: &ProtoLearner,
    _snail: &SnailLearner,
    _frozen: &FrozenLmLearner,
    _learner: &dyn EpisodicLearner,
    _backbone: &Backbone,
    _server: &Server,
    _task: &Task,
    _sampler: &EpisodeSampler,
    _counts: &F1Counts,
    _throughput: &Throughput,
    _summary: &TraceSummary,
    _log: &TrainingLog,
    _second: SecondOrder,
    _cond: Conditioning,
    _enc_kind: EncoderKind,
    _head: HeadKind,
    _lm: LmFlavor,
    _snail_cfg: &SnailConfig,
    _genre: Genre,
    _ace: AceDomain,
) {
    // Free functions from the prelude, pinned by name (impl-Trait arguments
    // keep them out of fn-pointer position, so wrap the mentions).
    let _ = Trainer::new;
    let _ = evaluate;
    let _ = evaluate_parallel::<Fewner>;
    let _ = |f: fn() -> fewner::Result<Vec<Vec<usize>>>| measure_predictions(f);
    let _ = |tokens: &[String], gold: &[Tag], pred: &[Tag]| {
        qualitative_line(tokens, gold, pred, |slot| slot.to_string())
    };
    let _ = split_types;
    let _ = split_sentences;
    let _ = full_view;
    let _ = holdout_target;
}

#[test]
fn prelude_values_construct() {
    // Construct everything that is cheap to construct, through the prelude
    // names alone.
    let opts = ServeOptions::new()
        .cache(CachePolicy::lru(8).ttl_secs(60))
        .batch(16);
    assert_eq!(opts.batch_size(), 16);
    let cfg = ServerConfig::new().workers(2).queue_limit(8);
    assert_eq!(cfg.workers, 2);
    let support = SupportSentence {
        tokens: vec!["flu".to_string()],
        tags: vec![Tag::parse("B-0").unwrap()],
    };
    assert_eq!(support.tags[0], Tag::B(0));
    let tags = TagSet::new(3).unwrap();
    assert_eq!(tags.len(), 7);
    let _rng = Rng::new(7);
    let _meta = MetaConfig::default();
    let _train_cfg = TrainConfig::new(5, 1).iterations(1);
    let _spec = EmbeddingSpec::default();
    let _bb = BackboneConfig::default_for(3);
    let _tracer = Tracer::disabled();
    let _profile = DatasetProfile::genia();
}
