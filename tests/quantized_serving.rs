//! End-to-end F1-delta tolerance suite for quantized θ serving.
//!
//! The kernel-equivalence harness guarantees bitwise-identical decoding
//! across kernel backends; quantized weights (`--weights f16|i8`) are the
//! one deliberately *lossy* serving configuration, so their contract is an
//! F1 budget instead: a meta-trained model evaluated with f16- or
//! i8-rounded θ must score within a pinned delta of the f32 baseline on
//! held-out episodes. The budgets here (and the bitwise/ULP tiers) are
//! documented in DESIGN.md §5h.

use fewner::core::Checkpoint;
use fewner::prelude::*;
use fewner::tensor::WeightFormat;

/// Maximum allowed |F1(quantized) − F1(f32)| per format. f16 carries 11
/// bit mantissas — rounding is far below the model's own noise floor; i8
/// keeps ~7 bits per row and gets a wider (but still small) budget.
const F16_F1_BUDGET: f64 = 0.01;
const I8_F1_BUDGET: f64 = 0.03;

struct Trained {
    learner: Fewner,
    enc: TokenEncoder,
    tasks: Vec<fewner::episode::Task>,
}

fn train_small() -> Trained {
    let data = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&data, (8, 3, 5), 42).unwrap();
    let spec = EmbeddingSpec {
        dim: 20,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);
    let bb = BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 12,
        phi_dim: 10,
        slot_ctx_dim: 4,
        conditioning: Conditioning::Film,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    };
    let cfg = MetaConfig {
        meta_lr: 1e-2,
        meta_batch: 2,
        inner_steps_train: 2,
        inner_steps_test: 4,
        ..MetaConfig::default()
    };
    let mut learner = Fewner::new(bb, &enc, cfg.clone()).unwrap();
    fewner::core::Trainer::new()
        .train(
            &mut learner,
            &split.train,
            &enc,
            &cfg,
            &TrainConfig::new(3, 1).iterations(120).query_size(4).seed(9),
        )
        .unwrap();
    let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
    let tasks = sampler.eval_set(77, 10).unwrap();
    Trained {
        learner,
        enc,
        tasks,
    }
}

#[test]
fn quantized_theta_stays_within_the_f1_budget() {
    let mut t = train_small();
    let baseline = evaluate(&t.learner, &t.tasks, &t.enc).unwrap();
    assert!(baseline.mean.is_finite());

    let pristine = t.learner.theta.snapshot();
    for (format, budget) in [
        (WeightFormat::F16, F16_F1_BUDGET),
        (WeightFormat::I8, I8_F1_BUDGET),
    ] {
        t.learner.theta.quantize_all(format);
        let quantized = evaluate(&t.learner, &t.tasks, &t.enc).unwrap();
        let delta = (quantized.mean - baseline.mean).abs();
        assert!(
            delta <= budget,
            "{}: F1 {} vs f32 baseline {} — delta {delta:.4} exceeds budget {budget}",
            format.name(),
            quantized.as_percent(),
            baseline.as_percent()
        );
        t.learner.theta.restore(&pristine).unwrap();
    }

    // Restoring really undid the rounding: the baseline reproduces exactly.
    let again = evaluate(&t.learner, &t.tasks, &t.enc).unwrap();
    assert_eq!(again.mean, baseline.mean);
}

/// Serving a quantized checkpoint *file* and quantizing in memory
/// (`--weights`) are the same thing: identical θ, identical scores.
#[test]
fn quantized_checkpoint_file_equals_in_memory_quantization() {
    let mut t = train_small();
    let dir = std::env::temp_dir().join(format!("fewner-quant-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for format in [WeightFormat::F16, WeightFormat::I8] {
        let path = dir.join(format!("model.{}.json", format.name()));
        Checkpoint::capture(&t.learner)
            .save_with_weights(&path, format)
            .unwrap();
        let from_file = Checkpoint::load(&path).unwrap().restore(&t.enc).unwrap();

        let pristine = t.learner.theta.snapshot();
        t.learner.theta.quantize_all(format);
        assert_eq!(
            t.learner.theta.snapshot(),
            from_file.theta.snapshot(),
            "{}: file path and in-memory path must agree bitwise",
            format.name()
        );
        let a = evaluate(&t.learner, &t.tasks, &t.enc).unwrap();
        let b = evaluate(&from_file, &t.tasks, &t.enc).unwrap();
        assert_eq!(a.mean, b.mean, "{}", format.name());
        t.learner.theta.restore(&pristine).unwrap();
    }
    std::fs::remove_dir_all(dir).ok();
}
