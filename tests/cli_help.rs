//! Pins the CLI help text and the unified flag vocabulary.
//!
//! The snapshot (`tests/snapshots/usage.txt`) makes flag renames a visible,
//! reviewed diff. Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p fewner --test cli_help
//! ```

use fewner::cli::USAGE;

const SNAPSHOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/snapshots/usage.txt");

#[test]
fn usage_matches_snapshot() {
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(SNAPSHOT, USAGE).unwrap();
    }
    let snap = std::fs::read_to_string(SNAPSHOT).unwrap();
    assert_eq!(
        USAGE, snap,
        "help text drifted from tests/snapshots/usage.txt; \
         rerun with UPDATE_SNAPSHOTS=1 if the change is intentional"
    );
}

#[test]
fn unified_flags_are_documented_once_each() {
    // The unified vocabulary: these names mean the same thing in every
    // subcommand, so each is documented exactly once (in `common flags`
    // or its owning section).
    for unified in [
        "--model",
        "--trace",
        "--checkpoint-dir",
        "--seed",
        "--scale",
    ] {
        let count = USAGE.matches(unified).count();
        assert_eq!(count, 1, "`{unified}` must appear exactly once in USAGE");
    }
}

#[test]
fn legacy_flag_names_are_gone() {
    // `--out` was train's old name for the checkpoint path; it still parses
    // for compatibility but must not be advertised.
    assert!(!USAGE.contains("--out"), "advertise --model, not --out");
}

#[test]
fn every_subcommand_is_listed() {
    for cmd in [
        "corpus",
        "train",
        "train-sharded",
        "evaluate",
        "demo",
        "predict",
        "serve",
        "trace",
    ] {
        assert!(USAGE.contains(cmd), "usage must mention `{cmd}`");
    }
}
