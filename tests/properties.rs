//! Cross-crate property-based tests on the system's core invariants.

use fewner::prelude::*;
use fewner::text::span::SlotSpan;
use fewner::text::{spans_to_tags, tags_to_spans, validate_tags};
use fewner::util::Rng as FewnerRng;
use proptest::prelude::*;

/// Strategy: a set of non-overlapping spans in a sentence of length `len`
/// over `ways` slots.
fn arb_spans(len: usize, ways: usize) -> impl Strategy<Value = Vec<SlotSpan>> {
    proptest::collection::vec((0..len, 1..4usize, 0..ways), 0..5).prop_map(move |raw| {
        let mut spans: Vec<SlotSpan> = Vec::new();
        for (start, width, slot) in raw {
            let end = (start + width).min(len);
            if start >= end {
                continue;
            }
            let candidate = SlotSpan { start, end, slot };
            if spans
                .iter()
                .all(|s| candidate.end <= s.start || s.end <= candidate.start)
            {
                spans.push(candidate);
            }
        }
        spans.sort();
        spans
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// spans → tags → spans is the identity for valid non-overlapping spans.
    #[test]
    fn span_tag_round_trip(spans in arb_spans(12, 3)) {
        let tags = TagSet::new(3).unwrap();
        let encoded = spans_to_tags(12, &spans, &tags).unwrap();
        validate_tags(&encoded, &tags).unwrap();
        let decoded = tags_to_spans(&encoded);
        prop_assert_eq!(decoded, spans);
    }

    /// Episode construction invariants hold across seeds and (N, K).
    #[test]
    fn episode_invariants(seed in 0u64..500, n in 2usize..4, k in 1usize..3) {
        let data = DatasetProfile::bionlp13cg().generate(0.04).unwrap();
        let split = split_types(&data, (8, 3, 5), 42).unwrap();
        let sampler = EpisodeSampler::new(&split.train, n, k, 4).unwrap();
        let task = sampler.sample(&mut FewnerRng::new(seed)).unwrap();
        task.validate().unwrap();
        // Support counts per slot ≥ K and the tag sets are in range.
        for c in task.support_slot_counts() {
            prop_assert!(c >= k);
        }
        let tags = task.tag_set();
        for s in task.support.iter().chain(&task.query) {
            validate_tags(&s.tags, &tags).unwrap();
        }
    }

    /// F1 is within [0, 1], symmetric in exact matches, and 1 for identity.
    #[test]
    fn f1_bounds(spans_a in arb_spans(10, 3), spans_b in arb_spans(10, 3)) {
        let mut counts = F1Counts::default();
        counts.add_spans(&spans_a, &spans_b);
        let f1 = counts.f1();
        prop_assert!((0.0..=1.0).contains(&f1));

        let mut identity = F1Counts::default();
        identity.add_spans(&spans_a, &spans_a);
        prop_assert_eq!(identity.f1(), 1.0);
    }

    /// Corpus generation is pure in its seed: same profile → same corpus.
    #[test]
    fn corpus_purity(scale_milli in 5u32..20) {
        let scale = scale_milli as f64 / 1000.0;
        let a = DatasetProfile::genia().generate(scale).unwrap();
        let b = DatasetProfile::genia().generate(scale).unwrap();
        prop_assert_eq!(a.sentences.len(), b.sentences.len());
        prop_assert_eq!(&a.sentences[0], &b.sentences[0]);
        let last = a.sentences.len() - 1;
        prop_assert_eq!(&a.sentences[last], &b.sentences[last]);
    }

    /// Viterbi decoding always yields BIO-valid sequences whatever the
    /// (finite) scores.
    #[test]
    fn viterbi_always_valid(seed in 0u64..200, len in 1usize..8) {
        let tags = TagSet::new(2).unwrap();
        let mut rng = FewnerRng::new(seed);
        let emissions = fewner::tensor::Array::uniform(len, 5, -3.0, 3.0, &mut rng);
        let trans = fewner::tensor::Array::uniform(5, 5, -2.0, 2.0, &mut rng);
        let start = fewner::tensor::Array::uniform(1, 5, -2.0, 2.0, &mut rng);
        let path = fewner::models::viterbi(&emissions, &trans, &start, &tags);
        let decoded: Vec<Tag> = path.iter().map(|&i| tags.tag(i)).collect();
        validate_tags(&decoded, &tags).unwrap();
    }
}
