//! `fewner` — command-line interface to the reproduction.
//!
//! ```text
//! fewner corpus   --profile genia --scale 0.05          # corpus statistics
//! fewner train    --profile genia --scale 0.05 --iterations 300 \
//!                 --out model.json                      # meta-train + checkpoint
//! fewner evaluate --profile genia --scale 0.05 --model model.json \
//!                 --episodes 100                        # score on held-out tasks
//! fewner demo     --profile bionlp13cg --scale 0.2      # train briefly, show output
//! fewner predict  --profile genia --scale 0.05 --model model.json \
//!                 --episodes 3                           # serve: adapt + stream predictions
//! ```
//!
//! Every run is deterministic given its flags; profiles are the six paper
//! datasets plus the ACE sub-domains (`ace-bc`, `ace-bn`, …).

use std::collections::HashMap;
use std::process::ExitCode;

use fewner::core::Checkpoint;
use fewner::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `trace` takes positional arguments (`fewner trace summarize <path>`),
    // unlike the flag-driven commands.
    if args.first().map(String::as_str) == Some("trace") {
        return match cmd_trace(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some((command, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "corpus" => cmd_corpus(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "demo" => cmd_demo(&flags),
        "predict" => cmd_predict(&flags),
        _ => {
            eprintln!("unknown command `{command}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: fewner <corpus|train|evaluate|demo|predict|trace> [flags]
  common flags:
    --profile <nne|fg-ner|genia|ontonotes|bionlp13cg|slot-filling|conll-like|
               ace-bc|ace-bn|ace-cts|ace-nw|ace-un|ace-wl>
    --scale <f64>          corpus scale, 1.0 = paper size (default 0.05)
    --seed <u64>           experiment seed (default 42)
  train/evaluate/demo:
    --ways <N> --shots <K> (default 5, 1)
    --iterations <N>       meta-iterations (default 300)
    --episodes <N>         evaluation episodes (default 50)
    --threads <N>          meta-gradient worker threads, 0 = all cores
                           (default 1; FEWNER_THREADS overrides)
    --out/--model <path>   checkpoint file
  train only:
    --checkpoint-every <N> write a full training snapshot every N iterations
                           (rolling, newest two kept; default 0 = off)
    --checkpoint-dir <dir> snapshot directory (default `checkpoints`)
    --resume <dir>         continue a killed run from the newest valid
                           snapshot in <dir>
    --trace <path>         write a structured JSONL trace of the run
  predict only:
    --episodes <N>         tasks to serve (default 3)
    --show <N>             query sentences to print per task (default 5)
    --trace <path>         write a structured JSONL trace of the run
  trace:
    fewner trace summarize <path>   per-phase latency percentiles, counters,
                                    and the adaptation-vs-training cost split";

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let mut it = args.iter();
    let command = it.next()?.clone();
    let mut flags = HashMap::new();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        let value = it.next()?;
        flags.insert(key.to_string(), value.clone());
    }
    Some((command, flags))
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn profile(flags: &HashMap<String, String>) -> fewner::Result<DatasetProfile> {
    let name = flags.get("profile").map(String::as_str).unwrap_or("genia");
    Ok(match name {
        "nne" => DatasetProfile::nne(),
        "fg-ner" => DatasetProfile::fg_ner(),
        "genia" => DatasetProfile::genia(),
        "ontonotes" => DatasetProfile::ontonotes(),
        "bionlp13cg" => DatasetProfile::bionlp13cg(),
        "slot-filling" => DatasetProfile::slot_filling(),
        "conll-like" => DatasetProfile::conll_like(),
        "ace-bc" => DatasetProfile::ace2005(AceDomain::Bc),
        "ace-bn" => DatasetProfile::ace2005(AceDomain::Bn),
        "ace-cts" => DatasetProfile::ace2005(AceDomain::Cts),
        "ace-nw" => DatasetProfile::ace2005(AceDomain::Nw),
        "ace-un" => DatasetProfile::ace2005(AceDomain::Un),
        "ace-wl" => DatasetProfile::ace2005(AceDomain::Wl),
        other => {
            return Err(fewner::Error::InvalidConfig(format!(
                "unknown profile `{other}`"
            )))
        }
    })
}

/// A type split sized to the profile (paper splits where defined, a 60/15/25
/// type partition otherwise).
fn split_for(
    p: &DatasetProfile,
    data: &fewner::corpus::Dataset,
    seed: u64,
) -> fewner::Result<fewner::corpus::TypeSplit> {
    let counts = match p.name {
        "NNE" => (52, 10, 15),
        "FG-NER" => (163, 15, 20),
        "GENIA" => (18, 8, 10),
        _ => {
            let n = data.types.len();
            let train = (n * 3) / 5;
            let val = n / 5;
            (train, val, n - train - val)
        }
    };
    split_types(data, counts, seed)
}

fn build_encoder(data: &fewner::corpus::Dataset) -> TokenEncoder {
    let spec = EmbeddingSpec {
        dim: 32,
        ..EmbeddingSpec::default()
    };
    TokenEncoder::build(&[data], &spec, 4)
}

fn backbone(ways: usize) -> BackboneConfig {
    BackboneConfig {
        word_dim: 32,
        char_dim: 10,
        char_filters: 8,
        char_widths: vec![2, 3],
        hidden: 24,
        phi_dim: 24,
        slot_ctx_dim: 8,
        ..BackboneConfig::default_for(ways)
    }
}

fn meta() -> MetaConfig {
    MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    }
}

fn cmd_corpus(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let data = p.generate(scale)?;
    let stats = data.stats();
    println!(
        "{}: genre {}, {} types, {} sentences, {} mentions ({:.2}/sentence)",
        p.name,
        data.genre.name(),
        stats.types,
        stats.sentences,
        stats.mentions,
        stats.mentions as f64 / stats.sentences as f64
    );
    println!("\nsample sentences:");
    for s in data.sentences.iter().take(3) {
        println!("  {}", s.display_with(|t| data.type_name(t).to_string()));
    }
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let seed = flag(flags, "seed", 42u64);
    let ways = flag(flags, "ways", 5usize);
    let shots = flag(flags, "shots", 1usize);
    let iterations = flag(flags, "iterations", 300usize);
    let threads = flag(flags, "threads", 1usize);
    let checkpoint_every = flag(flags, "checkpoint-every", 0usize);
    let resume_dir = flags.get("resume");
    let ckpt_dir = flags
        .get("checkpoint-dir")
        .or(resume_dir)
        .cloned()
        .unwrap_or_else(|| "checkpoints".to_string());

    let data = p.generate(scale)?;
    let split = split_for(&p, &data, seed)?;
    let enc = build_encoder(&data);
    let cfg = meta();
    let mut learner = Fewner::new(backbone(ways), &enc, cfg.clone())?;
    let mut schedule = TrainConfig::new(ways, shots)
        .iterations(iterations)
        .query_size(6)
        .seed(seed)
        .threads(threads);
    if checkpoint_every > 0 {
        schedule = schedule
            .checkpoint_every(checkpoint_every)
            .checkpoint_dir(&ckpt_dir);
        println!("rolling snapshots every {checkpoint_every} iterations in {ckpt_dir}/");
    }
    if let Some(path) = flags.get("trace") {
        schedule = schedule.trace(path);
        println!("tracing to {path}");
    }
    println!(
        "meta-training FEWNER on {} ({} train sentences, {} train types)…",
        p.name,
        split.train.len(),
        split.train.types.len()
    );
    let log = match resume_dir {
        Some(dir) => {
            println!("resuming from the newest valid snapshot in {dir}/…");
            fewner::core::resume(&mut learner, &split.train, &enc, &cfg, &schedule, dir)?
        }
        None => fewner::core::train(&mut learner, &split.train, &enc, &cfg, &schedule)?,
    };
    println!(
        "trained {} tasks in {:.1}s; loss {:.3} → {:.3}",
        log.tasks_seen,
        log.wall_secs,
        log.losses.first().copied().unwrap_or(f32::NAN),
        log.tail_loss(10).unwrap_or(f32::NAN)
    );
    if let Some(path) = flags.get("out") {
        Checkpoint::capture(&learner).save(path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let seed = flag(flags, "seed", 42u64);
    let ways = flag(flags, "ways", 5usize);
    let shots = flag(flags, "shots", 1usize);
    let episodes = flag(flags, "episodes", 50usize);

    let data = p.generate(scale)?;
    let split = split_for(&p, &data, seed)?;
    let enc = build_encoder(&data);
    let learner = match flags.get("model") {
        Some(path) => Checkpoint::load(path)?.restore(&enc)?,
        None => {
            return Err(fewner::Error::InvalidConfig(
                "evaluate requires --model <checkpoint>".into(),
            ))
        }
    };
    let sampler = EpisodeSampler::new(&split.test, ways, shots, 6)?;
    let tasks = sampler.eval_set(0xE7A1, episodes)?;
    let score = evaluate(&learner, &tasks, &enc)?;
    println!(
        "{} {}-way {}-shot over {} episodes: F1 {}",
        p.name,
        ways,
        shots,
        episodes,
        score.as_percent()
    );
    Ok(())
}

/// `fewner predict` — the serving path: load a trained checkpoint, adapt the
/// task context φ to each sampled support set, and stream query predictions
/// with a tokens/sec report. Decoding runs on the gradient-free [`Infer`]
/// executor (no tape, recycled buffers); only φ-adaptation builds tapes.
///
/// [`Infer`]: fewner::tensor::Infer
fn cmd_predict(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let seed = flag(flags, "seed", 42u64);
    let ways = flag(flags, "ways", 5usize);
    let shots = flag(flags, "shots", 1usize);
    let episodes = flag(flags, "episodes", 3usize);
    let show = flag(flags, "show", 5usize);

    let data = p.generate(scale)?;
    let split = split_for(&p, &data, seed)?;
    let enc = build_encoder(&data);
    let learner = match flags.get("model") {
        Some(path) => Checkpoint::load(path)?.restore(&enc)?,
        None => {
            return Err(fewner::Error::InvalidConfig(
                "predict requires --model <checkpoint>".into(),
            ))
        }
    };
    let tracer = match flags.get("trace") {
        Some(path) => Tracer::jsonl(path),
        None => Tracer::disabled(),
    };
    let sampler = EpisodeSampler::new(&split.test, ways, shots, 6)?;
    let tasks = sampler.eval_set(0xE7A1, episodes)?;
    let mut total = Throughput::default();
    for (i, task) in tasks.iter().enumerate() {
        let (preds, t) = measure_predictions(|| learner.serve_task(task, &enc, &tracer))?;
        total.merge(&t);
        tracer.observe("serve/tokens_per_sec", t.tokens_per_sec());
        let tags = task.tag_set();
        println!(
            "task {}/{}: adapted φ to {} support sentences; {}",
            i + 1,
            tasks.len(),
            task.support.len(),
            t.render()
        );
        for (pred_idx, sent) in preds.iter().zip(&task.query).take(show) {
            let pred: Vec<Tag> = pred_idx.iter().map(|&j| tags.tag(j)).collect();
            println!(
                "  {}",
                qualitative_line(&sent.tokens, &sent.tags, &pred, |slot| {
                    data.type_name(task.slot_types[slot]).to_string()
                })
            );
        }
    }
    // Buffer-pool behaviour of the gradient-free executor, accumulated over
    // every per-task `Infer` dropped during serving.
    let pool = fewner::tensor::infer_global_stats();
    tracer.gauge("infer/pool_hits", pool.pool_hits as f64);
    tracer.gauge("infer/pool_misses", pool.pool_misses as f64);
    tracer.gauge("infer/arena_high_water", pool.high_water as f64);
    tracer.flush()?;
    println!("\nserved {} tasks: {}", tasks.len(), total.render());
    println!(
        "infer arena: {} pool hits, {} misses, high-water {} slots",
        pool.pool_hits, pool.pool_misses, pool.high_water
    );
    Ok(())
}

/// `fewner trace summarize <path>...` — render trace files written by
/// `--trace`: per-phase latency percentiles, counters, gauges, events, and
/// the paper's §4.5.2 adaptation-vs-training cost split. Passing both a
/// training and a serving trace merges them into one report, which is how
/// the split covers both phases.
fn cmd_trace(args: &[String]) -> fewner::Result<()> {
    match args {
        [verb, paths @ ..] if verb == "summarize" && !paths.is_empty() => {
            print!("{}", TraceSummary::from_files(paths)?.render());
            Ok(())
        }
        _ => Err(fewner::Error::InvalidConfig(
            "usage: fewner trace summarize <path>...".into(),
        )),
    }
}

fn cmd_demo(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.2f64);
    let seed = flag(flags, "seed", 42u64);
    let data = p.generate(scale)?;
    let split = split_for(&p, &data, seed)?;
    let enc = build_encoder(&data);
    let cfg = meta();
    let mut learner = Fewner::new(backbone(5), &enc, cfg.clone())?;
    let schedule = TrainConfig::new(5, 1)
        .iterations(flag(flags, "iterations", 150usize))
        .query_size(6)
        .seed(seed)
        .threads(flag(flags, "threads", 1usize));
    println!("training briefly on {}…", p.name);
    fewner::core::train(&mut learner, &split.train, &enc, &cfg, &schedule)?;

    let sampler = EpisodeSampler::new(&split.test, 5, 1, 6)?;
    let task = sampler.eval_set(0xE7A1, 1)?.remove(0);
    let preds = learner.adapt_and_predict(&task, &enc)?;
    let tags = task.tag_set();
    println!("\nadapted to a brand-new 5-way 1-shot task; predictions:");
    for (pred_idx, sent) in preds.iter().zip(&task.query).take(5) {
        let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
        println!(
            "  {}",
            qualitative_line(&sent.tokens, &sent.tags, &pred, |slot| {
                data.type_name(task.slot_types[slot]).to_string()
            })
        );
    }
    Ok(())
}
