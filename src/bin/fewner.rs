//! `fewner` — command-line interface to the reproduction.
//!
//! ```text
//! fewner corpus   --profile genia --scale 0.05          # corpus statistics
//! fewner train    --profile genia --scale 0.05 --iterations 300 \
//!                 --model model.json                    # meta-train + checkpoint
//! fewner evaluate --profile genia --scale 0.05 --model model.json \
//!                 --episodes 100                        # score on held-out tasks
//! fewner demo     --profile bionlp13cg --scale 0.2      # train briefly, show output
//! fewner predict  --profile genia --scale 0.05 --model model.json \
//!                 --episodes 3                          # adapt + stream predictions
//! fewner serve    --profile genia --scale 0.05 --model model.json \
//!                 --addr 127.0.0.1:0 --phi-dir phis     # multi-tenant daemon
//! ```
//!
//! Every run is deterministic given its flags; profiles are the six paper
//! datasets plus the ACE sub-domains (`ace-bc`, `ace-bn`, …). Flag names are
//! shared across subcommands (`--model`, `--trace`, `--seed` always mean the
//! same thing) and defined once in [`fewner::cli`].

use std::collections::HashMap;
use std::io::Write as _;
use std::net::TcpListener;
use std::process::ExitCode;

use fewner::cli::{
    backbone, build_encoder, flag, meta, parse_args, profile, split_counts, split_for, weights,
    USAGE,
};
use fewner::core::Checkpoint;
use fewner::corpus::CorpusSource;
use fewner::prelude::*;
use fewner::tensor::WeightFormat;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `trace` takes positional arguments (`fewner trace summarize <path>`),
    // unlike the flag-driven commands.
    if args.first().map(String::as_str) == Some("trace") {
        return match cmd_trace(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some((command, flags)) = parse_args(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "corpus" => cmd_corpus(&flags),
        "train" => cmd_train(&flags),
        "train-sharded" => cmd_train_sharded(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "demo" => cmd_demo(&flags),
        "predict" => cmd_predict(&flags),
        "serve" => cmd_serve(&flags),
        _ => {
            eprintln!("unknown command `{command}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `--trace` flag, shared by train/predict/serve.
fn tracer_for(flags: &HashMap<String, String>) -> Tracer {
    match flags.get("trace") {
        Some(path) => Tracer::jsonl(path),
        None => Tracer::disabled(),
    }
}

/// Loads the checkpoint named by the unified `--model` flag, then applies
/// the `--weights` precision. Quantized checkpoint *files* are detected
/// transparently; the flag additionally lets a full-precision checkpoint be
/// served rounded (`--weights i8` ≡ loading an i8-saved file).
fn load_model(
    flags: &HashMap<String, String>,
    enc: &TokenEncoder,
    what: &str,
) -> fewner::Result<Fewner> {
    let Some(path) = flags.get("model") else {
        return Err(fewner::Error::InvalidConfig(format!(
            "{what} requires --model <checkpoint>"
        )));
    };
    let ckpt = Checkpoint::load(path)?;
    if ckpt.weights != WeightFormat::F32 {
        println!("loaded {} θ from {path}", ckpt.weights.name());
    }
    let mut learner = ckpt.restore(enc)?;
    let format = weights(flags)?;
    if format != WeightFormat::F32 {
        learner.theta.quantize_all(format);
        println!("serving θ quantized to {}", format.name());
    }
    Ok(learner)
}

fn cmd_corpus(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let data = p.generate(scale)?;
    let stats = data.stats();
    println!(
        "{}: genre {}, {} types, {} sentences, {} mentions ({:.2}/sentence)",
        p.name,
        data.genre.name(),
        stats.types,
        stats.sentences,
        stats.mentions,
        stats.mentions as f64 / stats.sentences as f64
    );
    println!("\nsample sentences:");
    for s in data.sentences.iter().take(3) {
        println!("  {}", s.display_with(|t| data.type_name(t).to_string()));
    }
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let seed = flag(flags, "seed", 42u64);
    let ways = flag(flags, "ways", 5usize);
    let shots = flag(flags, "shots", 1usize);
    let iterations = flag(flags, "iterations", 300usize);
    let threads = flag(flags, "threads", 1usize);
    let checkpoint_every = flag(flags, "checkpoint-every", 0usize);
    let resume_dir = flags.get("resume");
    let ckpt_dir = flags
        .get("checkpoint-dir")
        .or(resume_dir)
        .cloned()
        .unwrap_or_else(|| "checkpoints".to_string());

    let cfg = meta();
    let mut schedule = TrainConfig::new(ways, shots)
        .iterations(iterations)
        .query_size(6)
        .seed(seed)
        .threads(threads);
    if checkpoint_every > 0 {
        schedule = schedule
            .checkpoint_every(checkpoint_every)
            .checkpoint_dir(&ckpt_dir);
        println!("rolling snapshots every {checkpoint_every} iterations in {ckpt_dir}/");
    }
    if let Some(path) = flags.get("trace") {
        schedule = schedule.trace(path);
        println!("tracing to {path}");
    }
    let shards = flag(flags, "shards", 1usize);
    if shards > 1 {
        let shard_id = flag(flags, "shard-id", 0usize);
        let coordinator = flags.get("coordinator").ok_or_else(|| {
            fewner::Error::InvalidConfig("--shards > 1 requires --coordinator <host:port>".into())
        })?;
        schedule = schedule
            .shards(shards)
            .shard_id(shard_id)
            .coordinator(coordinator);
        println!("shard {shard_id}/{shards}, coordinator at {coordinator}");
    }
    let chunk_size = flag(flags, "corpus-chunk-size", 0usize);
    let (learner, log) = if chunk_size > 0 {
        train_streaming(flags, &p, scale, seed, ways, chunk_size, &cfg, &schedule)?
    } else {
        let data = p.generate(scale)?;
        let split = split_for(&p, &data, seed)?;
        let enc = build_encoder(&data);
        let mut learner = Fewner::new(backbone(ways), &enc, cfg.clone())?;
        println!(
            "meta-training FEWNER on {} ({} train sentences, {} train types)…",
            p.name,
            split.train.len(),
            split.train.types.len()
        );
        let log = match resume_dir {
            Some(dir) => {
                println!("resuming from the newest valid snapshot in {dir}/…");
                fewner::core::Trainer::new().resume(
                    &mut learner,
                    &split.train,
                    &enc,
                    &cfg,
                    &schedule,
                    dir,
                )?
            }
            None => fewner::core::Trainer::new().train(
                &mut learner,
                &split.train,
                &enc,
                &cfg,
                &schedule,
            )?,
        };
        (learner, log)
    };
    println!(
        "trained {} tasks in {:.1}s; loss {:.3} → {:.3}",
        log.tasks_seen,
        log.wall_secs,
        log.losses.first().copied().unwrap_or(f32::NAN),
        log.tail_loss(10).unwrap_or(f32::NAN)
    );
    // `--out` was the historical name for the checkpoint path; `--model` is
    // the unified flag (what train writes is what the others read).
    if let Some(path) = flags.get("model").or_else(|| flags.get("out")) {
        Checkpoint::capture(&learner).save(path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

/// The streaming train path (`--corpus-chunk-size` > 0): sentences are
/// generated chunk-on-demand and the episode sampler keeps only a bounded
/// window of routed sentences resident, so peak corpus memory is set by
/// `--stream-window`, not `--scale`. The token encoder still needs
/// corpus-wide vocabulary statistics; one materializing pass builds it and
/// is dropped before training starts. Chunked generation is byte-identical
/// to the monolithic generator, so with default `--corpus-sentences` the
/// encoder — and therefore the checkpoint — stays portable to
/// `evaluate`/`predict`/`serve`, which rebuild the encoder from `--scale`.
#[allow(clippy::too_many_arguments)]
fn train_streaming(
    flags: &HashMap<String, String>,
    p: &DatasetProfile,
    scale: f64,
    seed: u64,
    ways: usize,
    chunk_size: usize,
    cfg: &MetaConfig,
    schedule: &TrainConfig,
) -> fewner::Result<(Fewner, TrainingLog)> {
    let sentences = match flags.get("corpus-sentences") {
        Some(v) => Some(v.parse().map_err(|_| {
            fewner::Error::InvalidConfig("--corpus-sentences must be a usize".into())
        })?),
        None => None,
    };
    let window = flag(flags, "stream-window", 512usize);
    let stride = flag(flags, "stream-stride", 64usize);
    let corpus = p.stream(scale, sentences, chunk_size)?;
    let ids: Vec<fewner::text::TypeId> = corpus.types().iter().map(|t| t.id).collect();
    let counts = split_counts(p, ids.len());
    let (train_types, _, _) = fewner::corpus::partition_type_ids(ids, counts, seed)?;
    let enc = {
        let d = corpus.clone().materialize()?;
        build_encoder(&d)
    };
    let mut learner = Fewner::new(backbone(ways), &enc, cfg.clone())?;
    let total = corpus.total_sentences();
    let mut source =
        fewner::core::StreamSource::open(corpus, train_types, schedule, window, stride)?;
    println!(
        "meta-training FEWNER on a {} stream ({total} sentences in {chunk_size}-sentence \
         chunks; window {window}, stride {stride})…",
        p.name,
    );
    let log = match flags.get("resume") {
        Some(dir) => {
            println!("resuming from the newest valid snapshot in {dir}/…");
            fewner::core::Trainer::new().resume_stream(
                &mut learner,
                &mut source,
                &enc,
                cfg,
                schedule,
                dir,
            )?
        }
        None => fewner::core::Trainer::new().train_stream(
            &mut learner,
            &mut source,
            &enc,
            cfg,
            schedule,
        )?,
    };
    Ok((learner, log))
}

/// Single-machine sharded-training driver: binds the coordinator on an
/// ephemeral port, spawns one `fewner train` worker process per shard, and
/// waits for the run. The workers inherit the environment, so
/// `FEWNER_FAULTS` arms (e.g. `shard_die:3@1`) reach them — the `@shard`
/// scope keeps a fault on its intended worker.
fn cmd_train_sharded(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let shards = flag(flags, "shards", 2usize);
    let coordinator = fewner::core::ShardCoordinator::bind("127.0.0.1:0", shards)?;
    let addr = coordinator.local_addr()?;
    println!("coordinator for {shards} shards on {addr}");

    let coord_tracer = match flags.get("trace") {
        Some(path) => Tracer::jsonl(format!("{path}.coordinator")),
        None => Tracer::disabled(),
    };
    let coord = std::thread::spawn(move || {
        let report = coordinator.run(&coord_tracer);
        coord_tracer.flush().and(report)
    });

    let exe = std::env::current_exe().map_err(|e| fewner::Error::Io {
        path: "<current_exe>".into(),
        detail: e.to_string(),
    })?;
    let mut children = Vec::with_capacity(shards);
    for shard in 0..shards {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("train");
        for key in [
            "profile",
            "scale",
            "seed",
            "ways",
            "shots",
            "iterations",
            "threads",
            "checkpoint-every",
            "checkpoint-dir",
            "resume",
            "corpus-chunk-size",
            "corpus-sentences",
            "stream-window",
            "stream-stride",
        ] {
            if let Some(value) = flags.get(key) {
                cmd.arg(format!("--{key}")).arg(value);
            }
        }
        if let Some(path) = flags.get("trace") {
            cmd.arg("--trace").arg(format!("{path}.s{shard}"));
        }
        // Every shard ends with the identical model; one writer is enough.
        if shard == 0 {
            if let Some(path) = flags.get("model").or_else(|| flags.get("out")) {
                cmd.arg("--model").arg(path);
            }
        }
        cmd.arg("--shards")
            .arg(shards.to_string())
            .arg("--shard-id")
            .arg(shard.to_string())
            .arg("--coordinator")
            .arg(addr.to_string());
        let child = cmd.spawn().map_err(|e| fewner::Error::Io {
            path: exe.display().to_string(),
            detail: format!("spawn shard {shard}: {e}"),
        })?;
        children.push((shard, child));
    }

    let mut lost = 0usize;
    for (shard, mut child) in children {
        let status = child.wait().map_err(|e| fewner::Error::Io {
            path: format!("<shard {shard}>"),
            detail: e.to_string(),
        })?;
        if !status.success() {
            eprintln!("shard {shard} exited abnormally ({status})");
            lost += 1;
        }
    }
    let report = coord.join().map_err(|_| fewner::Error::WorkerPanic {
        context: "shard coordinator".into(),
    })??;
    println!(
        "sharded run complete: {} rounds ({} applied, {} skipped), \
         {} retransmits, {} deaths, {} reassignments",
        report.rounds,
        report.applied,
        report.skipped,
        report.retransmits,
        report.deaths,
        report.reassignments
    );
    if lost > 0 {
        println!("({lost} worker(s) were lost; survivors absorbed their task ranges)");
    }
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let seed = flag(flags, "seed", 42u64);
    let ways = flag(flags, "ways", 5usize);
    let shots = flag(flags, "shots", 1usize);
    let episodes = flag(flags, "episodes", 50usize);

    let data = p.generate(scale)?;
    let split = split_for(&p, &data, seed)?;
    let enc = build_encoder(&data);
    let learner = load_model(flags, &enc, "evaluate")?;
    let sampler = EpisodeSampler::new(&split.test, ways, shots, 6)?;
    let tasks = sampler.eval_set(0xE7A1, episodes)?;
    let score = evaluate(&learner, &tasks, &enc)?;
    println!(
        "{} {}-way {}-shot over {} episodes: F1 {}",
        p.name,
        ways,
        shots,
        episodes,
        score.as_percent()
    );
    Ok(())
}

/// `fewner predict` — the one-shot serving path: load a trained checkpoint,
/// adapt a reusable [`AdaptedCtx`] per sampled task, and stream query
/// predictions with a tokens/sec report. Decoding runs on the gradient-free
/// [`Infer`] executor (no tape, recycled buffers); only φ-adaptation builds
/// tapes. For a long-running multi-tenant daemon, see `fewner serve`.
///
/// [`Infer`]: fewner::tensor::Infer
fn cmd_predict(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let seed = flag(flags, "seed", 42u64);
    let ways = flag(flags, "ways", 5usize);
    let shots = flag(flags, "shots", 1usize);
    let episodes = flag(flags, "episodes", 3usize);
    let show = flag(flags, "show", 5usize);

    let data = p.generate(scale)?;
    let split = split_for(&p, &data, seed)?;
    let enc = build_encoder(&data);
    let learner = load_model(flags, &enc, "predict")?;
    let opts = ServeOptions::new().tracer(tracer_for(flags));
    let tracer = opts.tracer_ref();
    let sampler = EpisodeSampler::new(&split.test, ways, shots, 6)?;
    let tasks = sampler.eval_set(0xE7A1, episodes)?;
    let mut total = Throughput::default();
    for (i, task) in tasks.iter().enumerate() {
        // Adapt once, predict under the reusable context — the same split
        // the serving daemon caches across requests.
        let (preds, t) = measure_predictions(|| {
            let ctx = learner.adapt(task, &enc, &opts)?;
            let query: Vec<fewner::models::EncodedSentence> =
                task.query.iter().map(|s| enc.encode(&s.tokens)).collect();
            learner.predict(&ctx, &query, &opts)
        })?;
        total.merge(&t);
        tracer.observe("serve/tokens_per_sec", t.tokens_per_sec());
        let tags = task.tag_set();
        println!(
            "task {}/{}: adapted φ to {} support sentences; {}",
            i + 1,
            tasks.len(),
            task.support.len(),
            t.render()
        );
        for (pred_idx, sent) in preds.iter().zip(&task.query).take(show) {
            let pred: Vec<Tag> = pred_idx.iter().map(|&j| tags.tag(j)).collect();
            println!(
                "  {}",
                qualitative_line(&sent.tokens, &sent.tags, &pred, |slot| {
                    data.type_name(task.slot_types[slot]).to_string()
                })
            );
        }
    }
    // Buffer-pool behaviour of the gradient-free executor, accumulated over
    // every per-task `Infer` dropped during serving.
    let pool = fewner::tensor::infer_global_stats();
    tracer.gauge("infer/pool_hits", pool.pool_hits as f64);
    tracer.gauge("infer/pool_misses", pool.pool_misses as f64);
    tracer.gauge("infer/arena_high_water", pool.high_water as f64);
    tracer.flush()?;
    println!("\nserved {} tasks: {}", tasks.len(), total.render());
    println!(
        "infer arena: {} pool hits, {} misses, high-water {} slots",
        pool.pool_hits, pool.pool_misses, pool.high_water
    );
    Ok(())
}

/// `fewner serve` — the long-running multi-tenant daemon: one frozen θ, an
/// adapted-context (φ) cache keyed by `(tenant, task)` with LRU + TTL and
/// optional durable persistence (`--phi-dir`), cross-request micro-batching,
/// and bounded admission (overload sheds instead of queueing without limit).
/// Speaks newline-delimited JSON over TCP; see `fewner::serve::protocol`.
fn cmd_serve(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.05f64);
    let data = p.generate(scale)?;
    let enc = build_encoder(&data);
    let learner = load_model(flags, &enc, "serve")?;

    let mut policy = CachePolicy::lru(flag(flags, "cache-capacity", 64usize));
    if let Some(secs) = flags.get("ttl-secs") {
        let secs: u64 = secs
            .parse()
            .map_err(|_| fewner::Error::InvalidConfig("--ttl-secs must be a u64".into()))?;
        policy = policy.ttl_secs(secs);
    }
    if let Some(dir) = flags.get("phi-dir") {
        policy = policy.persist_dir(dir);
    }
    let opts = ServeOptions::new()
        .tracer(tracer_for(flags))
        .cache(policy)
        .batch(flag(flags, "batch", 32usize));
    let cfg = ServerConfig::new()
        .workers(flag(flags, "workers", 2usize))
        .queue_limit(flag(flags, "queue-limit", 64usize))
        .deadline_ms(flag(flags, "deadline-ms", 0u64))
        .max_frame_bytes(flag(flags, "max-frame-kb", 1024usize).saturating_mul(1 << 10));

    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let listener = TcpListener::bind(&addr).map_err(|e| fewner::Error::Io {
        path: addr.clone(),
        detail: e.to_string(),
    })?;
    let local = listener.local_addr().map_err(|e| fewner::Error::Io {
        path: addr,
        detail: e.to_string(),
    })?;

    let server = Server::new(learner, enc, opts, cfg)?;
    // Scripts scrape this line for the (possibly ephemeral) port.
    println!("listening on {local}");
    std::io::stdout().flush().ok();
    server.run(listener)?;
    println!("server drained and shut down");
    Ok(())
}

/// `fewner trace summarize <path>...` — render trace files written by
/// `--trace`: per-phase latency percentiles, counters, gauges, events, and
/// the paper's §4.5.2 adaptation-vs-training cost split. Passing both a
/// training and a serving trace merges them into one report, which is how
/// the split covers both phases.
fn cmd_trace(args: &[String]) -> fewner::Result<()> {
    match args {
        [verb, paths @ ..] if verb == "summarize" && !paths.is_empty() => {
            print!("{}", TraceSummary::from_files(paths)?.render());
            Ok(())
        }
        _ => Err(fewner::Error::InvalidConfig(
            "usage: fewner trace summarize <path>...".into(),
        )),
    }
}

fn cmd_demo(flags: &HashMap<String, String>) -> fewner::Result<()> {
    let p = profile(flags)?;
    let scale = flag(flags, "scale", 0.2f64);
    let seed = flag(flags, "seed", 42u64);
    let data = p.generate(scale)?;
    let split = split_for(&p, &data, seed)?;
    let enc = build_encoder(&data);
    let cfg = meta();
    let mut learner = Fewner::new(backbone(5), &enc, cfg.clone())?;
    let schedule = TrainConfig::new(5, 1)
        .iterations(flag(flags, "iterations", 150usize))
        .query_size(6)
        .seed(seed)
        .threads(flag(flags, "threads", 1usize));
    println!("training briefly on {}…", p.name);
    fewner::core::Trainer::new().train(&mut learner, &split.train, &enc, &cfg, &schedule)?;

    let sampler = EpisodeSampler::new(&split.test, 5, 1, 6)?;
    let task = sampler.eval_set(0xE7A1, 1)?.remove(0);
    let preds = learner.adapt_and_predict(&task, &enc)?;
    let tags = task.tag_set();
    println!("\nadapted to a brand-new 5-way 1-shot task; predictions:");
    for (pred_idx, sent) in preds.iter().zip(&task.query).take(5) {
        let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
        println!(
            "  {}",
            qualitative_line(&sent.tokens, &sent.tags, &pred, |slot| {
                data.type_name(task.slot_types[slot]).to_string()
            })
        );
    }
    Ok(())
}
