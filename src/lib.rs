//! # FEWNER — Few-Shot Named Entity Recognition via Meta-Learning
//!
//! A complete, from-scratch Rust reproduction of *Few-Shot Named Entity
//! Recognition via Meta-Learning* (Li, Chiu, Feng & Wang): the N-way K-shot
//! episodic formulation for sequence labeling, the CNN-BiGRU-CRF backbone,
//! the FEWNER meta-learner (task-independent θ / low-dimensional
//! task-specific context parameters φ), all nine baselines, synthetic
//! corpora standing in for the six licensed datasets, and a benchmark
//! harness regenerating every table in the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace's layers.
//!
//! | layer | crate | what it provides |
//! |---|---|---|
//! | [`util`] | `fewner-util` | portable RNG, episode statistics, errors |
//! | [`tensor`] | `fewner-tensor` | arrays, reverse-mode autodiff, layers, optimizers |
//! | [`text`] | `fewner-text` | sentences, BIO tags, spans, vocabularies, embeddings |
//! | [`corpus`] | `fewner-corpus` | the six synthetic dataset profiles + splits |
//! | [`episode`] | `fewner-episode` | greedy-including N-way K-shot task sampling |
//! | [`models`] | `fewner-models` | backbone, CRFs, ProtoNet, SNAIL, frozen LMs |
//! | [`core`] | `fewner-core` | FEWNER (Algorithm 1), MAML, trainers |
//! | [`eval`] | `fewner-eval` | entity-level F1, episode evaluation, reports |
//! | [`obs`] | `fewner-obs` | structured tracing + metrics (spans, sinks, summaries) |
//! | [`serve`] | `fewner-serve` | multi-tenant daemon: φ-cache, micro-batching, NDJSON protocol |
//!
//! ## Quickstart
//!
//! ```
//! use fewner::prelude::*;
//!
//! // 1. A corpus (tiny scale for the doctest) and a type-disjoint split.
//! let data = DatasetProfile::bionlp13cg().generate(0.02)?;
//! let split = split_types(&data, (8, 3, 5), 42)?;
//!
//! // 2. Token encoder with synthetic pre-trained embeddings.
//! let spec = EmbeddingSpec { dim: 20, ..EmbeddingSpec::default() };
//! let enc = TokenEncoder::build(&[&data], &spec, 4);
//!
//! // 3. FEWNER: a conditioned backbone + the meta-learning loop.
//! let bb = BackboneConfig {
//!     word_dim: 20,
//!     hidden: 12,
//!     phi_dim: 8,
//!     slot_ctx_dim: 4,
//!     ..BackboneConfig::default_for(3)
//! };
//! let meta = MetaConfig { meta_batch: 2, ..MetaConfig::default() };
//! let mut fewner = Fewner::new(bb, &enc, meta.clone())?;
//!
//! // 4. Meta-train on 3-way 1-shot episodes from the training types…
//! //    (`.threads(n)` fans the per-task meta-gradients across workers
//! //    without changing the result — the reduction order is fixed.)
//! let schedule = TrainConfig::new(3, 1).iterations(2).query_size(4).seed(1);
//! Trainer::new().train(&mut fewner, &split.train, &enc, &meta, &schedule)?;
//!
//! // 5. …and adapt to an unseen task: only φ changes, θ stays fixed.
//! let sampler = EpisodeSampler::new(&split.test, 3, 1, 4)?;
//! let tasks = sampler.eval_set(7, 2)?;
//! let score = evaluate(&fewner, &tasks, &enc)?;
//! assert!(score.mean >= 0.0 && score.mean <= 1.0);
//! # Ok::<(), fewner::Error>(())
//! ```

#![warn(missing_docs)]

pub use fewner_core as core;
pub use fewner_corpus as corpus;
pub use fewner_episode as episode;
pub use fewner_eval as eval;
pub use fewner_models as models;
pub use fewner_obs as obs;
pub use fewner_serve as serve;
pub use fewner_tensor as tensor;
pub use fewner_text as text;
pub use fewner_util as util;

pub mod cli;

pub use fewner_util::{Error, Result};

/// Everything needed for the common workflows, in one import.
///
/// This is the *supported* surface: a name lives here only if the examples,
/// the CLI or the docs use it for a mainline workflow (training, evaluating,
/// serving). Specialist items — bench table plumbing, low-level trainer
/// internals, per-crate helpers — are reached through their crate modules
/// (`fewner::core`, `fewner::eval`, …). `tests/prelude_surface.rs` compiles
/// against this list, so removals are a deliberate, reviewed act.
pub mod prelude {
    pub use fewner_core::{
        self, AdaptedCtx, CachePolicy, EpisodicLearner, Fewner, FineTuneLearner, FrozenLmLearner,
        Maml, MetaConfig, ProtoLearner, SecondOrder, ServeOptions, SnailLearner, TrainConfig,
        Trainer, TrainingLog,
    };
    pub use fewner_corpus::{
        full_view, holdout_target, split_sentences, split_types, AceDomain, DatasetProfile, Genre,
    };
    pub use fewner_episode::{EpisodeSampler, Task};
    pub use fewner_eval::{
        evaluate, evaluate_parallel, measure_predictions, qualitative_line, F1Counts, Throughput,
    };
    pub use fewner_models::{
        Backbone, BackboneConfig, Conditioning, EncoderKind, HeadKind, LmFlavor, SnailConfig,
        TokenEncoder,
    };
    pub use fewner_obs::{TraceSummary, Tracer};
    pub use fewner_serve::{Server, ServerConfig, SupportSentence};
    pub use fewner_text::embed::EmbeddingSpec;
    pub use fewner_text::{Tag, TagSet};
    pub use fewner_util::Rng;
}
