//! Shared command-line conventions for the `fewner` binary and tools.
//!
//! One place defines flag parsing, the unified flag vocabulary (`--model`,
//! `--trace`, `--checkpoint-dir`, `--seed` mean the same thing in every
//! subcommand) and the reproduction's model-scale conventions (encoder
//! spec, backbone dimensions, meta-configuration). `fewner train`,
//! `fewner predict`, `fewner serve` and the bench tools all call these
//! helpers, so a checkpoint written by one subcommand always matches the
//! encoder another one builds from the same `--profile`/`--scale` flags.
//!
//! The help text ([`USAGE`]) is pinned by a snapshot test
//! (`tests/cli_help.rs`): flag renames are a deliberate, reviewed act.

use std::collections::HashMap;

use fewner_core::MetaConfig;
use fewner_corpus::{split_types, AceDomain, Dataset, DatasetProfile, TypeSplit};
use fewner_models::{BackboneConfig, TokenEncoder};
use fewner_tensor::WeightFormat;
use fewner_text::embed::EmbeddingSpec;
use fewner_util::{Error, Result};

/// The `fewner` binary's help text. Kept here (not in the binary) so the
/// snapshot test and external tools see the same source of truth.
pub const USAGE: &str =
    "usage: fewner <corpus|train|train-sharded|evaluate|demo|predict|serve|trace> [flags]
  common flags:
    --profile <nne|fg-ner|genia|ontonotes|bionlp13cg|slot-filling|conll-like|
               ace-bc|ace-bn|ace-cts|ace-nw|ace-un|ace-wl>
    --scale <f64>          corpus scale, 1.0 = paper size (default 0.05)
    --seed <u64>           experiment seed (default 42)
    --model <path>         checkpoint file (written by train, read by the rest)
    --trace <path>         write a structured JSONL trace of the run
    --weights <f32|f16|i8> serve-time θ precision for evaluate/predict/serve
                           (default f32; f16/i8 round the loaded checkpoint)
  train/evaluate/demo:
    --ways <N> --shots <K> (default 5, 1)
    --iterations <N>       meta-iterations (default 300)
    --episodes <N>         evaluation episodes (default 50)
    --threads <N>          meta-gradient worker threads, 0 = all cores
                           (default 1; FEWNER_THREADS overrides)
  train only:
    --checkpoint-every <N> write a full training snapshot every N iterations
                           (rolling, newest two kept; default 0 = off)
    --checkpoint-dir <dir> snapshot directory (default `checkpoints`)
    --resume <dir>         continue a killed run from the newest valid
                           snapshot in <dir>
    --shards <S>           total workers of a sharded run (default 1; with
                           S > 1 this process is one worker)
    --shard-id <i>         this worker's shard id, 0 <= i < S (default 0)
    --coordinator <addr>   host:port of the shard coordinator (required
                           when --shards > 1)
    --corpus-chunk-size <N> stream the corpus in N-sentence chunks instead of
                           materializing it up front (default 0 = off); the
                           sampler then keeps only a bounded window resident
    --corpus-sentences <N> streamed corpus length override (default: sized by
                           the corpus scale, like the materialized path)
    --stream-window <N>    resident streaming window, in routed sentences
                           (default 512)
    --stream-stride <N>    sentences the window advances per refill
                           (default 64)
  train-sharded only:
    one-machine driver: binds a coordinator, spawns S `fewner train`
    worker processes, and waits; takes every train flag plus
    --shards <S>           worker processes to spawn (default 2)
  predict only:
    --episodes <N>         tasks to serve (default 3)
    --show <N>             query sentences to print per task (default 5)
  serve only:
    --addr <ip:port>       listen address (default 127.0.0.1:0 = ephemeral;
                           the bound address is printed on stdout)
    --workers <N>          prediction worker threads (default 2)
    --queue-limit <N>      queued jobs before admission sheds (default 64)
    --batch <N>            micro-batch sentence cap (default 32)
    --cache-capacity <N>   resident adapted contexts before LRU eviction
                           (default 64)
    --ttl-secs <N>         adapted-context TTL (default: never expires)
    --phi-dir <dir>        persist adapted contexts for warm restarts
    --deadline-ms <N>      default per-request deadline when the client sends
                           none (default 0 = unbounded)
    --max-frame-kb <N>     largest accepted request frame in KiB (default
                           1024; floor 1)
  trace:
    fewner trace summarize <path>...  per-phase latency percentiles, counters,
                                      and the adaptation-vs-serving cost split";

/// Splits `args` into a subcommand plus `--key value` flags. Returns `None`
/// on malformed input (missing value, flag without `--`).
pub fn parse_args(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let mut it = args.iter();
    let command = it.next()?.clone();
    let mut flags = HashMap::new();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        let value = it.next()?;
        flags.insert(key.to_string(), value.clone());
    }
    Some((command, flags))
}

/// A typed flag with a default; unparseable values fall back to the default.
pub fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Resolves `--profile` to one of the paper's dataset profiles
/// (default `genia`).
pub fn profile(flags: &HashMap<String, String>) -> Result<DatasetProfile> {
    let name = flags.get("profile").map(String::as_str).unwrap_or("genia");
    Ok(match name {
        "nne" => DatasetProfile::nne(),
        "fg-ner" => DatasetProfile::fg_ner(),
        "genia" => DatasetProfile::genia(),
        "ontonotes" => DatasetProfile::ontonotes(),
        "bionlp13cg" => DatasetProfile::bionlp13cg(),
        "slot-filling" => DatasetProfile::slot_filling(),
        "conll-like" => DatasetProfile::conll_like(),
        "ace-bc" => DatasetProfile::ace2005(AceDomain::Bc),
        "ace-bn" => DatasetProfile::ace2005(AceDomain::Bn),
        "ace-cts" => DatasetProfile::ace2005(AceDomain::Cts),
        "ace-nw" => DatasetProfile::ace2005(AceDomain::Nw),
        "ace-un" => DatasetProfile::ace2005(AceDomain::Un),
        "ace-wl" => DatasetProfile::ace2005(AceDomain::Wl),
        other => return Err(Error::InvalidConfig(format!("unknown profile `{other}`"))),
    })
}

/// Resolves `--weights` to the serve-time θ precision (default `f32`).
/// Unknown formats are a hard error, not a silent fall-back: serving with
/// the wrong precision would quietly change scores.
pub fn weights(flags: &HashMap<String, String>) -> Result<WeightFormat> {
    match flags.get("weights") {
        None => Ok(WeightFormat::F32),
        Some(s) => s.parse().map_err(Error::InvalidConfig),
    }
}

/// The profile's type-split sizes over an `n_types` inventory (paper
/// splits where defined, a 60/15/25 type partition otherwise). Shared by
/// the materialized ([`split_for`]) and streaming train paths so both
/// partition the same inventory identically.
pub fn split_counts(p: &DatasetProfile, n_types: usize) -> (usize, usize, usize) {
    match p.name {
        "NNE" => (52, 10, 15),
        "FG-NER" => (163, 15, 20),
        "GENIA" => (18, 8, 10),
        _ => {
            let train = (n_types * 3) / 5;
            let val = n_types / 5;
            (train, val, n_types - train - val)
        }
    }
}

/// A type split sized to the profile (paper splits where defined, a
/// 60/15/25 type partition otherwise).
pub fn split_for(p: &DatasetProfile, data: &Dataset, seed: u64) -> Result<TypeSplit> {
    split_types(data, split_counts(p, data.types.len()), seed)
}

/// The CLI's token-encoder convention (32-dim synthetic embeddings,
/// characters kept for tokens of ≥ 4 occurrences). Checkpoints are only
/// portable across subcommands because everyone builds this same encoder.
pub fn build_encoder(data: &Dataset) -> TokenEncoder {
    let spec = EmbeddingSpec {
        dim: 32,
        ..EmbeddingSpec::default()
    };
    TokenEncoder::build(&[data], &spec, 4)
}

/// The CLI's reduced-scale backbone configuration.
pub fn backbone(ways: usize) -> BackboneConfig {
    BackboneConfig {
        word_dim: 32,
        char_dim: 10,
        char_filters: 8,
        char_widths: vec![2, 3],
        hidden: 24,
        phi_dim: 24,
        slot_ctx_dim: 8,
        ..BackboneConfig::default_for(ways)
    }
}

/// The CLI's meta-training configuration.
pub fn meta() -> MetaConfig {
    MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_splits_command_and_flags() {
        let (cmd, flags) = parse_args(&argv("train --scale 0.1 --seed 7")).unwrap();
        assert_eq!(cmd, "train");
        assert_eq!(flag(&flags, "scale", 0.0f64), 0.1);
        assert_eq!(flag(&flags, "seed", 0u64), 7);
        assert_eq!(flag(&flags, "missing", 42usize), 42);
    }

    #[test]
    fn parse_rejects_malformed_flags() {
        assert!(
            parse_args(&argv("train --scale")).is_none(),
            "missing value"
        );
        assert!(parse_args(&argv("train scale 0.1")).is_none(), "missing --");
        assert!(parse_args(&[]).is_none(), "missing command");
    }

    #[test]
    fn weights_flag_resolves_strictly() {
        let mut flags = HashMap::new();
        assert_eq!(weights(&flags).unwrap(), WeightFormat::F32);
        for (name, want) in [
            ("f32", WeightFormat::F32),
            ("f16", WeightFormat::F16),
            ("i8", WeightFormat::I8),
        ] {
            flags.insert("weights".to_string(), name.to_string());
            assert_eq!(weights(&flags).unwrap(), want);
        }
        flags.insert("weights".to_string(), "int4".to_string());
        assert!(weights(&flags).is_err(), "unknown formats must not default");
    }

    #[test]
    fn every_profile_name_resolves() {
        for name in [
            "nne",
            "fg-ner",
            "genia",
            "ontonotes",
            "bionlp13cg",
            "slot-filling",
            "conll-like",
            "ace-bc",
            "ace-bn",
            "ace-cts",
            "ace-nw",
            "ace-un",
            "ace-wl",
        ] {
            let mut flags = HashMap::new();
            flags.insert("profile".to_string(), name.to_string());
            assert!(profile(&flags).is_ok(), "profile `{name}` must resolve");
        }
        let mut flags = HashMap::new();
        flags.insert("profile".to_string(), "nope".to_string());
        assert!(profile(&flags).is_err());
    }
}
