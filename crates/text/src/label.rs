//! The BIO tag space for an N-way episode.
//!
//! A task's label space is fixed by its way-count: `O` plus `B-s`/`I-s`
//! for each abstract class slot `s ∈ 0..N`, i.e. `2N + 1` tags (§3.1). Tags
//! are indexed `O = 0`, `B-s = 1 + 2s`, `I-s = 2 + 2s` so conversions are
//! arithmetic, and [`TagSet::allowed`] encodes the BIO transition structure
//! used to constrain Viterbi decoding and to sanity-check training data.

use fewner_util::{Error, Result};

/// One BIO tag over abstract class slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Outside any entity.
    O,
    /// Beginning of an entity of slot `s`.
    B(usize),
    /// Continuation of an entity of slot `s`.
    I(usize),
}

impl Tag {
    /// The slot the tag refers to, if any.
    pub fn slot(&self) -> Option<usize> {
        match self {
            Tag::O => None,
            Tag::B(s) | Tag::I(s) => Some(*s),
        }
    }

    /// Parses the textual form [`TagSet::name`] produces (`O`, `B-3`,
    /// `I-0`). This is the wire format of the serving protocol, so the
    /// parser is strict: no whitespace, no case-folding, no empty slots.
    pub fn parse(s: &str) -> Result<Tag> {
        if s == "O" {
            return Ok(Tag::O);
        }
        let slot = |rest: &str| {
            rest.parse::<usize>()
                .map_err(|_| Error::InvalidTagSequence(format!("bad tag slot in `{s}`")))
        };
        if let Some(rest) = s.strip_prefix("B-") {
            Ok(Tag::B(slot(rest)?))
        } else if let Some(rest) = s.strip_prefix("I-") {
            Ok(Tag::I(slot(rest)?))
        } else {
            Err(Error::InvalidTagSequence(format!(
                "unparseable tag `{s}` (expected O, B-<slot> or I-<slot>)"
            )))
        }
    }
}

/// The tag inventory for an `n_ways`-way episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSet {
    n_ways: usize,
}

impl TagSet {
    /// Creates a tag set for `n_ways` class slots (must be ≥ 1).
    pub fn new(n_ways: usize) -> Result<TagSet> {
        if n_ways == 0 {
            return Err(Error::InvalidConfig("TagSet needs at least 1 way".into()));
        }
        Ok(TagSet { n_ways })
    }

    /// Number of class slots.
    pub fn n_ways(&self) -> usize {
        self.n_ways
    }

    /// Total number of tags: `2N + 1`.
    pub fn len(&self) -> usize {
        2 * self.n_ways + 1
    }

    /// Tag sets are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tag → dense index.
    pub fn index(&self, tag: Tag) -> usize {
        match tag {
            Tag::O => 0,
            Tag::B(s) => {
                debug_assert!(s < self.n_ways);
                1 + 2 * s
            }
            Tag::I(s) => {
                debug_assert!(s < self.n_ways);
                2 + 2 * s
            }
        }
    }

    /// Dense index → tag. Panics on out-of-range indices.
    pub fn tag(&self, index: usize) -> Tag {
        assert!(index < self.len(), "tag index {index} of {}", self.len());
        if index == 0 {
            Tag::O
        } else if index % 2 == 1 {
            Tag::B((index - 1) / 2)
        } else {
            Tag::I((index - 2) / 2)
        }
    }

    /// Human-readable tag name (`O`, `B-2`, `I-0`).
    pub fn name(&self, index: usize) -> String {
        match self.tag(index) {
            Tag::O => "O".to_string(),
            Tag::B(s) => format!("B-{s}"),
            Tag::I(s) => format!("I-{s}"),
        }
    }

    /// BIO transition validity: `I-s` may only follow `B-s` or `I-s`.
    ///
    /// Everything else (O→B, B→B, I→O, …) is allowed.
    pub fn allowed(&self, from: Tag, to: Tag) -> bool {
        match to {
            Tag::I(s) => matches!(from, Tag::B(f) | Tag::I(f) if f == s),
            _ => true,
        }
    }

    /// Whether a tag may start a sentence (`I-*` may not).
    pub fn allowed_at_start(&self, tag: Tag) -> bool {
        !matches!(tag, Tag::I(_))
    }

    /// All tags in index order.
    pub fn iter(&self) -> impl Iterator<Item = Tag> + '_ {
        (0..self.len()).map(move |i| self.tag(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ways_rejected() {
        assert!(TagSet::new(0).is_err());
    }

    #[test]
    fn five_way_has_eleven_tags() {
        let ts = TagSet::new(5).unwrap();
        assert_eq!(ts.len(), 11);
    }

    #[test]
    fn index_tag_round_trip() {
        let ts = TagSet::new(5).unwrap();
        for i in 0..ts.len() {
            assert_eq!(ts.index(ts.tag(i)), i);
        }
        assert_eq!(ts.index(Tag::O), 0);
        assert_eq!(ts.index(Tag::B(0)), 1);
        assert_eq!(ts.index(Tag::I(0)), 2);
        assert_eq!(ts.index(Tag::B(4)), 9);
        assert_eq!(ts.index(Tag::I(4)), 10);
    }

    #[test]
    fn names_are_readable() {
        let ts = TagSet::new(2).unwrap();
        let names: Vec<String> = (0..ts.len()).map(|i| ts.name(i)).collect();
        assert_eq!(names, vec!["O", "B-0", "I-0", "B-1", "I-1"]);
    }

    #[test]
    fn bio_transition_rules() {
        let ts = TagSet::new(3).unwrap();
        assert!(ts.allowed(Tag::B(1), Tag::I(1)));
        assert!(ts.allowed(Tag::I(1), Tag::I(1)));
        assert!(!ts.allowed(Tag::O, Tag::I(1)));
        assert!(!ts.allowed(Tag::B(0), Tag::I(1)));
        assert!(!ts.allowed(Tag::I(2), Tag::I(1)));
        assert!(ts.allowed(Tag::I(2), Tag::B(1)));
        assert!(ts.allowed(Tag::O, Tag::B(2)));
        assert!(
            ts.allowed(Tag::B(0), Tag::B(0)),
            "adjacent entities allowed"
        );
        assert!(ts.allowed_at_start(Tag::O));
        assert!(ts.allowed_at_start(Tag::B(2)));
        assert!(!ts.allowed_at_start(Tag::I(0)));
    }

    #[test]
    fn parse_round_trips_every_name() {
        let ts = TagSet::new(7).unwrap();
        for i in 0..ts.len() {
            assert_eq!(Tag::parse(&ts.name(i)).unwrap(), ts.tag(i));
        }
    }

    #[test]
    fn parse_rejects_malformed_tags() {
        for bad in [
            "", "o", "B", "B-", "I--1", "B-x", "B- 1", " O", "Q-2", "B-1x",
        ] {
            assert!(Tag::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn iter_covers_all_tags() {
        let ts = TagSet::new(4).unwrap();
        assert_eq!(ts.iter().count(), 9);
        assert_eq!(ts.iter().next(), Some(Tag::O));
    }
}
