//! Sentences and entity spans.

use fewner_util::{Error, Result};

/// Identifier of a concrete entity type within a dataset's inventory
/// (e.g. `PER`, `ProteinSubunit`, `LOC:Water-Body`).
///
/// Episodes map a handful of concrete types onto abstract class *slots*
/// `0..N`; concrete identity never reaches the models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

/// A gold entity: tokens `start..end` (end exclusive) of some type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntitySpan {
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
    /// The entity's concrete type.
    pub type_id: TypeId,
}

impl EntitySpan {
    /// Creates a span, validating `start < end`.
    pub fn new(start: usize, end: usize, type_id: TypeId) -> Result<EntitySpan> {
        if start >= end {
            return Err(Error::InvalidConfig(format!(
                "entity span {start}..{end} is empty or inverted"
            )));
        }
        Ok(EntitySpan {
            start,
            end,
            type_id,
        })
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Spans cannot be empty, but the trait convention expects this.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when the two spans share at least one token.
    pub fn overlaps(&self, other: &EntitySpan) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// True when `self` lies strictly inside `other` (for nested-entity
    /// flattening: the ACE2005 profile keeps only innermost entities, §4.3.1).
    pub fn is_nested_in(&self, other: &EntitySpan) -> bool {
        (other.start <= self.start && self.end < other.end)
            || (other.start < self.start && self.end <= other.end)
    }
}

/// A tokenised sentence with its gold entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Surface tokens.
    pub tokens: Vec<String>,
    /// Gold entity spans; non-overlapping and sorted by start after
    /// [`Sentence::new`] validation.
    pub spans: Vec<EntitySpan>,
}

impl Sentence {
    /// Creates a sentence, validating that spans are in range and
    /// non-overlapping (sorting them by start position).
    pub fn new(tokens: Vec<String>, mut spans: Vec<EntitySpan>) -> Result<Sentence> {
        let len = tokens.len();
        for s in &spans {
            if s.end > len {
                return Err(Error::InvalidConfig(format!(
                    "span {}..{} exceeds sentence length {len}",
                    s.start, s.end
                )));
            }
        }
        spans.sort_by_key(|s| (s.start, s.end));
        for pair in spans.windows(2) {
            if pair[0].overlaps(&pair[1]) {
                return Err(Error::InvalidConfig(format!(
                    "overlapping spans {:?} and {:?}",
                    pair[0], pair[1]
                )));
            }
        }
        Ok(Sentence { tokens, spans })
    }

    /// Sentence length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True for a zero-token sentence.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The distinct entity types present, in first-appearance order.
    pub fn present_types(&self) -> Vec<TypeId> {
        let mut out: Vec<TypeId> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.type_id) {
                out.push(s.type_id);
            }
        }
        out
    }

    /// Number of mentions of a given type.
    pub fn count_of(&self, t: TypeId) -> usize {
        self.spans.iter().filter(|s| s.type_id == t).count()
    }

    /// Renders the sentence with bracketed entities, for reports and the
    /// qualitative analysis table:
    /// `"[Jordan]{3} is a [NBA]{7} player ."`.
    pub fn display_with(&self, type_name: impl Fn(TypeId) -> String) -> String {
        let mut out = String::new();
        let mut i = 0;
        while i < self.tokens.len() {
            if !out.is_empty() {
                out.push(' ');
            }
            if let Some(span) = self.spans.iter().find(|s| s.start == i) {
                out.push('[');
                out.push_str(&self.tokens[span.start..span.end].join(" "));
                out.push(']');
                out.push_str(&format!("{{{}}}", type_name(span.type_id)));
                i = span.end;
            } else {
                out.push_str(&self.tokens[i]);
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn span_validation() {
        assert!(EntitySpan::new(2, 2, TypeId(0)).is_err());
        assert!(EntitySpan::new(3, 2, TypeId(0)).is_err());
        let s = EntitySpan::new(1, 3, TypeId(4)).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn overlap_and_nesting() {
        let a = EntitySpan::new(0, 3, TypeId(0)).unwrap();
        let b = EntitySpan::new(2, 4, TypeId(0)).unwrap();
        let c = EntitySpan::new(1, 2, TypeId(0)).unwrap();
        let d = EntitySpan::new(4, 5, TypeId(0)).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&d));
        assert!(c.is_nested_in(&a));
        assert!(!a.is_nested_in(&a), "a span is not nested in itself");
        assert!(!b.is_nested_in(&a));
    }

    #[test]
    fn sentence_rejects_out_of_range_and_overlap() {
        let t = toks(&["a", "b", "c"]);
        assert!(Sentence::new(t.clone(), vec![EntitySpan::new(2, 4, TypeId(0)).unwrap()]).is_err());
        assert!(Sentence::new(
            t,
            vec![
                EntitySpan::new(0, 2, TypeId(0)).unwrap(),
                EntitySpan::new(1, 3, TypeId(1)).unwrap(),
            ]
        )
        .is_err());
    }

    #[test]
    fn sentence_sorts_spans_and_counts_types() {
        let s = Sentence::new(
            toks(&["w", "x", "y", "z"]),
            vec![
                EntitySpan::new(3, 4, TypeId(5)).unwrap(),
                EntitySpan::new(0, 1, TypeId(5)).unwrap(),
                EntitySpan::new(1, 3, TypeId(2)).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(s.spans[0].start, 0);
        assert_eq!(s.present_types(), vec![TypeId(5), TypeId(2)]);
        assert_eq!(s.count_of(TypeId(5)), 2);
        assert_eq!(s.count_of(TypeId(9)), 0);
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = Sentence::new(
            toks(&["Jordan", "is", "a", "NBA", "player"]),
            vec![
                EntitySpan::new(0, 1, TypeId(1)).unwrap(),
                EntitySpan::new(3, 4, TypeId(2)).unwrap(),
            ],
        )
        .unwrap();
        let rendered = s.display_with(|t| {
            if t == TypeId(1) {
                "PER".into()
            } else {
                "ORG".into()
            }
        });
        assert_eq!(rendered, "[Jordan]{PER} is a [NBA]{ORG} player");
    }
}
