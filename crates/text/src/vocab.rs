//! Word and character vocabularies.
//!
//! The backbone consumes word ids (GloVe-style, uncased — §4.1.3) and
//! character ids (cased). Index 0 is reserved for padding and index 1 for
//! unknown tokens, so test-time out-of-training-vocabulary words — which the
//! paper's ablation shows are the reason the character CNN matters — map to
//! `UNK` at the word level while remaining fully visible at the character
//! level.

use std::collections::HashMap;

/// Reserved padding index.
pub const PAD: usize = 0;
/// Reserved unknown-token index.
pub const UNK: usize = 1;

/// A frozen token → id mapping with `PAD`/`UNK` reserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocab {
    items: Vec<String>,
    index: HashMap<String, usize>,
    lowercase: bool,
}

impl Vocab {
    /// Builds a vocabulary from tokens, keeping those with at least
    /// `min_count` occurrences. `lowercase` folds case first (the paper's
    /// word vocabulary is uncased; its character vocabulary is cased).
    pub fn build<'a>(
        tokens: impl IntoIterator<Item = &'a str>,
        min_count: usize,
        lowercase: bool,
    ) -> Vocab {
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for tok in tokens {
            let key = if lowercase {
                tok.to_lowercase()
            } else {
                tok.to_string()
            };
            match counts.get_mut(&key) {
                Some(c) => *c += 1,
                None => {
                    counts.insert(key.clone(), 1);
                    order.push(key);
                }
            }
        }
        let mut items = vec!["<pad>".to_string(), "<unk>".to_string()];
        items.extend(order.into_iter().filter(|t| counts[t] >= min_count));
        let index = items
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocab {
            items,
            index,
            lowercase,
        }
    }

    /// Builds a character vocabulary from the same token stream.
    pub fn build_chars<'a>(tokens: impl IntoIterator<Item = &'a str>) -> Vocab {
        let mut seen: HashMap<char, ()> = HashMap::new();
        let mut order: Vec<char> = Vec::new();
        for tok in tokens {
            for ch in tok.chars() {
                if seen.insert(ch, ()).is_none() {
                    order.push(ch);
                }
            }
        }
        let mut items = vec!["<pad>".to_string(), "<unk>".to_string()];
        items.extend(order.into_iter().map(|c| c.to_string()));
        let index = items
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocab {
            items,
            index,
            lowercase: false,
        }
    }

    /// Number of entries including `PAD` and `UNK`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Vocabularies always contain the two reserved entries.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Token → id, mapping unknown tokens to [`UNK`].
    pub fn id(&self, token: &str) -> usize {
        if self.lowercase {
            let lowered = token.to_lowercase();
            *self.index.get(&lowered).unwrap_or(&UNK)
        } else {
            *self.index.get(token).unwrap_or(&UNK)
        }
    }

    /// Character → id for char vocabularies.
    pub fn char_id(&self, ch: char) -> usize {
        let mut buf = [0u8; 4];
        *self.index.get(ch.encode_utf8(&mut buf)).unwrap_or(&UNK)
    }

    /// id → token string.
    pub fn token(&self, id: usize) -> &str {
        &self.items[id]
    }

    /// Encodes a token sequence to word ids.
    pub fn encode<'a>(&self, tokens: impl IntoIterator<Item = &'a str>) -> Vec<usize> {
        tokens.into_iter().map(|t| self.id(t)).collect()
    }

    /// Encodes one token to character ids, right-padded with [`PAD`] to at
    /// least `min_len` (the char-CNN needs at least its widest filter).
    pub fn encode_chars(&self, token: &str, min_len: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = token.chars().map(|c| self.char_id(c)).collect();
        while ids.len() < min_len {
            ids.push(PAD);
        }
        ids
    }

    /// Fraction of tokens in `sample` that are in-vocabulary (diagnostics).
    pub fn coverage<'a>(&self, sample: impl IntoIterator<Item = &'a str>) -> f64 {
        let mut total = 0usize;
        let mut known = 0usize;
        for t in sample {
            total += 1;
            if self.id(t) != UNK {
                known += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            known as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_respects_min_count() {
        let v = Vocab::build(["a", "b", "a", "c", "a", "b"], 2, false);
        assert_eq!(v.len(), 4); // pad, unk, a, b
        assert_ne!(v.id("a"), UNK);
        assert_ne!(v.id("b"), UNK);
        assert_eq!(v.id("c"), UNK);
        assert_eq!(v.id("zzz"), UNK);
    }

    #[test]
    fn lowercasing_folds_case() {
        let v = Vocab::build(["Apple", "apple", "APPLE"], 1, true);
        assert_eq!(v.id("Apple"), v.id("aPpLe"));
        let cased = Vocab::build(["Apple", "apple"], 1, false);
        assert_ne!(cased.id("Apple"), cased.id("apple"));
    }

    #[test]
    fn ids_round_trip() {
        let v = Vocab::build(["x", "y"], 1, false);
        let id = v.id("y");
        assert_eq!(v.token(id), "y");
        assert_eq!(v.token(PAD), "<pad>");
        assert_eq!(v.token(UNK), "<unk>");
    }

    #[test]
    fn char_encoding_pads() {
        let v = Vocab::build_chars(["ab"]);
        let ids = v.encode_chars("a", 4);
        assert_eq!(ids.len(), 4);
        assert_ne!(ids[0], PAD);
        assert_eq!(&ids[1..], &[PAD, PAD, PAD]);
        // Unknown characters map to UNK, not PAD.
        assert_eq!(v.encode_chars("z", 1), vec![UNK]);
    }

    #[test]
    fn encode_sequence() {
        let v = Vocab::build(["the", "cat"], 1, false);
        let ids = v.encode(["the", "dog", "cat"]);
        assert_eq!(ids[1], UNK);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn coverage_statistics() {
        let v = Vocab::build(["a", "b"], 1, false);
        assert!((v.coverage(["a", "b", "c", "d"]) - 0.5).abs() < 1e-12);
        assert_eq!(v.coverage([]), 1.0);
    }
}
