//! Conversions between entity spans and BIO tag sequences.
//!
//! Episodes hand the models tag sequences over abstract slots; evaluation
//! converts predicted tags back to spans and compares span sets (entity-level
//! F1, §4.1.1). Decoding is *lenient* — a stray `I-s` with no matching open
//! entity starts a new one — matching standard CoNLL evaluation behaviour so
//! that a model is never credited or punished for impossible tag sequences
//! differently from the usual tooling. [`validate_tags`] offers the strict
//! check for training-data integrity.

use fewner_util::{Error, Result};

use crate::label::{Tag, TagSet};

/// A decoded entity over abstract slots: tokens `start..end` of slot `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotSpan {
    /// First token index.
    pub start: usize,
    /// One past the last token.
    pub end: usize,
    /// Abstract class slot.
    pub slot: usize,
}

/// Encodes slot-mapped spans as a BIO tag sequence of length `len`.
///
/// Spans must be within range, non-overlapping and refer to slots inside
/// `tags`' way-count.
pub fn spans_to_tags(len: usize, spans: &[SlotSpan], tags: &TagSet) -> Result<Vec<Tag>> {
    let mut out = vec![Tag::O; len];
    for s in spans {
        if s.start >= s.end || s.end > len {
            return Err(Error::InvalidTagSequence(format!(
                "span {}..{} out of range for length {len}",
                s.start, s.end
            )));
        }
        if s.slot >= tags.n_ways() {
            return Err(Error::InvalidTagSequence(format!(
                "slot {} outside {}-way tag set",
                s.slot,
                tags.n_ways()
            )));
        }
        for (i, slot_tag) in out[s.start..s.end].iter_mut().enumerate() {
            if *slot_tag != Tag::O {
                return Err(Error::InvalidTagSequence(format!(
                    "overlapping spans at token {}",
                    s.start + i
                )));
            }
            *slot_tag = if i == 0 {
                Tag::B(s.slot)
            } else {
                Tag::I(s.slot)
            };
        }
    }
    Ok(out)
}

/// Decodes a BIO tag sequence into spans (lenient).
///
/// * `B-s` opens an entity of slot `s`, closing any open entity.
/// * `I-s` continues an open entity of the same slot; otherwise it *opens*
///   one (CoNLL-style leniency).
/// * `O` closes any open entity.
pub fn tags_to_spans(tags: &[Tag]) -> Vec<SlotSpan> {
    let mut spans = Vec::new();
    let mut open: Option<(usize, usize)> = None; // (start, slot)
    for (i, tag) in tags.iter().enumerate() {
        match *tag {
            Tag::O => {
                if let Some((start, slot)) = open.take() {
                    spans.push(SlotSpan {
                        start,
                        end: i,
                        slot,
                    });
                }
            }
            Tag::B(s) => {
                if let Some((start, slot)) = open.take() {
                    spans.push(SlotSpan {
                        start,
                        end: i,
                        slot,
                    });
                }
                open = Some((i, s));
            }
            Tag::I(s) => match open {
                Some((_, slot)) if slot == s => {}
                _ => {
                    if let Some((start, slot)) = open.take() {
                        spans.push(SlotSpan {
                            start,
                            end: i,
                            slot,
                        });
                    }
                    open = Some((i, s));
                }
            },
        }
    }
    if let Some((start, slot)) = open {
        spans.push(SlotSpan {
            start,
            end: tags.len(),
            slot,
        });
    }
    spans
}

/// Strictly validates a tag sequence against the BIO transition rules.
pub fn validate_tags(tags: &[Tag], set: &TagSet) -> Result<()> {
    if let Some(first) = tags.first() {
        if !set.allowed_at_start(*first) {
            return Err(Error::InvalidTagSequence(format!(
                "sequence starts with {first:?}"
            )));
        }
    }
    for (i, pair) in tags.windows(2).enumerate() {
        if !set.allowed(pair[0], pair[1]) {
            return Err(Error::InvalidTagSequence(format!(
                "illegal transition {:?} -> {:?} at position {i}",
                pair[0], pair[1]
            )));
        }
    }
    for t in tags {
        if let Some(s) = t.slot() {
            if s >= set.n_ways() {
                return Err(Error::InvalidTagSequence(format!(
                    "slot {s} outside {}-way tag set",
                    set.n_ways()
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> TagSet {
        TagSet::new(3).unwrap()
    }

    #[test]
    fn encode_simple_sentence() {
        let spans = [
            SlotSpan {
                start: 0,
                end: 1,
                slot: 0,
            },
            SlotSpan {
                start: 3,
                end: 5,
                slot: 2,
            },
        ];
        let tags = spans_to_tags(6, &spans, &ts()).unwrap();
        assert_eq!(
            tags,
            vec![Tag::B(0), Tag::O, Tag::O, Tag::B(2), Tag::I(2), Tag::O]
        );
    }

    #[test]
    fn encode_rejects_overlap_and_range() {
        let overlapping = [
            SlotSpan {
                start: 0,
                end: 2,
                slot: 0,
            },
            SlotSpan {
                start: 1,
                end: 3,
                slot: 1,
            },
        ];
        assert!(spans_to_tags(4, &overlapping, &ts()).is_err());
        let oob = [SlotSpan {
            start: 2,
            end: 6,
            slot: 0,
        }];
        assert!(spans_to_tags(4, &oob, &ts()).is_err());
        let bad_slot = [SlotSpan {
            start: 0,
            end: 1,
            slot: 9,
        }];
        assert!(spans_to_tags(4, &bad_slot, &ts()).is_err());
    }

    #[test]
    fn decode_round_trips_valid_encodings() {
        let spans = vec![
            SlotSpan {
                start: 1,
                end: 3,
                slot: 1,
            },
            SlotSpan {
                start: 4,
                end: 5,
                slot: 0,
            },
        ];
        let tags = spans_to_tags(6, &spans, &ts()).unwrap();
        assert_eq!(tags_to_spans(&tags), spans);
    }

    #[test]
    fn adjacent_entities_decode_separately() {
        // B-0 B-0 must be two entities, B-0 I-0 one.
        let tags = [Tag::B(0), Tag::B(0), Tag::I(0)];
        let spans = tags_to_spans(&tags);
        assert_eq!(
            spans,
            vec![
                SlotSpan {
                    start: 0,
                    end: 1,
                    slot: 0
                },
                SlotSpan {
                    start: 1,
                    end: 3,
                    slot: 0
                },
            ]
        );
    }

    #[test]
    fn lenient_decoding_of_stray_i() {
        // O I-1 I-1 O -> entity 1..3 of slot 1 despite missing B.
        let tags = [Tag::O, Tag::I(1), Tag::I(1), Tag::O];
        assert_eq!(
            tags_to_spans(&tags),
            vec![SlotSpan {
                start: 1,
                end: 3,
                slot: 1
            }]
        );
        // B-0 I-1: slot switch without B opens a new entity.
        let tags = [Tag::B(0), Tag::I(1)];
        assert_eq!(
            tags_to_spans(&tags),
            vec![
                SlotSpan {
                    start: 0,
                    end: 1,
                    slot: 0
                },
                SlotSpan {
                    start: 1,
                    end: 2,
                    slot: 1
                },
            ]
        );
    }

    #[test]
    fn entity_running_to_sentence_end_is_closed() {
        let tags = [Tag::O, Tag::B(2), Tag::I(2)];
        assert_eq!(
            tags_to_spans(&tags),
            vec![SlotSpan {
                start: 1,
                end: 3,
                slot: 2
            }]
        );
    }

    #[test]
    fn strict_validation() {
        let set = ts();
        assert!(validate_tags(&[Tag::I(0)], &set).is_err());
        assert!(validate_tags(&[Tag::O, Tag::I(1)], &set).is_err());
        assert!(validate_tags(&[Tag::B(0), Tag::I(1)], &set).is_err());
        assert!(validate_tags(&[Tag::B(1), Tag::I(1), Tag::O], &set).is_ok());
        assert!(validate_tags(&[], &set).is_ok());
    }

    #[test]
    fn empty_sequence_decodes_to_no_spans() {
        assert!(tags_to_spans(&[]).is_empty());
    }
}
