//! `fewner-text` — NER domain types shared by every layer of the system.
//!
//! The paper frames NER as sequence labeling over sentences whose entities
//! carry types from a dataset-specific inventory (§3.1). This crate defines:
//!
//! * [`token`] — [`Sentence`]s: tokens plus gold [`EntitySpan`]s.
//! * [`label`] — the BIO tag space for an N-way episode ([`TagSet`]): an
//!   `O` tag plus `B-slot`/`I-slot` for each of the N abstract class slots.
//! * [`span`] — lossless conversion between entity spans and BIO tag
//!   sequences, including the lenient decoding used at evaluation time.
//! * [`vocab`] — word and character vocabularies with `PAD`/`UNK` handling.
//! * [`embed`] — deterministic synthetic "pre-trained" embeddings standing
//!   in for GloVe: words in the same semantic cluster get nearby vectors.

#![warn(missing_docs)]

pub mod embed;
pub mod label;
pub mod span;
pub mod token;
pub mod vocab;

pub use label::{Tag, TagSet};
pub use span::{spans_to_tags, tags_to_spans, validate_tags};
pub use token::{EntitySpan, Sentence, TypeId};
pub use vocab::Vocab;
