//! Deterministic synthetic "pre-trained" word embeddings.
//!
//! The paper initialises its static-representation models with GloVe 300-d
//! vectors (§4.1.3), whose role is to give lexically/semantically similar
//! words nearby vectors *before any task training*. We cannot ship GloVe,
//! so we synthesise embeddings with exactly that property: every word is
//! assigned a semantic cluster (by the corpus generator: a gazetteer family,
//! a trigger group, a domain function-word pool, …), each cluster has a
//! deterministic unit-ish centre, and the word's vector is
//! `centre + word-keyed noise`. Words without a cluster get pure noise.
//!
//! Both the centre and the noise are keyed by hashes of the cluster id and
//! the word string, so the "pre-trained" table is reproducible and — like
//! real GloVe — independent of which dataset or split the word later
//! appears in.

use fewner_util::Rng;

/// Stable FNV-1a hash of a string (independent of Rust's `DefaultHasher`,
/// whose output may change between releases).
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// How strongly cluster structure dominates word-specific noise.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingSpec {
    /// Vector dimensionality (the paper uses 300; we default to 50).
    pub dim: usize,
    /// Standard deviation of the cluster centre components.
    pub center_std: f32,
    /// Standard deviation of per-word noise around the centre.
    pub noise_std: f32,
    /// Base seed mixed into all hashes.
    pub seed: u64,
}

impl Default for EmbeddingSpec {
    fn default() -> Self {
        EmbeddingSpec {
            dim: 50,
            center_std: 1.0,
            noise_std: 0.35,
            seed: 0x610_7E50,
        }
    }
}

/// The deterministic centre vector of a semantic cluster.
pub fn cluster_center(spec: &EmbeddingSpec, cluster: u64) -> Vec<f32> {
    let mut rng = Rng::new(spec.seed ^ cluster.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..spec.dim)
        .map(|_| rng.normal() * spec.center_std)
        .collect()
}

/// Synthesises the embedding for one word.
///
/// `cluster` of `None` produces an unclustered (noise-only) vector.
pub fn word_embedding(spec: &EmbeddingSpec, word: &str, cluster: Option<u64>) -> Vec<f32> {
    let mut rng = Rng::new(spec.seed ^ stable_hash(word));
    let noise: Vec<f32> = (0..spec.dim)
        .map(|_| rng.normal() * spec.noise_std)
        .collect();
    match cluster {
        Some(c) => cluster_center(spec, c)
            .into_iter()
            .zip(noise)
            .map(|(a, b)| a + b)
            .collect(),
        None => noise,
    }
}

/// Builds a full `[vocab_len × dim]` row-major table.
///
/// `cluster_of(i)` supplies the semantic cluster for vocabulary entry `i`
/// (reserved entries like `PAD`/`UNK` should return `None`); `word_of(i)`
/// the surface form.
pub fn build_table(
    spec: &EmbeddingSpec,
    vocab_len: usize,
    word_of: impl Fn(usize) -> String,
    cluster_of: impl Fn(usize) -> Option<u64>,
) -> Vec<f32> {
    let mut table = Vec::with_capacity(vocab_len * spec.dim);
    for i in 0..vocab_len {
        if i == crate::vocab::PAD {
            table.extend(std::iter::repeat_n(0.0, spec.dim));
        } else {
            table.extend(word_embedding(spec, &word_of(i), cluster_of(i)));
        }
    }
    table
}

/// Cosine similarity between two equal-length vectors (diagnostics/tests).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> EmbeddingSpec {
        EmbeddingSpec {
            dim: 32,
            ..EmbeddingSpec::default()
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let s = spec();
        assert_eq!(
            word_embedding(&s, "aspirin", Some(3)),
            word_embedding(&s, "aspirin", Some(3))
        );
    }

    #[test]
    fn same_cluster_words_are_closer_than_cross_cluster() {
        let s = spec();
        let a1 = word_embedding(&s, "london", Some(10));
        let a2 = word_embedding(&s, "paris", Some(10));
        let b = word_embedding(&s, "kinase", Some(20));
        let within = cosine(&a1, &a2);
        let across = cosine(&a1, &b);
        assert!(
            within > across + 0.2,
            "within {within} should exceed across {across}"
        );
        assert!(within > 0.5, "cluster structure too weak: {within}");
    }

    #[test]
    fn unclustered_words_are_roughly_orthogonal() {
        let s = spec();
        let a = word_embedding(&s, "the", None);
        let b = word_embedding(&s, "of", None);
        assert!(cosine(&a, &b).abs() < 0.5);
    }

    #[test]
    fn table_layout_and_pad_row() {
        let s = spec();
        let words = ["<pad>", "<unk>", "alpha", "beta"];
        let table = build_table(&s, 4, |i| words[i].to_string(), |i| (i == 3).then_some(7));
        assert_eq!(table.len(), 4 * s.dim);
        assert!(table[..s.dim].iter().all(|&v| v == 0.0), "PAD row is zero");
        let beta = &table[3 * s.dim..4 * s.dim];
        assert_eq!(beta, &word_embedding(&s, "beta", Some(7))[..]);
    }

    #[test]
    fn stable_hash_reference_values() {
        // FNV-1a must never change: episode/corpus reproducibility hangs on it.
        assert_eq!(stable_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(stable_hash("ab"), stable_hash("ba"));
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }
}
