//! The adapted-context (φ) cache.
//!
//! A multi-tenant server sees the same `(tenant, task)` pair over and over;
//! re-running the inner loop per request would throw away the paper's cost
//! argument (§4.5.2: adaptation is cheap *once*, not per query). [`PhiCache`]
//! makes the adapted [`AdaptedCtx`] a shared, cached resource:
//!
//! * **Single-flight**: concurrent lookups of the same key block on one
//!   settle-once cell — the inner loop runs *exactly once* per resident
//!   key, and every waiter gets the same `Arc<AdaptedCtx>`. Waiters carry
//!   their request's [`Deadline`]: a wait is bounded by the remaining
//!   budget and surfaces as a typed [`Error::DeadlineExceeded`] instead of
//!   blocking behind a slow adapt, while the leader still completes and
//!   caches the context for the retry.
//! * **Graceful degradation**: a φ persistence failure (full disk, torn
//!   write) flips the cache to memory-only serving — the request in hand
//!   succeeds, a one-time `serve/persist_degraded` event records the mode
//!   switch, and any torn file is removed so a later boot never trips on
//!   it.
//! * **LRU + TTL**: bounded residency ([`CachePolicy::capacity`]) with
//!   least-recently-used eviction, plus optional expiry
//!   ([`CachePolicy::ttl_ns`]) driven by an injectable [`Clock`] so tests
//!   assert expiry deterministically.
//! * **Durable warm restarts**: with [`CachePolicy::persist_dir`] set,
//!   freshly adapted contexts are written through the CRC-framed atomic
//!   writer; a restarted server reloads them **bitwise identically** instead
//!   of re-adapting ([`Lookup::Warm`] vs [`Lookup::Cold`]).
//!
//! Every outcome is counted — in a [`CacheStats`] snapshot for the `stats`
//! protocol op, and as `serve/cache_*` tracer counters so `fewner trace
//! summarize` shows the hit/miss/eviction profile next to the warm/cold
//! adapt latency split.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use fewner_core::{AdaptedCtx, CachePolicy};
use fewner_obs::{Clock, MonotonicClock, Tracer};
use fewner_util::{crc32, Deadline, Error, Result};

/// Cache key: `(tenant, task)`. Tenants namespace task ids so two customers
/// with a task both named `"triage"` never share a φ.
pub type CacheKey = (String, String);

/// How a lookup obtained its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Resident in memory (or another request adapted it while we waited).
    Hit,
    /// Reloaded from the persistence directory — a restart-warm key, no
    /// inner loop run.
    Warm,
    /// Freshly adapted: the full inner loop ran.
    Cold,
}

impl Lookup {
    /// Wire name (`hot` / `warm` / `cold`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Lookup::Hit => "hot",
            Lookup::Warm => "warm",
            Lookup::Cold => "cold",
        }
    }
}

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory (including joins on an in-flight adapt).
    pub hits: u64,
    /// Lookups that had to produce the context (warm reload or cold adapt).
    pub misses: u64,
    /// Entries dropped by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expirations: u64,
    /// Misses satisfied by reloading a persisted φ instead of re-adapting.
    pub reloads: u64,
    /// Freshly adapted contexts written to the persistence directory.
    pub persists: u64,
    /// Single-flight waits abandoned because the waiter's deadline expired
    /// before the in-flight adapt settled.
    pub wait_timeouts: u64,
}

type CtxResult = std::result::Result<Arc<AdaptedCtx>, Error>;

/// A settle-once single-flight cell. Exactly one caller claims the
/// `Pending → Running` transition and produces the result; everyone else
/// blocks on the condvar (optionally bounded by a request deadline) until
/// the cell settles.
struct Cell {
    state: Mutex<CellState>,
    ready: Condvar,
}

enum CellState {
    /// Nobody has claimed the fill yet.
    Pending,
    /// A leader is reloading or adapting; waiters block on `ready`.
    Running,
    /// The shared outcome every current and future lookup observes.
    Done(CtxResult),
}

type CellRef = Arc<Cell>;

impl Cell {
    fn new() -> CellRef {
        Arc::new(Cell {
            state: Mutex::new(CellState::Pending),
            ready: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, CellState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn is_settled(&self) -> bool {
        matches!(&*self.lock(), CellState::Done(_))
    }

    fn settle(&self, result: CtxResult) {
        *self.lock() = CellState::Done(result);
        self.ready.notify_all();
    }
}

/// Outcome of [`PhiCache::claim_or_wait`].
enum Role {
    /// This caller owns the fill: reload or adapt, then settle the cell.
    Leader,
    /// The cell settled (now or earlier); here is the shared result.
    Settled(CtxResult),
}

/// Settles an abandoned cell if the leader unwinds mid-fill (an adapt
/// panic), so waiters receive a typed error instead of hanging forever,
/// and removes the dead entry so the next lookup starts fresh.
struct SettleOnPanic<'a> {
    cache: &'a PhiCache,
    cell: &'a CellRef,
    key: &'a CacheKey,
    armed: bool,
}

impl Drop for SettleOnPanic<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.cell.settle(Err(Error::WorkerPanic {
            context: "phi adapt".into(),
        }));
        let mut inner = self.cache.lock();
        if let Some(meta) = inner.map.get(self.key) {
            if Arc::ptr_eq(&meta.cell, self.cell) {
                inner.map.remove(self.key);
            }
        }
    }
}

struct EntryMeta {
    cell: CellRef,
    /// LRU tick of the most recent lookup.
    last_used: u64,
    /// Absolute expiry instant (clock ns); `None` = never.
    expires_at: Option<u64>,
}

struct Inner {
    map: HashMap<CacheKey, EntryMeta>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, single-flight, optionally persistent cache of adapted
/// contexts. Shared by reference across server threads.
pub struct PhiCache {
    policy: CachePolicy,
    clock: Arc<dyn Clock>,
    tracer: Tracer,
    inner: Mutex<Inner>,
    /// Set on the first φ persistence failure: the cache keeps serving from
    /// memory and stops touching the disk (until the next boot).
    persist_degraded: AtomicBool,
}

impl PhiCache {
    /// A cache on the production monotonic clock. Creates the persistence
    /// directory if the policy names one.
    pub fn new(policy: CachePolicy, tracer: Tracer) -> Result<PhiCache> {
        PhiCache::with_clock(policy, tracer, Arc::new(MonotonicClock::new()))
    }

    /// A cache on an injected clock (tests drive TTLs with
    /// [`fewner_obs::ManualClock`]).
    pub fn with_clock(
        policy: CachePolicy,
        tracer: Tracer,
        clock: Arc<dyn Clock>,
    ) -> Result<PhiCache> {
        if let Some(dir) = &policy.persist_dir {
            std::fs::create_dir_all(dir).map_err(|e| Error::Io {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })?;
        }
        Ok(PhiCache {
            policy,
            clock,
            tracer,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            persist_degraded: AtomicBool::new(false),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned cache mutex means a panic elsewhere; the map itself is
        // always in a consistent state between operations.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The context for `key`, running `adapt` at most once across all
    /// concurrent callers. Returns the shared context plus how it was
    /// obtained. On adapt failure the entry is removed so a later request
    /// retries, and every waiter receives the same error.
    pub fn get_or_adapt(
        &self,
        key: &CacheKey,
        adapt: impl FnOnce() -> Result<AdaptedCtx>,
    ) -> Result<(Arc<AdaptedCtx>, Lookup)> {
        self.get_or_adapt_within(key, None, adapt)
    }

    /// [`PhiCache::get_or_adapt`] bounded by a request deadline: a caller
    /// joining an in-flight adapt waits at most its remaining budget, then
    /// gets [`Error::DeadlineExceeded`] — the leader still completes and
    /// caches the context, so a retry after the deadline is a plain hit and
    /// the inner loop still runs exactly once.
    pub fn get_or_adapt_within(
        &self,
        key: &CacheKey,
        deadline: Option<&Deadline>,
        adapt: impl FnOnce() -> Result<AdaptedCtx>,
    ) -> Result<(Arc<AdaptedCtx>, Lookup)> {
        let now = self.clock.now_ns();
        let cell = self.slot(key, now);

        let mut persisted = false;
        let (result, outcome) = match self.claim_or_wait(&cell, deadline)? {
            Role::Settled(result) => (result, Lookup::Hit),
            Role::Leader => {
                let mut guard = SettleOnPanic {
                    cache: self,
                    cell: &cell,
                    key,
                    armed: true,
                };
                let (result, outcome) = if let Some(ctx) = self.reload(key) {
                    (Ok(Arc::new(ctx)), Lookup::Warm)
                } else {
                    let result = adapt().map(Arc::new);
                    if let Ok(ctx) = &result {
                        persisted = self.persist(key, ctx);
                    }
                    (result, Lookup::Cold)
                };
                guard.armed = false;
                cell.settle(result.clone());
                (result, outcome)
            }
        };

        {
            let mut inner = self.lock();
            match outcome {
                Lookup::Hit => inner.stats.hits += 1,
                Lookup::Warm => {
                    inner.stats.misses += 1;
                    inner.stats.reloads += 1;
                }
                Lookup::Cold => inner.stats.misses += 1,
            }
            if persisted {
                inner.stats.persists += 1;
            }
            if result.is_err() {
                // Drop the failed entry (only if the map still points at this
                // cell) so the next lookup gets a fresh attempt.
                if let Some(meta) = inner.map.get(key) {
                    if Arc::ptr_eq(&meta.cell, &cell) {
                        inner.map.remove(key);
                    }
                }
            }
        }
        match outcome {
            Lookup::Hit => self.tracer.incr("serve/cache_hits", 1),
            Lookup::Warm => {
                self.tracer.incr("serve/cache_misses", 1);
                self.tracer.incr("serve/phi_reloads", 1);
            }
            Lookup::Cold => self.tracer.incr("serve/cache_misses", 1),
        }
        if persisted {
            self.tracer.incr("serve/phi_persists", 1);
        }

        result.map(|ctx| (ctx, outcome))
    }

    /// Claims leadership of an unsettled cell or waits (deadline-bounded)
    /// for the current leader's result.
    fn claim_or_wait(&self, cell: &Cell, deadline: Option<&Deadline>) -> Result<Role> {
        let mut state = cell.lock();
        loop {
            match &*state {
                CellState::Done(result) => return Ok(Role::Settled(result.clone())),
                CellState::Pending => {
                    *state = CellState::Running;
                    return Ok(Role::Leader);
                }
                CellState::Running => match deadline {
                    None => state = cell.ready.wait(state).unwrap_or_else(|p| p.into_inner()),
                    Some(d) => {
                        let Some(remaining) = d.remaining() else {
                            drop(state);
                            self.lock().stats.wait_timeouts += 1;
                            self.tracer.incr("serve/phi_wait_timeout", 1);
                            return Err(Error::DeadlineExceeded {
                                budget_ms: d.budget_ms(),
                                stage: "phi_wait".into(),
                            });
                        };
                        // Re-checks the state on wake; a timeout loops back
                        // into the `remaining()` probe above.
                        let (guard, _timed_out) = cell
                            .ready
                            .wait_timeout(state, remaining)
                            .unwrap_or_else(|p| p.into_inner());
                        state = guard;
                    }
                },
            }
        }
    }

    /// Cold-path persistence with graceful degradation: the first failure
    /// flips the cache to memory-only serving for the rest of this boot.
    /// Persistence is an optimisation for the *next* boot; a full disk must
    /// not fail the request in hand.
    fn persist(&self, key: &CacheKey, ctx: &AdaptedCtx) -> bool {
        let Some(path) = self.persist_path(key) else {
            return false;
        };
        if self.persist_degraded.load(Ordering::Acquire) {
            return false;
        }
        match ctx.save(&path) {
            Ok(()) => true,
            Err(e) => {
                // A failed write may have torn a half-frame at the final
                // path; never leave it for the next boot to trip over.
                std::fs::remove_file(&path).ok();
                if !self.persist_degraded.swap(true, Ordering::AcqRel) {
                    self.tracer.event(
                        "serve/persist_degraded",
                        &[
                            ("path", path.display().to_string().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    self.tracer.incr("serve/persist_degraded", 1);
                }
                false
            }
        }
    }

    /// Whether φ persistence has been switched off after a write failure
    /// (memory-only serving until the next boot).
    pub fn is_persist_degraded(&self) -> bool {
        self.persist_degraded.load(Ordering::Acquire)
    }

    /// Locked section of a lookup: expiry check, LRU touch, insert + evict.
    /// Returns the cell to resolve *outside* the lock, so a slow adapt never
    /// blocks lookups of other keys.
    fn slot(&self, key: &CacheKey, now: u64) -> CellRef {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(meta) = inner.map.get_mut(key) {
            // An in-flight entry is never expired out from under its waiters.
            let expired = meta.cell.is_settled() && meta.expires_at.is_some_and(|t| now >= t);
            if !expired {
                meta.last_used = tick;
                return meta.cell.clone();
            }
            inner.map.remove(key);
            inner.stats.expirations += 1;
            self.tracer.incr("serve/cache_expirations", 1);
        }
        let cell = Cell::new();
        inner.map.insert(
            key.clone(),
            EntryMeta {
                cell: cell.clone(),
                last_used: tick,
                expires_at: self.policy.ttl_ns.map(|t| now.saturating_add(t)),
            },
        );
        while inner.map.len() > self.policy.capacity {
            // LRU among settled entries; in-flight adapts are never evicted
            // (their work would be wasted), so the map may briefly overshoot
            // capacity under a thundering herd of distinct keys.
            let victim = inner
                .map
                .iter()
                .filter(|(k, m)| *k != key && m.cell.is_settled())
                .min_by_key(|(_, m)| m.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                    self.tracer.incr("serve/cache_evictions", 1);
                }
                None => break,
            }
        }
        cell
    }

    /// Attempts a warm reload from the persistence directory. Timed as a
    /// `serve/adapt_warm` span so trace summaries show the warm-vs-cold
    /// adapt latency split (`serve/adapt` stays the cold inner loop).
    fn reload(&self, key: &CacheKey) -> Option<AdaptedCtx> {
        let path = self.persist_path(key)?;
        if !path.exists() {
            return None;
        }
        let mut span = self.tracer.span("serve/adapt_warm");
        span.set("tenant", key.0.as_str());
        span.set("task", key.1.as_str());
        match AdaptedCtx::load(&path) {
            Ok(ctx) => Some(ctx),
            Err(e) => {
                // A torn or stale file falls back to a fresh adapt.
                span.set("reload_error", e.to_string());
                None
            }
        }
    }

    fn persist_path(&self, key: &CacheKey) -> Option<PathBuf> {
        let dir = self.policy.persist_dir.as_ref()?;
        Some(dir.join(Self::file_name(key)))
    }

    /// Persisted-φ file name: readable sanitised prefix plus a CRC32 of the
    /// exact key, so distinct keys never collide after sanitisation.
    fn file_name(key: &CacheKey) -> String {
        fn sanitize(s: &str) -> String {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .take(32)
                .collect()
        }
        let mut keyed = key.0.clone().into_bytes();
        keyed.push(0);
        keyed.extend_from_slice(key.1.as_bytes());
        format!(
            "{}-{}-{:08x}.phi",
            sanitize(&key.0),
            sanitize(&key.1),
            crc32(&keyed)
        )
    }

    /// Whether `key` is resident in memory.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Whether `key` has a persisted φ on disk (existence only; integrity is
    /// checked at reload).
    pub fn has_persisted(&self, key: &CacheKey) -> bool {
        self.persist_path(key).is_some_and(|p| p.exists())
    }

    /// Whether a lookup without a support set could succeed.
    pub fn known(&self, key: &CacheKey) -> bool {
        self.contains(key) || self.has_persisted(key)
    }

    /// Whether `key` already has a *ready* context — a settled resident
    /// cell or a persisted φ. An in-flight adapt does not count: admission
    /// uses this to classify requests as warm (cheap to serve) vs cold
    /// (needs an inner loop), and work queued behind an unfinished adapt is
    /// still cold.
    pub fn ready(&self, key: &CacheKey) -> bool {
        self.lock()
            .map
            .get(key)
            .is_some_and(|m| m.cell.is_settled())
            || self.has_persisted(key)
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops `key` from memory *and* deletes its persisted φ — a true
    /// invalidation (e.g. the tenant changed the task's support set).
    pub fn invalidate(&self, key: &CacheKey) {
        self.lock().map.remove(key);
        if let Some(path) = self.persist_path(key) {
            std::fs::remove_file(path).ok();
        }
    }

    /// Installs a new context for `key`, superseding whatever revision was
    /// resident — invalidation-by-version for incremental extension. The
    /// entry is inserted *settled* (no single-flight claim to win): lookups
    /// racing this call observe either the old or the new context, never a
    /// blocked cell. The persisted φ is overwritten in place so a restart
    /// warm-reloads the latest revision; the same graceful degradation as a
    /// cold persist applies.
    pub fn replace(&self, key: &CacheKey, ctx: Arc<AdaptedCtx>) {
        let persisted = self.persist(key, &ctx);
        let now = self.clock.now_ns();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if persisted {
            inner.stats.persists += 1;
        }
        let cell = Cell::new();
        cell.settle(Ok(ctx));
        inner.map.insert(
            key.clone(),
            EntryMeta {
                cell,
                last_used: tick,
                expires_at: self.policy.ttl_ns.map(|t| now.saturating_add(t)),
            },
        );
        while inner.map.len() > self.policy.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(k, m)| *k != key && m.cell.is_settled())
                .min_by_key(|(_, m)| m.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                    self.tracer.incr("serve/cache_evictions", 1);
                }
                None => break,
            }
        }
        drop(inner);
        if persisted {
            self.tracer.incr("serve/phi_persists", 1);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_tensor::{Array, ParamStore};
    use fewner_util::ToJson;

    fn ctx(seed: f32) -> AdaptedCtx {
        let mut store = ParamStore::new();
        let id = store.add(
            "phi",
            Array::from_vec(1, 3, vec![seed, seed + 1.0, seed + 2.0]),
        );
        let json = fewner_util::Json::Obj(vec![
            ("version".into(), fewner_util::Json::from(1u64)),
            ("n_ways".into(), fewner_util::Json::from(2usize)),
            ("phi".into(), store.value(id).to_json()),
        ]);
        AdaptedCtx::from_json(&json).unwrap()
    }

    fn key(s: &str) -> CacheKey {
        ("t".into(), s.into())
    }

    #[test]
    fn file_names_distinguish_sanitised_collisions() {
        let a = PhiCache::file_name(&("a/b".into(), "c".into()));
        let b = PhiCache::file_name(&("a.b".into(), "c".into()));
        assert_ne!(a, b, "CRC suffix must disambiguate `a_b`");
        assert!(a.starts_with("a_b-c-"));
    }

    #[test]
    fn single_key_adapts_once_then_hits() {
        let cache = PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap();
        let k = key("x");
        let (c1, l1) = cache.get_or_adapt(&k, || Ok(ctx(0.0))).unwrap();
        assert_eq!(l1, Lookup::Cold);
        let (c2, l2) = cache
            .get_or_adapt(&k, || panic!("must not re-adapt"))
            .unwrap();
        assert_eq!(l2, Lookup::Hit);
        assert!(Arc::ptr_eq(&c1, &c2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn waiter_deadline_bounds_the_single_flight_wait() {
        let cache = Arc::new(PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap());
        let k = key("slow");
        let gate = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let k = k.clone();
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                cache.get_or_adapt(&k, || {
                    gate.wait(); // the waiter is about to join this flight
                    std::thread::sleep(std::time::Duration::from_millis(300));
                    Ok(ctx(0.0))
                })
            })
        };
        gate.wait();
        let t0 = std::time::Instant::now();
        let d = Deadline::from_ms(30);
        let waited = cache.get_or_adapt_within(&k, Some(&d), || panic!("leader owns the fill"));
        assert!(
            matches!(waited, Err(Error::DeadlineExceeded { ref stage, .. }) if stage == "phi_wait"),
            "expected a phi_wait deadline, got {waited:?}"
        );
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(250),
            "the waiter must give up well before the 300ms adapt settles"
        );
        leader.join().unwrap().unwrap();
        // The leader's work was not wasted: the retry is a plain hit.
        let (_, l) = cache
            .get_or_adapt(&k, || panic!("must not re-adapt"))
            .unwrap();
        assert_eq!(l, Lookup::Hit);
        assert_eq!(cache.stats().wait_timeouts, 1);
    }

    #[test]
    fn leader_panic_settles_waiters_with_a_typed_error() {
        let cache = Arc::new(PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap());
        let k = key("boom");
        let gate = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let k = k.clone();
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                cache.get_or_adapt(&k, || {
                    gate.wait();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("adapt blew up");
                })
            })
        };
        gate.wait();
        // An unbounded wait must still terminate when the leader dies.
        let waited = cache.get_or_adapt(&k, || Ok(ctx(9.0)));
        assert!(
            matches!(waited, Err(Error::WorkerPanic { .. })),
            "waiter must see the leader's panic as a typed error, got {waited:?}"
        );
        assert!(leader.join().is_err(), "the leader thread panicked");
        // The dead entry was removed: the next lookup adapts fresh.
        let (_, l) = cache.get_or_adapt(&k, || Ok(ctx(1.0))).unwrap();
        assert_eq!(l, Lookup::Cold);
    }

    #[test]
    fn replace_supersedes_the_resident_context() {
        let cache = PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap();
        let k = key("x");
        let (old, l) = cache.get_or_adapt(&k, || Ok(ctx(0.0))).unwrap();
        assert_eq!(l, Lookup::Cold);
        let newer = Arc::new(ctx(5.0));
        cache.replace(&k, Arc::clone(&newer));
        let (got, l) = cache
            .get_or_adapt(&k, || panic!("must stay resident"))
            .unwrap();
        assert_eq!(l, Lookup::Hit);
        assert!(Arc::ptr_eq(&got, &newer), "lookups see the new revision");
        assert!(!Arc::ptr_eq(&got, &old));
    }

    #[test]
    fn replace_overwrites_the_persisted_phi() {
        let dir = std::env::temp_dir().join(format!("fewner-cache-replace-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache =
            PhiCache::new(CachePolicy::lru(4).persist_dir(&dir), Tracer::disabled()).unwrap();
        let k = key("x");
        cache.get_or_adapt(&k, || Ok(ctx(0.0))).unwrap();
        let path = dir.join(PhiCache::file_name(&k));
        let before = std::fs::read(&path).unwrap();
        cache.replace(&k, Arc::new(ctx(9.0)));
        let after = std::fs::read(&path).unwrap();
        assert_ne!(before, after, "the newer revision must land on disk");
        assert_eq!(cache.stats().persists, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_adapt_is_retried() {
        let cache = PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap();
        let k = key("x");
        let err = cache.get_or_adapt(&k, || Err(Error::InvalidConfig("no support".into())));
        assert!(err.is_err());
        assert!(!cache.contains(&k), "failed entry must not stay resident");
        let (_, l) = cache.get_or_adapt(&k, || Ok(ctx(1.0))).unwrap();
        assert_eq!(l, Lookup::Cold, "second attempt runs the adapt");
    }
}
