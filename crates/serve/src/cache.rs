//! The adapted-context (φ) cache.
//!
//! A multi-tenant server sees the same `(tenant, task)` pair over and over;
//! re-running the inner loop per request would throw away the paper's cost
//! argument (§4.5.2: adaptation is cheap *once*, not per query). [`PhiCache`]
//! makes the adapted [`AdaptedCtx`] a shared, cached resource:
//!
//! * **Single-flight**: concurrent lookups of the same key block on one
//!   `OnceLock` — the inner loop runs *exactly once* per resident key, and
//!   every waiter gets the same `Arc<AdaptedCtx>`.
//! * **LRU + TTL**: bounded residency ([`CachePolicy::capacity`]) with
//!   least-recently-used eviction, plus optional expiry
//!   ([`CachePolicy::ttl_ns`]) driven by an injectable [`Clock`] so tests
//!   assert expiry deterministically.
//! * **Durable warm restarts**: with [`CachePolicy::persist_dir`] set,
//!   freshly adapted contexts are written through the CRC-framed atomic
//!   writer; a restarted server reloads them **bitwise identically** instead
//!   of re-adapting ([`Lookup::Warm`] vs [`Lookup::Cold`]).
//!
//! Every outcome is counted — in a [`CacheStats`] snapshot for the `stats`
//! protocol op, and as `serve/cache_*` tracer counters so `fewner trace
//! summarize` shows the hit/miss/eviction profile next to the warm/cold
//! adapt latency split.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use fewner_core::{AdaptedCtx, CachePolicy};
use fewner_obs::{Clock, MonotonicClock, Tracer};
use fewner_util::{crc32, Error, Result};

/// Cache key: `(tenant, task)`. Tenants namespace task ids so two customers
/// with a task both named `"triage"` never share a φ.
pub type CacheKey = (String, String);

/// How a lookup obtained its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Resident in memory (or another request adapted it while we waited).
    Hit,
    /// Reloaded from the persistence directory — a restart-warm key, no
    /// inner loop run.
    Warm,
    /// Freshly adapted: the full inner loop ran.
    Cold,
}

impl Lookup {
    /// Wire name (`hot` / `warm` / `cold`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Lookup::Hit => "hot",
            Lookup::Warm => "warm",
            Lookup::Cold => "cold",
        }
    }
}

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory (including joins on an in-flight adapt).
    pub hits: u64,
    /// Lookups that had to produce the context (warm reload or cold adapt).
    pub misses: u64,
    /// Entries dropped by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expirations: u64,
    /// Misses satisfied by reloading a persisted φ instead of re-adapting.
    pub reloads: u64,
    /// Freshly adapted contexts written to the persistence directory.
    pub persists: u64,
}

type CtxResult = std::result::Result<Arc<AdaptedCtx>, Error>;
type Cell = Arc<OnceLock<CtxResult>>;

struct EntryMeta {
    cell: Cell,
    /// LRU tick of the most recent lookup.
    last_used: u64,
    /// Absolute expiry instant (clock ns); `None` = never.
    expires_at: Option<u64>,
}

struct Inner {
    map: HashMap<CacheKey, EntryMeta>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, single-flight, optionally persistent cache of adapted
/// contexts. Shared by reference across server threads.
pub struct PhiCache {
    policy: CachePolicy,
    clock: Arc<dyn Clock>,
    tracer: Tracer,
    inner: Mutex<Inner>,
}

impl PhiCache {
    /// A cache on the production monotonic clock. Creates the persistence
    /// directory if the policy names one.
    pub fn new(policy: CachePolicy, tracer: Tracer) -> Result<PhiCache> {
        PhiCache::with_clock(policy, tracer, Arc::new(MonotonicClock::new()))
    }

    /// A cache on an injected clock (tests drive TTLs with
    /// [`fewner_obs::ManualClock`]).
    pub fn with_clock(
        policy: CachePolicy,
        tracer: Tracer,
        clock: Arc<dyn Clock>,
    ) -> Result<PhiCache> {
        if let Some(dir) = &policy.persist_dir {
            std::fs::create_dir_all(dir).map_err(|e| Error::Io {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })?;
        }
        Ok(PhiCache {
            policy,
            clock,
            tracer,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned cache mutex means a panic elsewhere; the map itself is
        // always in a consistent state between operations.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The context for `key`, running `adapt` at most once across all
    /// concurrent callers. Returns the shared context plus how it was
    /// obtained. On adapt failure the entry is removed so a later request
    /// retries, and every waiter receives the same error.
    pub fn get_or_adapt(
        &self,
        key: &CacheKey,
        adapt: impl FnOnce() -> Result<AdaptedCtx>,
    ) -> Result<(Arc<AdaptedCtx>, Lookup)> {
        let now = self.clock.now_ns();
        let cell = self.slot(key, now);

        // Exactly one caller runs this closure (std::sync::OnceLock
        // guarantee); everyone else blocks until it finishes and then reads
        // the shared result.
        let mut outcome = Lookup::Hit;
        let mut persisted = false;
        let result = cell.get_or_init(|| {
            if let Some(ctx) = self.reload(key) {
                outcome = Lookup::Warm;
                return Ok(Arc::new(ctx));
            }
            outcome = Lookup::Cold;
            let ctx = adapt()?;
            if let Some(path) = self.persist_path(key) {
                match ctx.save(&path) {
                    Ok(()) => persisted = true,
                    // Persistence is an optimisation for the *next* boot;
                    // a full disk must not fail the request in hand.
                    Err(e) => self.tracer.event(
                        "serve/phi_persist_failed",
                        &[
                            ("path", path.display().to_string().into()),
                            ("error", e.to_string().into()),
                        ],
                    ),
                }
            }
            Ok(Arc::new(ctx))
        });

        {
            let mut inner = self.lock();
            match outcome {
                Lookup::Hit => inner.stats.hits += 1,
                Lookup::Warm => {
                    inner.stats.misses += 1;
                    inner.stats.reloads += 1;
                }
                Lookup::Cold => inner.stats.misses += 1,
            }
            if persisted {
                inner.stats.persists += 1;
            }
            if result.is_err() {
                // Drop the failed entry (only if the map still points at this
                // cell) so the next lookup gets a fresh attempt.
                if let Some(meta) = inner.map.get(key) {
                    if Arc::ptr_eq(&meta.cell, &cell) {
                        inner.map.remove(key);
                    }
                }
            }
        }
        match outcome {
            Lookup::Hit => self.tracer.incr("serve/cache_hits", 1),
            Lookup::Warm => {
                self.tracer.incr("serve/cache_misses", 1);
                self.tracer.incr("serve/phi_reloads", 1);
            }
            Lookup::Cold => self.tracer.incr("serve/cache_misses", 1),
        }
        if persisted {
            self.tracer.incr("serve/phi_persists", 1);
        }

        match result {
            Ok(ctx) => Ok((Arc::clone(ctx), outcome)),
            Err(e) => Err(e.clone()),
        }
    }

    /// Locked section of a lookup: expiry check, LRU touch, insert + evict.
    /// Returns the cell to resolve *outside* the lock, so a slow adapt never
    /// blocks lookups of other keys.
    fn slot(&self, key: &CacheKey, now: u64) -> Cell {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(meta) = inner.map.get_mut(key) {
            // An in-flight entry is never expired out from under its waiters.
            let expired = meta.cell.get().is_some() && meta.expires_at.is_some_and(|t| now >= t);
            if !expired {
                meta.last_used = tick;
                return meta.cell.clone();
            }
            inner.map.remove(key);
            inner.stats.expirations += 1;
            self.tracer.incr("serve/cache_expirations", 1);
        }
        let cell: Cell = Arc::new(OnceLock::new());
        inner.map.insert(
            key.clone(),
            EntryMeta {
                cell: cell.clone(),
                last_used: tick,
                expires_at: self.policy.ttl_ns.map(|t| now.saturating_add(t)),
            },
        );
        while inner.map.len() > self.policy.capacity {
            // LRU among settled entries; in-flight adapts are never evicted
            // (their work would be wasted), so the map may briefly overshoot
            // capacity under a thundering herd of distinct keys.
            let victim = inner
                .map
                .iter()
                .filter(|(k, m)| *k != key && m.cell.get().is_some())
                .min_by_key(|(_, m)| m.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                    self.tracer.incr("serve/cache_evictions", 1);
                }
                None => break,
            }
        }
        cell
    }

    /// Attempts a warm reload from the persistence directory. Timed as a
    /// `serve/adapt_warm` span so trace summaries show the warm-vs-cold
    /// adapt latency split (`serve/adapt` stays the cold inner loop).
    fn reload(&self, key: &CacheKey) -> Option<AdaptedCtx> {
        let path = self.persist_path(key)?;
        if !path.exists() {
            return None;
        }
        let mut span = self.tracer.span("serve/adapt_warm");
        span.set("tenant", key.0.as_str());
        span.set("task", key.1.as_str());
        match AdaptedCtx::load(&path) {
            Ok(ctx) => Some(ctx),
            Err(e) => {
                // A torn or stale file falls back to a fresh adapt.
                span.set("reload_error", e.to_string());
                None
            }
        }
    }

    fn persist_path(&self, key: &CacheKey) -> Option<PathBuf> {
        let dir = self.policy.persist_dir.as_ref()?;
        Some(dir.join(Self::file_name(key)))
    }

    /// Persisted-φ file name: readable sanitised prefix plus a CRC32 of the
    /// exact key, so distinct keys never collide after sanitisation.
    fn file_name(key: &CacheKey) -> String {
        fn sanitize(s: &str) -> String {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .take(32)
                .collect()
        }
        let mut keyed = key.0.clone().into_bytes();
        keyed.push(0);
        keyed.extend_from_slice(key.1.as_bytes());
        format!(
            "{}-{}-{:08x}.phi",
            sanitize(&key.0),
            sanitize(&key.1),
            crc32(&keyed)
        )
    }

    /// Whether `key` is resident in memory.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Whether `key` has a persisted φ on disk (existence only; integrity is
    /// checked at reload).
    pub fn has_persisted(&self, key: &CacheKey) -> bool {
        self.persist_path(key).is_some_and(|p| p.exists())
    }

    /// Whether a lookup without a support set could succeed.
    pub fn known(&self, key: &CacheKey) -> bool {
        self.contains(key) || self.has_persisted(key)
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops `key` from memory *and* deletes its persisted φ — a true
    /// invalidation (e.g. the tenant changed the task's support set).
    pub fn invalidate(&self, key: &CacheKey) {
        self.lock().map.remove(key);
        if let Some(path) = self.persist_path(key) {
            std::fs::remove_file(path).ok();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_tensor::{Array, ParamStore};
    use fewner_util::ToJson;

    fn ctx(seed: f32) -> AdaptedCtx {
        let mut store = ParamStore::new();
        let id = store.add(
            "phi",
            Array::from_vec(1, 3, vec![seed, seed + 1.0, seed + 2.0]),
        );
        let json = fewner_util::Json::Obj(vec![
            ("version".into(), fewner_util::Json::from(1u64)),
            ("n_ways".into(), fewner_util::Json::from(2usize)),
            ("phi".into(), store.value(id).to_json()),
        ]);
        AdaptedCtx::from_json(&json).unwrap()
    }

    fn key(s: &str) -> CacheKey {
        ("t".into(), s.into())
    }

    #[test]
    fn file_names_distinguish_sanitised_collisions() {
        let a = PhiCache::file_name(&("a/b".into(), "c".into()));
        let b = PhiCache::file_name(&("a.b".into(), "c".into()));
        assert_ne!(a, b, "CRC suffix must disambiguate `a_b`");
        assert!(a.starts_with("a_b-c-"));
    }

    #[test]
    fn single_key_adapts_once_then_hits() {
        let cache = PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap();
        let k = key("x");
        let (c1, l1) = cache.get_or_adapt(&k, || Ok(ctx(0.0))).unwrap();
        assert_eq!(l1, Lookup::Cold);
        let (c2, l2) = cache
            .get_or_adapt(&k, || panic!("must not re-adapt"))
            .unwrap();
        assert_eq!(l2, Lookup::Hit);
        assert!(Arc::ptr_eq(&c1, &c2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn failed_adapt_is_retried() {
        let cache = PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap();
        let k = key("x");
        let err = cache.get_or_adapt(&k, || Err(Error::InvalidConfig("no support".into())));
        assert!(err.is_err());
        assert!(!cache.contains(&k), "failed entry must not stay resident");
        let (_, l) = cache.get_or_adapt(&k, || Ok(ctx(1.0))).unwrap();
        assert_eq!(l, Lookup::Cold, "second attempt runs the adapt");
    }
}
