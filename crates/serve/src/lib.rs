//! `fewner-serve` — the multi-tenant serving daemon.
//!
//! The paper's operational claim (§4.5.2) is that test-time adaptation of
//! the low-dimensional context φ is cheap; this crate is the system that
//! cashes that claim in. One long-running [`Server`] owns the frozen θ and
//! serves many tenants' tasks concurrently:
//!
//! * [`cache`] — the adapted-context (φ) cache: `(tenant, task)`-keyed,
//!   LRU + TTL, single-flight (concurrent requests adapt **once**), with
//!   durable persistence so a restarted server reloads warm φ's bitwise
//!   identically instead of re-running the inner loop.
//! * [`server`] — worker pool, bounded admission queue (shed with
//!   [`fewner_util::Error::Overloaded`], never unbounded latency), and
//!   cross-request micro-batching: queued queries for the same task are
//!   merged into one gradient-free decode call.
//! * [`protocol`] — newline-delimited JSON over TCP; tags travel in their
//!   textual `O`/`B-s`/`I-s` form.
//! * [`client`] — a small blocking client used by the CLI, the load
//!   generator and the tests, plus the self-healing [`RetryClient`].
//!
//! The serving path is built to degrade, not fall over: every request may
//! carry a `deadline_ms` budget enforced at admission, in the queue, inside
//! the φ-cache single-flight wait and at the decode entry points; frames
//! are size-bounded ([`protocol::read_frame`]); a failed φ persist drops
//! the cache to memory-only serving (`serve/persist_degraded`) instead of
//! erroring; and queue saturation sheds cold adapts first while
//! already-adapted tenants keep being served. The `serve_*` faults in
//! [`fewner_util::fault`] drive all of this under chaos tests.
//!
//! Everything is observable through the `fewner-obs` tracer the server is
//! built with: `serve/adapt` (cold inner loop) vs `serve/adapt_warm` (disk
//! reload) spans give the warm/cold latency split, and `serve/cache_*`
//! counters the hit profile — all rendered by `fewner trace summarize`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheKey, CacheStats, Lookup, PhiCache};
pub use client::{Client, RetryClient, RetryPolicy, RetryStats};
pub use protocol::{
    read_frame, FrameRead, Request, Response, SupportSentence, DEFAULT_MAX_FRAME_BYTES,
};
pub use server::{Server, ServerConfig};
