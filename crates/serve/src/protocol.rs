//! The serving wire protocol: newline-delimited JSON.
//!
//! One request object per line, one response object per line, over a plain
//! TCP stream — trivially scriptable (`nc`, any language's socket + JSON)
//! and requiring nothing beyond the in-tree [`fewner_util::Json`]. Tags
//! travel in their textual form (`O`, `B-0`, `I-3`; see
//! [`fewner_text::Tag::parse`]).
//!
//! ```text
//! → {"op":"adapt","tenant":"acme","task":"triage","ways":2,
//!    "support":[{"tokens":["flu","shot"],"tags":["B-0","O"]}]}
//! ← {"ok":true,"op":"adapt","source":"cold"}
//! → {"op":"predict","tenant":"acme","task":"triage",
//!    "sentences":[["flu","season"]]}
//! ← {"ok":true,"op":"predict","tags":[["B-0","O"]]}
//! → {"op":"extend","tenant":"acme","task":"triage","ways":2,
//!    "support":[{"tokens":["booster"],"tags":["B-1"]}]}
//! ← {"ok":true,"op":"extend","revision":2,"source":"extended"}
//! → {"op":"stats"}
//! ← {"ok":true,"op":"stats","counters":{"hits":1,...}}
//! ← {"ok":false,"error":"overloaded","message":"...","queue_depth":64,"limit":64}
//! ```
//!
//! `predict` may carry an inline `ways` + `support` to adapt-on-miss in one
//! round trip; without them, an unknown `(tenant, task)` is an
//! `unknown_task` error.
//!
//! Three optional request fields support the resilience layer: a
//! `deadline_ms` budget (enforced server-side at every checkpoint), a
//! client-chosen `id` echoed verbatim on the response (so a retrying client
//! can discard a stale reply after a timeout), and an `attempt` counter
//! (`0` = first try) that lets the server count retried requests. Frames
//! are **bounded**: [`read_frame`] caps how many bytes a line may occupy
//! before its newline arrives, so a slow or malicious client can never pin
//! a connection thread behind an unbounded buffer.

use std::io::BufRead;

use fewner_text::Tag;
use fewner_util::{Error, Json, Result};

/// Default cap on one NDJSON frame (1 MiB — far above any sane request,
/// far below memory exhaustion).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Outcome of one bounded frame read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead {
    /// One complete line (newline stripped, may be empty).
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary: the peer closed after a full line.
    Eof,
    /// EOF mid-frame: the peer died partway through a line.
    Truncated,
    /// The frame exceeded `max` bytes before its newline arrived; carries
    /// the byte count observed. The stream is no longer at a frame
    /// boundary, so the connection should be closed after reporting.
    TooLarge(usize),
}

/// Reads one newline-terminated frame from `reader`, buffering partial
/// bytes in `buf` (so a read timeout — `WouldBlock`/`TimedOut`, propagated
/// as the `Err` — can be retried without losing the prefix). The frame is
/// abandoned as [`FrameRead::TooLarge`] the moment more than `max` bytes
/// arrive without a newline: memory stays bounded no matter what the peer
/// sends.
pub fn read_frame(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<FrameRead> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(if buf.is_empty() {
                FrameRead::Eof
            } else {
                FrameRead::Truncated
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let total = buf.len() + pos;
                if total > max {
                    reader.consume(pos + 1);
                    buf.clear();
                    return Ok(FrameRead::TooLarge(total));
                }
                buf.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                return Ok(FrameRead::Frame(std::mem::take(buf)));
            }
            None => {
                let n = available.len();
                if buf.len() + n > max {
                    reader.consume(n);
                    let seen = buf.len() + n;
                    buf.clear();
                    return Ok(FrameRead::TooLarge(seen));
                }
                buf.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
}

/// One labelled support sentence as it arrives over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportSentence {
    /// Whitespace-split tokens.
    pub tokens: Vec<String>,
    /// One BIO tag per token.
    pub tags: Vec<Tag>,
}

impl SupportSentence {
    fn from_json(json: &Json) -> Result<SupportSentence> {
        let tokens = str_list(json.field("tokens")?)?;
        let tags = json
            .field("tags")?
            .as_arr()?
            .iter()
            .map(|t| Tag::parse(t.as_str()?))
            .collect::<Result<Vec<Tag>>>()?;
        if tokens.len() != tags.len() {
            return Err(Error::InvalidConfig(format!(
                "support sentence has {} tokens but {} tags",
                tokens.len(),
                tags.len()
            )));
        }
        if tokens.is_empty() {
            return Err(Error::InvalidConfig("empty support sentence".into()));
        }
        Ok(SupportSentence { tokens, tags })
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tokens".into(), str_arr(&self.tokens)),
            (
                "tags".into(),
                Json::Arr(self.tags.iter().map(|t| Json::Str(tag_name(t))).collect()),
            ),
        ])
    }
}

fn tag_name(tag: &Tag) -> String {
    match tag {
        Tag::O => "O".to_string(),
        Tag::B(s) => format!("B-{s}"),
        Tag::I(s) => format!("I-{s}"),
    }
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn str_list(json: &Json) -> Result<Vec<String>> {
    json.as_arr()?
        .iter()
        .map(|t| Ok(t.as_str()?.to_string()))
        .collect()
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Adapt (or warm) the φ for `(tenant, task)` from a support set.
    Adapt {
        /// Namespace for task ids.
        tenant: String,
        /// Task id within the tenant.
        task: String,
        /// Way count; fixes the tag inventory.
        ways: usize,
        /// Labelled support sentences.
        support: Vec<SupportSentence>,
        /// Optional time budget in milliseconds, enforced server-side.
        deadline_ms: Option<u64>,
    },
    /// Grow an existing adapted context with additional support sentences
    /// (incremental online adaptation): a few warm-started inner steps over
    /// the merged support instead of a full re-adapt.
    Extend {
        /// Namespace for task ids.
        tenant: String,
        /// Task id within the tenant.
        task: String,
        /// Way count; must match the existing context.
        ways: usize,
        /// Newly arrived labelled support sentences.
        support: Vec<SupportSentence>,
        /// Optional time budget in milliseconds, enforced server-side.
        deadline_ms: Option<u64>,
    },
    /// Decode query sentences under the task's adapted φ.
    Predict {
        /// Namespace for task ids.
        tenant: String,
        /// Task id within the tenant.
        task: String,
        /// Query sentences, as token lists.
        sentences: Vec<Vec<String>>,
        /// Optional inline way count (required with `support`).
        ways: Option<usize>,
        /// Optional inline support set for adapt-on-miss.
        support: Option<Vec<SupportSentence>>,
        /// Optional time budget in milliseconds, enforced server-side.
        deadline_ms: Option<u64>,
    },
    /// Counter snapshot (cache + queue).
    Stats,
    /// Liveness probe.
    Ping,
    /// Orderly shutdown: drain queued work, stop accepting.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn from_json(json: &Json) -> Result<Request> {
        let op = json.field("op")?.as_str()?;
        match op {
            "adapt" => Ok(Request::Adapt {
                tenant: json.field("tenant")?.as_str()?.to_string(),
                task: json.field("task")?.as_str()?.to_string(),
                ways: json.field("ways")?.as_usize()?,
                support: support_list(json.field("support")?)?,
                deadline_ms: match json.get("deadline_ms") {
                    Some(d) => Some(d.as_u64()?),
                    None => None,
                },
            }),
            "extend" => Ok(Request::Extend {
                tenant: json.field("tenant")?.as_str()?.to_string(),
                task: json.field("task")?.as_str()?.to_string(),
                ways: json.field("ways")?.as_usize()?,
                support: support_list(json.field("support")?)?,
                deadline_ms: match json.get("deadline_ms") {
                    Some(d) => Some(d.as_u64()?),
                    None => None,
                },
            }),
            "predict" => Ok(Request::Predict {
                tenant: json.field("tenant")?.as_str()?.to_string(),
                task: json.field("task")?.as_str()?.to_string(),
                sentences: json
                    .field("sentences")?
                    .as_arr()?
                    .iter()
                    .map(str_list)
                    .collect::<Result<Vec<_>>>()?,
                ways: match json.get("ways") {
                    Some(w) => Some(w.as_usize()?),
                    None => None,
                },
                support: match json.get("support") {
                    Some(s) => Some(support_list(s)?),
                    None => None,
                },
                deadline_ms: match json.get("deadline_ms") {
                    Some(d) => Some(d.as_u64()?),
                    None => None,
                },
            }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(Error::InvalidConfig(format!("unknown op `{other}`"))),
        }
    }

    /// Serialises to one line's worth of JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Adapt {
                tenant,
                task,
                ways,
                support,
                deadline_ms,
            } => {
                let mut fields = vec![
                    ("op".into(), Json::from("adapt")),
                    ("tenant".into(), Json::Str(tenant.clone())),
                    ("task".into(), Json::Str(task.clone())),
                    ("ways".into(), Json::from(*ways)),
                    (
                        "support".into(),
                        Json::Arr(support.iter().map(SupportSentence::to_json).collect()),
                    ),
                ];
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::from(*d)));
                }
                Json::Obj(fields)
            }
            Request::Extend {
                tenant,
                task,
                ways,
                support,
                deadline_ms,
            } => {
                let mut fields = vec![
                    ("op".into(), Json::from("extend")),
                    ("tenant".into(), Json::Str(tenant.clone())),
                    ("task".into(), Json::Str(task.clone())),
                    ("ways".into(), Json::from(*ways)),
                    (
                        "support".into(),
                        Json::Arr(support.iter().map(SupportSentence::to_json).collect()),
                    ),
                ];
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::from(*d)));
                }
                Json::Obj(fields)
            }
            Request::Predict {
                tenant,
                task,
                sentences,
                ways,
                support,
                deadline_ms,
            } => {
                let mut fields = vec![
                    ("op".into(), Json::from("predict")),
                    ("tenant".into(), Json::Str(tenant.clone())),
                    ("task".into(), Json::Str(task.clone())),
                    (
                        "sentences".into(),
                        Json::Arr(sentences.iter().map(|s| str_arr(s)).collect()),
                    ),
                ];
                if let Some(w) = ways {
                    fields.push(("ways".into(), Json::from(*w)));
                }
                if let Some(s) = support {
                    fields.push((
                        "support".into(),
                        Json::Arr(s.iter().map(SupportSentence::to_json).collect()),
                    ));
                }
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::from(*d)));
                }
                Json::Obj(fields)
            }
            Request::Stats => Json::Obj(vec![("op".into(), Json::from("stats"))]),
            Request::Ping => Json::Obj(vec![("op".into(), Json::from("ping"))]),
            Request::Shutdown => Json::Obj(vec![("op".into(), Json::from("shutdown"))]),
        }
    }
}

fn support_list(json: &Json) -> Result<Vec<SupportSentence>> {
    let list = json
        .as_arr()?
        .iter()
        .map(SupportSentence::from_json)
        .collect::<Result<Vec<_>>>()?;
    if list.is_empty() {
        return Err(Error::InvalidConfig("empty support set".into()));
    }
    Ok(list)
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The task's φ is ready; `source` is `hot`, `warm` or `cold`.
    Adapted {
        /// Where the context came from (cache / disk / fresh inner loop).
        source: String,
    },
    /// The task's φ was grown in place. `revision` is the context's new
    /// revision counter; `source` is `extended` (warm-started incremental
    /// steps) or `cold` (the key was unknown, so a full adapt ran over the
    /// new support alone).
    Extended {
        /// Monotonic per-context revision after this operation.
        revision: u32,
        /// How the context was produced (`extended` / `cold`).
        source: String,
    },
    /// One tag sequence per query sentence, in textual form.
    Predictions {
        /// Predicted tags, outer = sentence, inner = token.
        tags: Vec<Vec<String>>,
    },
    /// Counter snapshot, sorted by name.
    Stats {
        /// `(name, value)` pairs.
        counters: Vec<(String, u64)>,
    },
    /// Liveness reply.
    Pong,
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown,
    /// The request failed. `kind` is `overloaded`, `bad_request`,
    /// `unknown_task`, `deadline_exceeded`, `frame_too_large` or
    /// `internal`.
    Error {
        /// Machine-readable failure class.
        kind: String,
        /// Human-readable detail.
        message: String,
        /// Queue depth at admission (only for `overloaded`).
        queue_depth: u64,
        /// Admission limit (only for `overloaded`).
        limit: u64,
        /// The request's time budget (only for `deadline_exceeded`).
        budget_ms: u64,
    },
}

impl Response {
    /// Classifies a library error for the wire. Load shedding and deadline
    /// expiry keep their numbers so clients can log real backpressure and
    /// size retry budgets; caller mistakes map to `bad_request`; everything
    /// else is `internal`.
    pub fn from_error(e: &Error) -> Response {
        let (kind, queue_depth, limit, budget_ms) = match e {
            Error::Overloaded { queue_depth, limit } => {
                ("overloaded", *queue_depth as u64, *limit as u64, 0)
            }
            Error::DeadlineExceeded { budget_ms, .. } => ("deadline_exceeded", 0, 0, *budget_ms),
            Error::FrameTooLarge { .. } => ("frame_too_large", 0, 0, 0),
            Error::InvalidConfig(_) | Error::InvalidTagSequence(_) | Error::Serde(_) => {
                ("bad_request", 0, 0, 0)
            }
            _ => ("internal", 0, 0, 0),
        };
        Response::Error {
            kind: kind.to_string(),
            message: e.to_string(),
            queue_depth,
            limit,
            budget_ms,
        }
    }

    /// The `unknown_task` error: no cached, persisted or inline support for
    /// the key.
    pub fn unknown_task(tenant: &str, task: &str) -> Response {
        Response::Error {
            kind: "unknown_task".to_string(),
            message: format!(
                "no adapted context for `{tenant}/{task}`; send an adapt request \
                 or inline `ways` + `support`"
            ),
            queue_depth: 0,
            limit: 0,
            budget_ms: 0,
        }
    }

    /// Reconstructs a library error from an error response (client side).
    /// `overloaded` and `deadline_exceeded` come back typed — they are the
    /// retryable classes a client must be able to match on.
    pub fn to_error(&self) -> Option<Error> {
        match self {
            Response::Error {
                kind,
                message,
                queue_depth,
                limit,
                budget_ms,
            } => Some(match kind.as_str() {
                "overloaded" => Error::Overloaded {
                    queue_depth: *queue_depth as usize,
                    limit: *limit as usize,
                },
                "deadline_exceeded" => Error::DeadlineExceeded {
                    budget_ms: *budget_ms,
                    stage: "server".into(),
                },
                _ => Error::InvalidConfig(format!("server error ({kind}): {message}")),
            }),
            _ => None,
        }
    }

    /// Serialises to one line's worth of JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Adapted { source } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("op".into(), Json::from("adapt")),
                ("source".into(), Json::Str(source.clone())),
            ]),
            Response::Extended { revision, source } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("op".into(), Json::from("extend")),
                ("revision".into(), Json::from(*revision as u64)),
                ("source".into(), Json::Str(source.clone())),
            ]),
            Response::Predictions { tags } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("op".into(), Json::from("predict")),
                (
                    "tags".into(),
                    Json::Arr(tags.iter().map(|s| str_arr(s)).collect()),
                ),
            ]),
            Response::Stats { counters } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("op".into(), Json::from("stats")),
                (
                    "counters".into(),
                    Json::Obj(
                        counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(*v)))
                            .collect(),
                    ),
                ),
            ]),
            Response::Pong => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("op".into(), Json::from("ping")),
            ]),
            Response::ShuttingDown => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("op".into(), Json::from("shutdown")),
            ]),
            Response::Error {
                kind,
                message,
                queue_depth,
                limit,
                budget_ms,
            } => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(false)),
                    ("error".into(), Json::Str(kind.clone())),
                    ("message".into(), Json::Str(message.clone())),
                ];
                if kind == "overloaded" {
                    fields.push(("queue_depth".into(), Json::from(*queue_depth)));
                    fields.push(("limit".into(), Json::from(*limit)));
                }
                if kind == "deadline_exceeded" {
                    fields.push(("budget_ms".into(), Json::from(*budget_ms)));
                }
                Json::Obj(fields)
            }
        }
    }

    /// Parses one response line (client side).
    pub fn from_json(json: &Json) -> Result<Response> {
        if !json.field("ok")?.as_bool()? {
            return Ok(Response::Error {
                kind: json.field("error")?.as_str()?.to_string(),
                message: json.field("message")?.as_str()?.to_string(),
                queue_depth: json.get("queue_depth").map_or(Ok(0), Json::as_u64)?,
                limit: json.get("limit").map_or(Ok(0), Json::as_u64)?,
                budget_ms: json.get("budget_ms").map_or(Ok(0), Json::as_u64)?,
            });
        }
        match json.field("op")?.as_str()? {
            "adapt" => Ok(Response::Adapted {
                source: json.field("source")?.as_str()?.to_string(),
            }),
            "extend" => Ok(Response::Extended {
                revision: json.field("revision")?.as_u64()? as u32,
                source: json.field("source")?.as_str()?.to_string(),
            }),
            "predict" => Ok(Response::Predictions {
                tags: json
                    .field("tags")?
                    .as_arr()?
                    .iter()
                    .map(str_list)
                    .collect::<Result<Vec<_>>>()?,
            }),
            "stats" => {
                let obj = match json.field("counters")? {
                    Json::Obj(fields) => fields,
                    _ => return Err(Error::Serde("stats counters must be an object".into())),
                };
                Ok(Response::Stats {
                    counters: obj
                        .iter()
                        .map(|(k, v)| Ok((k.clone(), v.as_u64()?)))
                        .collect::<Result<Vec<_>>>()?,
                })
            }
            "ping" => Ok(Response::Pong),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(Error::Serde(format!("unknown response op `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let line = req.to_json().to_string();
        assert!(!line.contains('\n'), "wire format is one line");
        let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(&back, req);
    }

    fn round_trip_response(resp: &Response) {
        let line = resp.to_json().to_string();
        assert!(!line.contains('\n'));
        let back = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(&back, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Ping);
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Shutdown);
        round_trip_request(&Request::Adapt {
            tenant: "acme".into(),
            task: "triage".into(),
            ways: 2,
            support: vec![SupportSentence {
                tokens: vec!["flu".into(), "shot".into()],
                tags: vec![Tag::B(0), Tag::O],
            }],
            deadline_ms: Some(250),
        });
        round_trip_request(&Request::Extend {
            tenant: "acme".into(),
            task: "triage".into(),
            ways: 2,
            support: vec![SupportSentence {
                tokens: vec!["booster".into()],
                tags: vec![Tag::B(1)],
            }],
            deadline_ms: None,
        });
        round_trip_request(&Request::Predict {
            tenant: "acme".into(),
            task: "triage".into(),
            sentences: vec![vec!["flu".into(), "season".into()]],
            ways: None,
            support: None,
            deadline_ms: None,
        });
        round_trip_request(&Request::Predict {
            tenant: "acme".into(),
            task: "triage".into(),
            sentences: vec![vec!["x".into()]],
            ways: Some(3),
            support: Some(vec![SupportSentence {
                tokens: vec!["x".into()],
                tags: vec![Tag::I(2)],
            }]),
            deadline_ms: Some(1_000),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Pong);
        round_trip_response(&Response::ShuttingDown);
        round_trip_response(&Response::Adapted {
            source: "warm".into(),
        });
        round_trip_response(&Response::Extended {
            revision: 3,
            source: "extended".into(),
        });
        round_trip_response(&Response::Predictions {
            tags: vec![vec!["O".into(), "B-1".into()]],
        });
        round_trip_response(&Response::Stats {
            counters: vec![("hits".into(), 3), ("misses".into(), 1)],
        });
        round_trip_response(&Response::unknown_task("acme", "triage"));
    }

    #[test]
    fn overloaded_error_round_trips_its_numbers() {
        let resp = Response::from_error(&Error::Overloaded {
            queue_depth: 64,
            limit: 64,
        });
        let line = resp.to_json().to_string();
        let back = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(
            back.to_error(),
            Some(Error::Overloaded {
                queue_depth: 64,
                limit: 64
            })
        );
    }

    #[test]
    fn deadline_error_round_trips_its_budget() {
        let resp = Response::from_error(&Error::DeadlineExceeded {
            budget_ms: 150,
            stage: "queue_wait".into(),
        });
        let line = resp.to_json().to_string();
        let back = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        match back.to_error() {
            Some(Error::DeadlineExceeded { budget_ms, .. }) => assert_eq!(budget_ms, 150),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn frame_too_large_maps_to_its_own_kind() {
        let resp = Response::from_error(&Error::FrameTooLarge {
            len: 2048,
            limit: 1024,
        });
        match &resp {
            Response::Error { kind, .. } => assert_eq!(kind, "frame_too_large"),
            other => panic!("expected Error, got {other:?}"),
        }
        round_trip_response(&resp);
    }

    #[test]
    fn read_frame_splits_lines_and_reports_eof() {
        let mut reader = std::io::Cursor::new(b"alpha\nbeta\n".to_vec());
        let mut buf = Vec::new();
        let max = 64;
        assert_eq!(
            read_frame(&mut reader, &mut buf, max).unwrap(),
            FrameRead::Frame(b"alpha".to_vec())
        );
        assert_eq!(
            read_frame(&mut reader, &mut buf, max).unwrap(),
            FrameRead::Frame(b"beta".to_vec())
        );
        assert_eq!(
            read_frame(&mut reader, &mut buf, max).unwrap(),
            FrameRead::Eof
        );
    }

    #[test]
    fn read_frame_reports_truncation_mid_line() {
        let mut reader = std::io::Cursor::new(b"no newline here".to_vec());
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut reader, &mut buf, 64).unwrap(),
            FrameRead::Truncated
        );
    }

    #[test]
    fn read_frame_caps_oversized_frames() {
        // 100 bytes without a newline against a 16-byte cap: memory must stay
        // bounded and the reader must report how much it saw.
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut reader = std::io::Cursor::new(data);
        let mut buf = Vec::new();
        match read_frame(&mut reader, &mut buf, 16).unwrap() {
            FrameRead::TooLarge(seen) => assert!(seen > 16, "seen {seen} must exceed cap"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(buf.is_empty(), "oversized prefix must be discarded");
    }

    #[test]
    fn malformed_support_is_rejected() {
        let bad = r#"{"op":"adapt","tenant":"t","task":"k","ways":2,
                      "support":[{"tokens":["a","b"],"tags":["O"]}]}"#;
        assert!(Request::from_json(&Json::parse(bad).unwrap()).is_err());
        let bad_tag = r#"{"op":"adapt","tenant":"t","task":"k","ways":2,
                          "support":[{"tokens":["a"],"tags":["Q-9"]}]}"#;
        assert!(Request::from_json(&Json::parse(bad_tag).unwrap()).is_err());
        let empty = r#"{"op":"adapt","tenant":"t","task":"k","ways":2,"support":[]}"#;
        assert!(Request::from_json(&Json::parse(empty).unwrap()).is_err());
    }
}
