//! The serving daemon: worker pool, bounded admission, micro-batching,
//! deadlines and graceful degradation.
//!
//! A [`Server`] owns one frozen θ ([`Fewner`]) and shares it — `ParamStore`
//! is plain data — across a pool of scoped worker threads. Request flow:
//!
//! 1. Connection threads read **bounded** NDJSON frames
//!    ([`crate::protocol::read_frame`]), encode sentences, and enqueue
//!    prediction jobs. The queue is bounded: at the admission limit a cold
//!    request is shed immediately with [`Error::Overloaded`] instead of
//!    waiting — bounded latency beats unbounded queueing. Requests for
//!    *already-adapted* tenants are admitted up to a 2× overflow cap, so
//!    saturation sheds cold adapts first and warm traffic keeps flowing.
//! 2. Workers pop a job and *drain every queued job for the same `(tenant,
//!    task)`* up to the micro-batch sentence cap, then decode the merged
//!    batch with **one** [`Fewner::predict`] call — one gradient-free
//!    `Infer` arena, the φ-conditioned work hoisted once for the whole
//!    batch. Each batch runs under `catch_unwind`; a panicking batch emits
//!    `serve/worker_panic` and fails its own requests instead of killing
//!    the worker.
//! 3. Adaptation goes through the shared [`PhiCache`]: memory hit, warm
//!    disk reload, or a single-flight cold adapt.
//!
//! Every request may carry a `deadline_ms` budget (or inherit the server
//! default). The budget is checked at admission, on queue exit, inside the
//! φ-cache single-flight wait, and at the adapt/predict entry points; the
//! connection thread additionally bounds its response wait with
//! `recv_timeout`, so no client ever hangs past its budget plus a small
//! grace interval.
//!
//! Shutdown is orderly: the `shutdown` op stops the accept loop, workers
//! drain the queue, connection threads notice via read timeouts, and the
//! final [`Server::run`] return flushes the tracer.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use fewner_core::{AdaptedCtx, Fewner, ServeOptions};
use fewner_models::{EncodedSentence, LabeledSentence, TokenEncoder};
use fewner_obs::Tracer;
use fewner_text::TagSet;
use fewner_util::fault::{self, ServeFault};
use fewner_util::{Deadline, Error, Json, Result};

use crate::cache::{CacheKey, Lookup, PhiCache};
use crate::protocol::{
    read_frame, FrameRead, Request, Response, SupportSentence, DEFAULT_MAX_FRAME_BYTES,
};

/// Extra wall-clock a connection thread grants its worker past the request
/// deadline before giving up on the response channel. Covers the gap
/// between a worker observing expiry and the error arriving.
const RESPONSE_GRACE: Duration = Duration::from_millis(50);

/// Pool and admission knobs (the φ-cache knobs live in
/// [`fewner_core::CachePolicy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Prediction worker threads (≥ 1 enforced).
    pub workers: usize,
    /// Maximum queued prediction jobs before admission sheds cold work.
    /// Warm (already-adapted) requests overflow up to 2× this limit.
    pub queue_limit: usize,
    /// Largest NDJSON frame a client may send (≥ 1 KiB enforced).
    pub max_frame_bytes: usize,
    /// Default per-request time budget in milliseconds applied when a
    /// request carries no `deadline_ms` of its own; `0` means unbounded.
    pub deadline_ms: u64,
}

impl ServerConfig {
    /// Defaults: 2 workers, 64 queued jobs, 1 MiB frames, no deadline.
    pub fn new() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_limit: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            deadline_ms: 0,
        }
    }

    /// Sets the worker-thread count (≥ 1 enforced).
    pub fn workers(mut self, n: usize) -> ServerConfig {
        self.workers = n.max(1);
        self
    }

    /// Sets the admission limit (≥ 1 enforced).
    pub fn queue_limit(mut self, n: usize) -> ServerConfig {
        self.queue_limit = n.max(1);
        self
    }

    /// Sets the frame-size cap (≥ 1 KiB enforced).
    pub fn max_frame_bytes(mut self, n: usize) -> ServerConfig {
        self.max_frame_bytes = n.max(1 << 10);
        self
    }

    /// Sets the default request deadline; `0` disables it.
    pub fn deadline_ms(mut self, ms: u64) -> ServerConfig {
        self.deadline_ms = ms;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig::new()
    }
}

/// One queued prediction request. The response channel carries the decoded
/// index sequences plus the way count needed to render tag names.
struct Job {
    key: CacheKey,
    ways: Option<usize>,
    support: Option<Vec<LabeledSentence>>,
    sentences: Vec<EncodedSentence>,
    deadline: Option<Deadline>,
    resp: mpsc::Sender<Result<(Vec<Vec<usize>>, usize)>>,
}

/// A multi-tenant FEWNER serving daemon. Construct once, then [`Server::run`]
/// on a bound listener; all state is shared by reference across the scoped
/// worker and connection threads.
pub struct Server {
    learner: Fewner,
    enc: TokenEncoder,
    opts: ServeOptions,
    cfg: ServerConfig,
    cache: PhiCache,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    // Resilience counters, surfaced through the `stats` op so load tools
    // and CI can assert on them without scraping traces.
    deadline_missed: AtomicU64,
    shed_cold: AtomicU64,
    retried_requests: AtomicU64,
    worker_panics: AtomicU64,
    frames_rejected: AtomicU64,
    poison_observed: AtomicBool,
}

impl Server {
    /// Builds a server around a trained learner. The φ-cache policy and
    /// tracer come from `opts`; the persistence directory (if any) is
    /// created here.
    pub fn new(
        learner: Fewner,
        enc: TokenEncoder,
        opts: ServeOptions,
        cfg: ServerConfig,
    ) -> Result<Server> {
        let cache = PhiCache::new(opts.cache_policy().clone(), opts.tracer_ref().clone())?;
        Ok(Server {
            learner,
            enc,
            opts,
            cfg,
            cache,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            deadline_missed: AtomicU64::new(0),
            shed_cold: AtomicU64::new(0),
            retried_requests: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            frames_rejected: AtomicU64::new(0),
            poison_observed: AtomicBool::new(false),
        })
    }

    /// The shared φ-cache (tests inspect stats through this).
    pub fn cache(&self) -> &PhiCache {
        &self.cache
    }

    /// The tracer every span and counter goes through.
    pub fn tracer(&self) -> &Tracer {
        self.opts.tracer_ref()
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests an orderly shutdown: stop accepting, drain the queue, join.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Take the lock so a worker between its empty-check and its wait
        // cannot miss the wakeup.
        let _q = self.lock_queue();
        self.available.notify_all();
    }

    /// Locks the job queue, recovering from poisoning. A poisoned queue
    /// means some thread panicked mid-critical-section; the data (a job
    /// deque) stays structurally valid, so serving continues — but the
    /// first observation is recorded as a `serve/worker_panic` event so the
    /// incident is visible in traces.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        match self.queue.lock() {
            Ok(q) => q,
            Err(poisoned) => {
                if !self.poison_observed.swap(true, Ordering::AcqRel) {
                    self.worker_panics.fetch_add(1, Ordering::Relaxed);
                    self.tracer().event(
                        "serve/worker_panic",
                        &[("context", "queue mutex poisoned".into())],
                    );
                    self.tracer().incr("serve/worker_panic", 1);
                }
                poisoned.into_inner()
            }
        }
    }

    /// Records a worker-pool panic (counter + trace event).
    fn note_worker_panic(&self, context: &str) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
        self.tracer().event(
            "serve/worker_panic",
            &[("context", context.to_string().into())],
        );
        self.tracer().incr("serve/worker_panic", 1);
    }

    /// The request's effective deadline: its own budget if it sent one,
    /// else the server default (0 = unbounded).
    fn effective_deadline(&self, deadline_ms: Option<u64>) -> Option<Deadline> {
        deadline_ms
            .or(if self.cfg.deadline_ms > 0 {
                Some(self.cfg.deadline_ms)
            } else {
                None
            })
            .map(Deadline::from_ms)
    }

    /// Serves until a `shutdown` request arrives. Spawns the worker pool and
    /// one thread per connection inside a scope, so `run` returns only after
    /// every thread has exited; the tracer is flushed on the way out.
    pub fn run(&self, listener: TcpListener) -> Result<()> {
        listener.set_nonblocking(true).map_err(|e| Error::Io {
            path: "listener".into(),
            detail: e.to_string(),
        })?;
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| self.worker());
            }
            while !self.shutting_down() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        s.spawn(move || self.handle_conn(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    // Transient accept errors (e.g. ECONNABORTED) are not
                    // fatal to the daemon.
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            self.available.notify_all();
        });
        self.tracer().flush()
    }

    // ------------------------------------------------------------------
    // Worker pool
    // ------------------------------------------------------------------

    fn worker(&self) {
        loop {
            let first = {
                let mut q = self.lock_queue();
                loop {
                    if let Some(job) = q.pop_front() {
                        break Some(job);
                    }
                    if self.shutting_down() {
                        break None;
                    }
                    q = self.available.wait(q).unwrap_or_else(|p| p.into_inner());
                }
            };
            let Some(first) = first else { return };

            // A job whose budget ran out while queued is answered with the
            // typed error instead of wasting a batch slot on it.
            if let Some(d) = &first.deadline {
                if let Err(e) = d.check("queue_wait") {
                    first.resp.send(Err(e)).ok();
                    continue;
                }
            }

            // Micro-batch: steal every queued job for the same key, up to
            // the sentence cap. The whole merged batch then shares one
            // `Infer` arena and one φ hoist. Expired same-key jobs are
            // failed in passing.
            let mut jobs = vec![first];
            let mut sentences = jobs[0].sentences.len();
            {
                let mut q = self.lock_queue();
                let mut i = 0;
                while i < q.len() {
                    if q[i].key != jobs[0].key {
                        i += 1;
                        continue;
                    }
                    if q[i].deadline.as_ref().is_some_and(Deadline::expired) {
                        let job = q.remove(i).expect("index in bounds");
                        let budget_ms = job.deadline.as_ref().map_or(0, Deadline::budget_ms);
                        job.resp
                            .send(Err(Error::DeadlineExceeded {
                                budget_ms,
                                stage: "queue_wait".into(),
                            }))
                            .ok();
                        continue;
                    }
                    if sentences + q[i].sentences.len() <= self.opts.batch_size() {
                        let job = q.remove(i).expect("index in bounds");
                        sentences += job.sentences.len();
                        jobs.push(job);
                    } else {
                        i += 1;
                    }
                }
            }
            // A panicking batch drops its response senders (the waiting
            // connection threads observe `WorkerPanic`) but must not kill
            // the worker thread: the pool keeps serving.
            if catch_unwind(AssertUnwindSafe(|| self.process_batch(jobs))).is_err() {
                self.note_worker_panic("prediction batch panicked");
            }
        }
    }

    fn process_batch(&self, jobs: Vec<Job>) {
        let key = jobs[0].key.clone();
        let deadline = jobs[0].deadline;
        let opts = self.opts.with_deadline(deadline);
        // Any job in the batch may carry the support set that makes a cold
        // adapt possible; first one wins (single-flight runs it once).
        let inline = jobs
            .iter()
            .find_map(|j| Some((j.support.clone()?, j.ways?)));
        let adapt = || match inline {
            Some((support, ways)) => self.run_adapt(&support, ways, &opts),
            None => Err(Error::InvalidConfig(format!(
                "no adapted context for `{}/{}` and no support provided",
                key.0, key.1
            ))),
        };
        match self
            .cache
            .get_or_adapt_within(&key, deadline.as_ref(), adapt)
        {
            Ok((ctx, _source)) => {
                if jobs.len() > 1 {
                    self.tracer()
                        .incr("serve/batch_merged", (jobs.len() - 1) as u64);
                }
                let all: Vec<EncodedSentence> = jobs
                    .iter()
                    .flat_map(|j| j.sentences.iter().cloned())
                    .collect();
                match self.learner.predict(&ctx, &all, &opts) {
                    Ok(mut preds) => {
                        for job in jobs {
                            let rest = preds.split_off(job.sentences.len());
                            let mine = std::mem::replace(&mut preds, rest);
                            job.resp.send(Ok((mine, ctx.n_ways()))).ok();
                        }
                    }
                    Err(e) => {
                        for job in jobs {
                            job.resp.send(Err(e.clone())).ok();
                        }
                    }
                }
            }
            Err(e) => {
                for job in jobs {
                    job.resp.send(Err(e.clone())).ok();
                }
            }
        }
    }

    /// Runs the inner loop for a cold adapt, honouring an armed
    /// `serve_adapt_stall` fault: the stall sleeps in small slices and
    /// checks the deadline between slices, so an injected stall can never
    /// pin a request past its budget.
    fn run_adapt(
        &self,
        support: &[LabeledSentence],
        ways: usize,
        opts: &ServeOptions,
    ) -> Result<AdaptedCtx> {
        if fault::serve_adapt_stall_fault() {
            self.tracer().incr("serve/fault_adapt_stall", 1);
            for _ in 0..40 {
                if let Some(d) = opts.deadline() {
                    d.check("adapt")?;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        self.learner.adapt_support(support, ways, opts)
    }

    /// Admission control: bounded queue, shed-don't-wait. Warm requests
    /// (already-adapted tenants) overflow up to twice the limit so
    /// saturation sheds only cold adapts first.
    fn submit(&self, job: Job, warm: bool) -> Result<()> {
        let mut q = self.lock_queue();
        if self.shutting_down() {
            return Err(Error::InvalidConfig("server is shutting down".into()));
        }
        let limit = if warm {
            self.cfg.queue_limit * 2
        } else {
            self.cfg.queue_limit
        };
        if q.len() >= limit {
            let queue_depth = q.len();
            drop(q);
            self.tracer().incr("serve/shed", 1);
            if !warm {
                self.shed_cold.fetch_add(1, Ordering::Relaxed);
                self.tracer().incr("serve/shed_cold", 1);
            }
            return Err(Error::Overloaded { queue_depth, limit });
        }
        q.push_back(job);
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Connections
    // ------------------------------------------------------------------

    fn handle_conn(&self, stream: TcpStream) {
        // Read timeouts let a conn thread notice shutdown instead of
        // blocking forever on an idle client.
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .ok();
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        // Partial-frame bytes survive read-timeout retries here.
        let mut partial: Vec<u8> = Vec::new();
        loop {
            let frame = loop {
                match read_frame(&mut reader, &mut partial, self.cfg.max_frame_bytes) {
                    Ok(frame) => break frame,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if self.shutting_down() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            };
            let line = match frame {
                FrameRead::Frame(bytes) => match String::from_utf8(bytes) {
                    Ok(line) => line,
                    Err(_) => {
                        let resp = Response::from_error(&Error::Serde(
                            "request is not valid UTF-8".into(),
                        ));
                        if self.write_response(&mut writer, &resp, None).is_err() {
                            return;
                        }
                        continue;
                    }
                },
                FrameRead::Eof | FrameRead::Truncated => return,
                FrameRead::TooLarge(len) => {
                    self.frames_rejected.fetch_add(1, Ordering::Relaxed);
                    self.tracer().incr("serve/frame_rejected", 1);
                    let resp = Response::from_error(&Error::FrameTooLarge {
                        len,
                        limit: self.cfg.max_frame_bytes,
                    });
                    self.write_response(&mut writer, &resp, None).ok();
                    // The stream may be mid-frame; resynchronising is not
                    // worth trusting a client that sent this.
                    return;
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let (resp, id) = self.handle_line(trimmed);
            let done = matches!(resp, Response::ShuttingDown);
            if self
                .write_response(&mut writer, &resp, id.as_deref())
                .is_err()
            {
                return;
            }
            if done {
                return;
            }
        }
    }

    /// Serialises one response (echoing the request `id`, if any) and
    /// writes it, consulting the armed fault plan for injected connection
    /// drops and frame corruption.
    fn write_response(
        &self,
        writer: &mut impl Write,
        resp: &Response,
        id: Option<&str>,
    ) -> std::io::Result<()> {
        let mut json = resp.to_json();
        if let (Some(id), Json::Obj(fields)) = (id, &mut json) {
            fields.push(("id".into(), Json::Str(id.to_string())));
        }
        let mut line = json.to_string();
        match fault::serve_response_fault() {
            Some(ServeFault::ConnDrop) => {
                self.tracer().incr("serve/fault_conn_drop", 1);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected connection drop",
                ));
            }
            Some(ServeFault::FrameCorrupt) => {
                self.tracer().incr("serve/fault_frame_corrupt", 1);
                // Smash the leading `{` so the client's JSON parse fails
                // deterministically and its retry policy kicks in.
                line.replace_range(0..1, "!");
            }
            Some(ServeFault::AdaptStall) | None => {}
        }
        writeln!(writer, "{line}")?;
        writer.flush()
    }

    fn handle_line(&self, line: &str) -> (Response, Option<String>) {
        let json = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => return (Response::from_error(&e), None),
        };
        // `id` and `attempt` are envelope fields, orthogonal to the op: the
        // id is echoed on the response so a retrying client can discard
        // stale replies; a non-zero attempt marks a retry.
        let id = json
            .get("id")
            .and_then(|v| v.as_str().ok())
            .map(str::to_string);
        let attempt = json
            .get("attempt")
            .and_then(|v| v.as_u64().ok())
            .unwrap_or(0);
        if attempt > 0 {
            self.retried_requests.fetch_add(1, Ordering::Relaxed);
            self.tracer().incr("serve/request_retries", 1);
        }
        let req = match Request::from_json(&json) {
            Ok(req) => req,
            Err(e) => return (Response::from_error(&e), id),
        };
        self.tracer().incr("serve/requests", 1);
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats {
                counters: self.counters(),
            },
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
            Request::Adapt {
                tenant,
                task,
                ways,
                support,
                deadline_ms,
            } => match self.do_adapt(tenant, task, ways, &support, deadline_ms) {
                Ok(source) => Response::Adapted {
                    source: source.to_string(),
                },
                Err(e) => Response::from_error(&e),
            },
            Request::Extend {
                tenant,
                task,
                ways,
                support,
                deadline_ms,
            } => match self.do_extend(tenant, task, ways, &support, deadline_ms) {
                Ok((revision, source)) => Response::Extended {
                    revision,
                    source: source.to_string(),
                },
                Err(e) => Response::from_error(&e),
            },
            Request::Predict {
                tenant,
                task,
                sentences,
                ways,
                support,
                deadline_ms,
            } => match self.do_predict(tenant, task, sentences, ways, support, deadline_ms) {
                Ok(tags) => Response::Predictions { tags },
                Err(PredictFailure::Unknown { tenant, task }) => {
                    Response::unknown_task(&tenant, &task)
                }
                Err(PredictFailure::Error(e)) => Response::from_error(&e),
            },
        };
        // Deadline misses are counted centrally, wherever the expiry was
        // observed (admission, queue, φ-wait, adapt, response wait).
        if let Response::Error { kind, .. } = &resp {
            if kind == "deadline_exceeded" {
                self.deadline_missed.fetch_add(1, Ordering::Relaxed);
                self.tracer().incr("serve/deadline_missed", 1);
            }
        }
        (resp, id)
    }

    /// Validates a wire support set against the model and converts it to
    /// the encoded form the inner loop takes.
    fn encode_support(
        &self,
        ways: usize,
        support: &[SupportSentence],
    ) -> Result<Vec<LabeledSentence>> {
        let max = self.learner.backbone.config().max_ways();
        if ways == 0 || ways > max {
            return Err(Error::InvalidConfig(format!(
                "ways must be in 1..={max}, got {ways}"
            )));
        }
        let tags = TagSet::new(ways)?;
        support
            .iter()
            .map(|s| {
                for t in &s.tags {
                    if t.slot().is_some_and(|slot| slot >= ways) {
                        return Err(Error::InvalidConfig(format!(
                            "tag slot out of range for {ways}-way task"
                        )));
                    }
                }
                let indices = s.tags.iter().map(|t| tags.index(*t)).collect();
                Ok((self.enc.encode(&s.tokens), indices))
            })
            .collect()
    }

    fn do_adapt(
        &self,
        tenant: String,
        task: String,
        ways: usize,
        support: &[SupportSentence],
        deadline_ms: Option<u64>,
    ) -> Result<&'static str> {
        let deadline = self.effective_deadline(deadline_ms);
        if let Some(d) = &deadline {
            d.check("admission")?;
        }
        let encoded = self.encode_support(ways, support)?;
        let key: CacheKey = (tenant, task);
        let opts = self.opts.with_deadline(deadline);
        // Adaptation runs inline on the connection thread; the cache's
        // single-flight cell dedups a herd of identical adapt requests, and
        // a waiter's deadline bounds how long it blocks on the leader.
        let (_ctx, lookup) = self
            .cache
            .get_or_adapt_within(&key, deadline.as_ref(), || {
                self.run_adapt(&encoded, ways, &opts)
            })?;
        Ok(lookup.as_str())
    }

    /// Incremental online adaptation: grows a known context with new
    /// support (a few warm-started inner steps over the merged set) and
    /// installs the successor revision atomically via
    /// [`PhiCache::replace`]. An unknown key has nothing to extend, so the
    /// new support alone feeds a full cold adapt — the caller sees
    /// `"cold"` and revision 1, and can tell the difference.
    fn do_extend(
        &self,
        tenant: String,
        task: String,
        ways: usize,
        support: &[SupportSentence],
        deadline_ms: Option<u64>,
    ) -> Result<(u32, &'static str)> {
        let deadline = self.effective_deadline(deadline_ms);
        if let Some(d) = &deadline {
            d.check("admission")?;
        }
        let encoded = self.encode_support(ways, support)?;
        let key: CacheKey = (tenant, task);
        let opts = self.opts.with_deadline(deadline);
        let (ctx, lookup) = self
            .cache
            .get_or_adapt_within(&key, deadline.as_ref(), || {
                self.run_adapt(&encoded, ways, &opts)
            })?;
        if matches!(lookup, Lookup::Cold) {
            return Ok((ctx.revision(), "cold"));
        }
        if ctx.n_ways() != ways {
            return Err(Error::InvalidConfig(format!(
                "extend sent {ways} ways but `{}/{}` was adapted {}-way",
                key.0,
                key.1,
                ctx.n_ways(),
            )));
        }
        let extended = self.learner.extend(&ctx, &encoded, &opts)?;
        let revision = extended.revision();
        self.cache.replace(&key, Arc::new(extended));
        Ok((revision, "extended"))
    }

    fn do_predict(
        &self,
        tenant: String,
        task: String,
        sentences: Vec<Vec<String>>,
        ways: Option<usize>,
        support: Option<Vec<SupportSentence>>,
        deadline_ms: Option<u64>,
    ) -> std::result::Result<Vec<Vec<String>>, PredictFailure> {
        if sentences.is_empty() || sentences.iter().any(Vec::is_empty) {
            return Err(Error::InvalidConfig("empty query sentence".into()).into());
        }
        let deadline = self.effective_deadline(deadline_ms);
        if let Some(d) = &deadline {
            d.check("admission").map_err(PredictFailure::Error)?;
        }
        let key: CacheKey = (tenant, task);
        let encoded_support = match (&support, ways) {
            (Some(s), Some(w)) => Some(self.encode_support(w, s).map_err(PredictFailure::Error)?),
            (Some(_), None) => {
                return Err(Error::InvalidConfig("inline support requires `ways`".into()).into())
            }
            (None, _) => None,
        };
        if encoded_support.is_none() && !self.cache.known(&key) {
            return Err(PredictFailure::Unknown {
                tenant: key.0,
                task: key.1,
            });
        }
        // Warm = a ready context exists (settled cell or persisted φ).
        // Requests queued behind a still-running adapt stay cold: under
        // saturation they are exactly the work worth shedding.
        let warm = self.cache.ready(&key);
        let encoded: Vec<EncodedSentence> = sentences.iter().map(|s| self.enc.encode(s)).collect();
        let (tx, rx) = mpsc::channel();
        self.submit(
            Job {
                key,
                ways,
                support: encoded_support,
                sentences: encoded,
                deadline,
                resp: tx,
            },
            warm,
        )
        .map_err(PredictFailure::Error)?;
        // The response wait is the backstop no-hang guarantee: even if a
        // worker wedges mid-batch, the connection thread gives up one grace
        // interval past the request's budget.
        let outcome = match &deadline {
            Some(d) => {
                let wait = d.remaining().unwrap_or(Duration::ZERO) + RESPONSE_GRACE;
                match rx.recv_timeout(wait) {
                    Ok(result) => result,
                    Err(mpsc::RecvTimeoutError::Timeout) => Err(Error::DeadlineExceeded {
                        budget_ms: d.budget_ms(),
                        stage: "response_wait".into(),
                    }),
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(Error::WorkerPanic {
                        context: "serve worker".into(),
                    }),
                }
            }
            None => rx.recv().unwrap_or_else(|_| {
                Err(Error::WorkerPanic {
                    context: "serve worker".into(),
                })
            }),
        };
        let (preds, n_ways) = outcome.map_err(PredictFailure::Error)?;
        let tags = TagSet::new(n_ways).map_err(PredictFailure::Error)?;
        Ok(preds
            .iter()
            .map(|sent| sent.iter().map(|&i| tags.name(i)).collect())
            .collect())
    }

    /// Cache + queue + resilience counters for the `stats` op, sorted by
    /// name.
    fn counters(&self) -> Vec<(String, u64)> {
        let s = self.cache.stats();
        let depth = self.lock_queue().len() as u64;
        let mut counters = vec![
            ("cache_evictions".to_string(), s.evictions),
            ("cache_expirations".to_string(), s.expirations),
            ("cache_hits".to_string(), s.hits),
            ("cache_misses".to_string(), s.misses),
            (
                "deadline_missed".to_string(),
                self.deadline_missed.load(Ordering::Relaxed),
            ),
            (
                "frames_rejected".to_string(),
                self.frames_rejected.load(Ordering::Relaxed),
            ),
            (
                "persist_degraded".to_string(),
                self.cache.is_persist_degraded() as u64,
            ),
            ("phi_persists".to_string(), s.persists),
            ("phi_reloads".to_string(), s.reloads),
            ("phi_wait_timeouts".to_string(), s.wait_timeouts),
            ("queue_depth".to_string(), depth),
            ("resident_contexts".to_string(), self.cache.len() as u64),
            (
                "retried_requests".to_string(),
                self.retried_requests.load(Ordering::Relaxed),
            ),
            (
                "shed_cold".to_string(),
                self.shed_cold.load(Ordering::Relaxed),
            ),
            (
                "worker_panics".to_string(),
                self.worker_panics.load(Ordering::Relaxed),
            ),
        ];
        counters.sort();
        counters
    }
}

/// Predict failures split the `unknown_task` wire error from ordinary
/// library errors.
enum PredictFailure {
    Unknown { tenant: String, task: String },
    Error(Error),
}

impl From<Error> for PredictFailure {
    fn from(e: Error) -> PredictFailure {
        PredictFailure::Error(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Server>();
    }

    #[test]
    fn server_config_floors() {
        let cfg = ServerConfig::new()
            .workers(0)
            .queue_limit(0)
            .max_frame_bytes(0);
        assert_eq!((cfg.workers, cfg.queue_limit), (1, 1));
        assert_eq!(cfg.max_frame_bytes, 1 << 10);
    }

    #[test]
    fn server_config_resilience_defaults() {
        let cfg = ServerConfig::new();
        assert_eq!(cfg.max_frame_bytes, DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(cfg.deadline_ms, 0, "no deadline unless asked for");
        assert_eq!(ServerConfig::new().deadline_ms(250).deadline_ms, 250);
    }
}
