//! The serving daemon: worker pool, bounded admission, micro-batching.
//!
//! A [`Server`] owns one frozen θ ([`Fewner`]) and shares it — `ParamStore`
//! is plain data — across a pool of scoped worker threads. Request flow:
//!
//! 1. Connection threads parse NDJSON lines ([`crate::protocol`]), encode
//!    sentences, and enqueue prediction jobs. The queue is **bounded**: at
//!    the admission limit a request is shed immediately with
//!    [`Error::Overloaded`] instead of waiting — bounded latency beats
//!    unbounded queueing.
//! 2. Workers pop a job and *drain every queued job for the same `(tenant,
//!    task)`* up to the micro-batch sentence cap, then decode the merged
//!    batch with **one** [`Fewner::predict`] call — one gradient-free
//!    `Infer` arena, the φ-conditioned work hoisted once for the whole
//!    batch.
//! 3. Adaptation goes through the shared [`PhiCache`]: memory hit, warm
//!    disk reload, or a single-flight cold adapt.
//!
//! Shutdown is orderly: the `shutdown` op stops the accept loop, workers
//! drain the queue, connection threads notice via read timeouts, and the
//! final [`Server::run`] return flushes the tracer.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use fewner_core::{Fewner, ServeOptions};
use fewner_models::{EncodedSentence, LabeledSentence, TokenEncoder};
use fewner_obs::Tracer;
use fewner_text::TagSet;
use fewner_util::{Error, Json, Result};

use crate::cache::{CacheKey, PhiCache};
use crate::protocol::{Request, Response, SupportSentence};

/// Pool and admission knobs (the φ-cache knobs live in
/// [`fewner_core::CachePolicy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Prediction worker threads (≥ 1 enforced).
    pub workers: usize,
    /// Maximum queued prediction jobs before admission sheds.
    pub queue_limit: usize,
}

impl ServerConfig {
    /// Defaults: 2 workers, 64 queued jobs.
    pub fn new() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_limit: 64,
        }
    }

    /// Sets the worker-thread count (≥ 1 enforced).
    pub fn workers(mut self, n: usize) -> ServerConfig {
        self.workers = n.max(1);
        self
    }

    /// Sets the admission limit (≥ 1 enforced).
    pub fn queue_limit(mut self, n: usize) -> ServerConfig {
        self.queue_limit = n.max(1);
        self
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig::new()
    }
}

/// One queued prediction request. The response channel carries the decoded
/// index sequences plus the way count needed to render tag names.
struct Job {
    key: CacheKey,
    ways: Option<usize>,
    support: Option<Vec<LabeledSentence>>,
    sentences: Vec<EncodedSentence>,
    resp: mpsc::Sender<Result<(Vec<Vec<usize>>, usize)>>,
}

/// A multi-tenant FEWNER serving daemon. Construct once, then [`Server::run`]
/// on a bound listener; all state is shared by reference across the scoped
/// worker and connection threads.
pub struct Server {
    learner: Fewner,
    enc: TokenEncoder,
    opts: ServeOptions,
    cfg: ServerConfig,
    cache: PhiCache,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Server {
    /// Builds a server around a trained learner. The φ-cache policy and
    /// tracer come from `opts`; the persistence directory (if any) is
    /// created here.
    pub fn new(
        learner: Fewner,
        enc: TokenEncoder,
        opts: ServeOptions,
        cfg: ServerConfig,
    ) -> Result<Server> {
        let cache = PhiCache::new(opts.cache_policy().clone(), opts.tracer_ref().clone())?;
        Ok(Server {
            learner,
            enc,
            opts,
            cfg,
            cache,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The shared φ-cache (tests inspect stats through this).
    pub fn cache(&self) -> &PhiCache {
        &self.cache
    }

    /// The tracer every span and counter goes through.
    pub fn tracer(&self) -> &Tracer {
        self.opts.tracer_ref()
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests an orderly shutdown: stop accepting, drain the queue, join.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Take the lock so a worker between its empty-check and its wait
        // cannot miss the wakeup.
        let _q = self.lock_queue();
        self.available.notify_all();
    }

    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Serves until a `shutdown` request arrives. Spawns the worker pool and
    /// one thread per connection inside a scope, so `run` returns only after
    /// every thread has exited; the tracer is flushed on the way out.
    pub fn run(&self, listener: TcpListener) -> Result<()> {
        listener.set_nonblocking(true).map_err(|e| Error::Io {
            path: "listener".into(),
            detail: e.to_string(),
        })?;
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| self.worker());
            }
            while !self.shutting_down() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        s.spawn(move || self.handle_conn(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    // Transient accept errors (e.g. ECONNABORTED) are not
                    // fatal to the daemon.
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            self.available.notify_all();
        });
        self.tracer().flush()
    }

    // ------------------------------------------------------------------
    // Worker pool
    // ------------------------------------------------------------------

    fn worker(&self) {
        loop {
            let first = {
                let mut q = self.lock_queue();
                loop {
                    if let Some(job) = q.pop_front() {
                        break Some(job);
                    }
                    if self.shutting_down() {
                        break None;
                    }
                    q = self.available.wait(q).unwrap_or_else(|p| p.into_inner());
                }
            };
            let Some(first) = first else { return };

            // Micro-batch: steal every queued job for the same key, up to
            // the sentence cap. The whole merged batch then shares one
            // `Infer` arena and one φ hoist.
            let mut jobs = vec![first];
            let mut sentences = jobs[0].sentences.len();
            {
                let mut q = self.lock_queue();
                let mut i = 0;
                while i < q.len() {
                    let same = q[i].key == jobs[0].key;
                    let fits = sentences + q[i].sentences.len() <= self.opts.batch_size();
                    if same && fits {
                        let job = q.remove(i).expect("index in bounds");
                        sentences += job.sentences.len();
                        jobs.push(job);
                    } else {
                        i += 1;
                    }
                }
            }
            self.process_batch(jobs);
        }
    }

    fn process_batch(&self, jobs: Vec<Job>) {
        let key = jobs[0].key.clone();
        // Any job in the batch may carry the support set that makes a cold
        // adapt possible; first one wins (single-flight runs it once).
        let inline = jobs
            .iter()
            .find_map(|j| Some((j.support.clone()?, j.ways?)));
        let adapt = || match inline {
            Some((support, ways)) => self.learner.adapt_support(&support, ways, &self.opts),
            None => Err(Error::InvalidConfig(format!(
                "no adapted context for `{}/{}` and no support provided",
                key.0, key.1
            ))),
        };
        match self.cache.get_or_adapt(&key, adapt) {
            Ok((ctx, _source)) => {
                if jobs.len() > 1 {
                    self.tracer()
                        .incr("serve/batch_merged", (jobs.len() - 1) as u64);
                }
                let all: Vec<EncodedSentence> = jobs
                    .iter()
                    .flat_map(|j| j.sentences.iter().cloned())
                    .collect();
                match self.learner.predict(&ctx, &all, &self.opts) {
                    Ok(mut preds) => {
                        for job in jobs {
                            let rest = preds.split_off(job.sentences.len());
                            let mine = std::mem::replace(&mut preds, rest);
                            job.resp.send(Ok((mine, ctx.n_ways()))).ok();
                        }
                    }
                    Err(e) => {
                        for job in jobs {
                            job.resp.send(Err(e.clone())).ok();
                        }
                    }
                }
            }
            Err(e) => {
                for job in jobs {
                    job.resp.send(Err(e.clone())).ok();
                }
            }
        }
    }

    /// Admission control: bounded queue, shed-don't-wait.
    fn submit(&self, job: Job) -> Result<()> {
        let mut q = self.lock_queue();
        if self.shutting_down() {
            return Err(Error::InvalidConfig("server is shutting down".into()));
        }
        if q.len() >= self.cfg.queue_limit {
            let queue_depth = q.len();
            drop(q);
            self.tracer().incr("serve/shed", 1);
            return Err(Error::Overloaded {
                queue_depth,
                limit: self.cfg.queue_limit,
            });
        }
        q.push_back(job);
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Connections
    // ------------------------------------------------------------------

    fn handle_conn(&self, stream: TcpStream) {
        // Read timeouts let a conn thread notice shutdown instead of
        // blocking forever on an idle client.
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .ok();
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            let n = loop {
                match reader.read_line(&mut line) {
                    Ok(n) => break n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        // `read_line` keeps any partial bytes in `line`;
                        // retrying continues the same line.
                        if self.shutting_down() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            };
            if n == 0 {
                return; // client closed
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let resp = self.handle_line(trimmed);
            let done = matches!(resp, Response::ShuttingDown);
            if writeln!(writer, "{}", resp.to_json()).is_err() || writer.flush().is_err() {
                return;
            }
            if done {
                return;
            }
        }
    }

    fn handle_line(&self, line: &str) -> Response {
        let req = match Json::parse(line).and_then(|j| Request::from_json(&j)) {
            Ok(req) => req,
            Err(e) => return Response::from_error(&e),
        };
        self.tracer().incr("serve/requests", 1);
        match req {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats {
                counters: self.counters(),
            },
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
            Request::Adapt {
                tenant,
                task,
                ways,
                support,
            } => match self.do_adapt(tenant, task, ways, &support) {
                Ok(source) => Response::Adapted {
                    source: source.to_string(),
                },
                Err(e) => Response::from_error(&e),
            },
            Request::Predict {
                tenant,
                task,
                sentences,
                ways,
                support,
            } => match self.do_predict(tenant, task, sentences, ways, support) {
                Ok(tags) => Response::Predictions { tags },
                Err(PredictFailure::Unknown { tenant, task }) => {
                    Response::unknown_task(&tenant, &task)
                }
                Err(PredictFailure::Error(e)) => Response::from_error(&e),
            },
        }
    }

    /// Validates a wire support set against the model and converts it to
    /// the encoded form the inner loop takes.
    fn encode_support(
        &self,
        ways: usize,
        support: &[SupportSentence],
    ) -> Result<Vec<LabeledSentence>> {
        let max = self.learner.backbone.config().max_ways();
        if ways == 0 || ways > max {
            return Err(Error::InvalidConfig(format!(
                "ways must be in 1..={max}, got {ways}"
            )));
        }
        let tags = TagSet::new(ways)?;
        support
            .iter()
            .map(|s| {
                for t in &s.tags {
                    if t.slot().is_some_and(|slot| slot >= ways) {
                        return Err(Error::InvalidConfig(format!(
                            "tag slot out of range for {ways}-way task"
                        )));
                    }
                }
                let indices = s.tags.iter().map(|t| tags.index(*t)).collect();
                Ok((self.enc.encode(&s.tokens), indices))
            })
            .collect()
    }

    fn do_adapt(
        &self,
        tenant: String,
        task: String,
        ways: usize,
        support: &[SupportSentence],
    ) -> Result<&'static str> {
        let encoded = self.encode_support(ways, support)?;
        let key: CacheKey = (tenant, task);
        // Adaptation runs inline on the connection thread; the cache's
        // single-flight cell dedups a herd of identical adapt requests.
        let (_ctx, lookup) = self.cache.get_or_adapt(&key, || {
            self.learner.adapt_support(&encoded, ways, &self.opts)
        })?;
        Ok(lookup.as_str())
    }

    fn do_predict(
        &self,
        tenant: String,
        task: String,
        sentences: Vec<Vec<String>>,
        ways: Option<usize>,
        support: Option<Vec<SupportSentence>>,
    ) -> std::result::Result<Vec<Vec<String>>, PredictFailure> {
        if sentences.is_empty() || sentences.iter().any(Vec::is_empty) {
            return Err(Error::InvalidConfig("empty query sentence".into()).into());
        }
        let key: CacheKey = (tenant, task);
        let encoded_support = match (&support, ways) {
            (Some(s), Some(w)) => Some(self.encode_support(w, s).map_err(PredictFailure::Error)?),
            (Some(_), None) => {
                return Err(Error::InvalidConfig("inline support requires `ways`".into()).into())
            }
            (None, _) => None,
        };
        if encoded_support.is_none() && !self.cache.known(&key) {
            return Err(PredictFailure::Unknown {
                tenant: key.0,
                task: key.1,
            });
        }
        let encoded: Vec<EncodedSentence> = sentences.iter().map(|s| self.enc.encode(s)).collect();
        let (tx, rx) = mpsc::channel();
        self.submit(Job {
            key,
            ways,
            support: encoded_support,
            sentences: encoded,
            resp: tx,
        })
        .map_err(PredictFailure::Error)?;
        let (preds, n_ways) = rx
            .recv()
            .map_err(|_| {
                PredictFailure::Error(Error::WorkerPanic {
                    context: "serve worker".into(),
                })
            })?
            .map_err(PredictFailure::Error)?;
        let tags = TagSet::new(n_ways).map_err(PredictFailure::Error)?;
        Ok(preds
            .iter()
            .map(|sent| sent.iter().map(|&i| tags.name(i)).collect())
            .collect())
    }

    /// Cache + queue counters for the `stats` op, sorted by name.
    fn counters(&self) -> Vec<(String, u64)> {
        let s = self.cache.stats();
        let depth = self.lock_queue().len() as u64;
        let mut counters = vec![
            ("cache_evictions".to_string(), s.evictions),
            ("cache_expirations".to_string(), s.expirations),
            ("cache_hits".to_string(), s.hits),
            ("cache_misses".to_string(), s.misses),
            ("phi_persists".to_string(), s.persists),
            ("phi_reloads".to_string(), s.reloads),
            ("queue_depth".to_string(), depth),
            ("resident_contexts".to_string(), self.cache.len() as u64),
        ];
        counters.sort();
        counters
    }
}

/// Predict failures split the `unknown_task` wire error from ordinary
/// library errors.
enum PredictFailure {
    Unknown { tenant: String, task: String },
    Error(Error),
}

impl From<Error> for PredictFailure {
    fn from(e: Error) -> PredictFailure {
        PredictFailure::Error(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Server>();
    }

    #[test]
    fn server_config_floors() {
        let cfg = ServerConfig::new().workers(0).queue_limit(0);
        assert_eq!((cfg.workers, cfg.queue_limit), (1, 1));
    }
}
