//! A small blocking client for the NDJSON serving protocol.
//!
//! Used by the CLI, the load generator and the end-to-end tests; external
//! callers can treat it as reference documentation for the wire format.
//!
//! Two layers: [`Client`] is one bare connection — one request line in, one
//! response line out. [`RetryClient`] wraps it with the resilience
//! envelope: per-request ids (echoed by the server so stale replies are
//! detected), an `attempt` counter, deadline propagation, and a seeded
//! exponential-backoff retry loop that reconnects on connection-level
//! failures. Retries are safe for `adapt` because the server's φ-cache is
//! single-flight per `(tenant, task)` — a retried adapt lands on the same
//! settled cell instead of running a second inner loop.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use fewner_util::{Error, Json, Result, Rng};

use crate::protocol::{Request, Response, SupportSentence};

/// One connection to a running `fewner serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Io {
        path: what.to_string(),
        detail: e.to_string(),
    }
}

impl Client {
    /// Connects to a serving daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(|e| io_err("connect", e))?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Bounds every socket read and write. A client that sets this can
    /// never block forever on a wedged or partitioned server; the timeout
    /// surfaces as an [`Error::Io`].
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.writer
            .set_read_timeout(timeout)
            .map_err(|e| io_err("timeout", e))?;
        self.writer
            .set_write_timeout(timeout)
            .map_err(|e| io_err("timeout", e))
    }

    /// Sends one raw request line and reads back one raw response line
    /// (trailing newline stripped). The envelope layer uses this to attach
    /// fields the typed [`Request`] does not model.
    pub fn request_raw(&mut self, line: &str) -> Result<String> {
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| io_err("send", e))?;
        self.writer
            .write_all(b"\n")
            .map_err(|e| io_err("send", e))?;
        self.writer.flush().map_err(|e| io_err("send", e))?;
        let mut buf = String::new();
        let n = self
            .reader
            .read_line(&mut buf)
            .map_err(|e| io_err("recv", e))?;
        if n == 0 {
            return Err(Error::Io {
                path: "recv".into(),
                detail: "server closed the connection".into(),
            });
        }
        buf.truncate(buf.trim_end().len());
        Ok(buf)
    }

    /// Sends one request line and reads one response line.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        let line = self.request_raw(&req.to_json().to_string())?;
        Response::from_json(&Json::parse(&line)?)
    }

    /// Sends a request and converts error responses into typed errors
    /// (`overloaded` becomes [`Error::Overloaded`]).
    fn request_ok(&mut self, req: &Request) -> Result<Response> {
        let resp = self.request(req)?;
        match resp.to_error() {
            Some(e) => Err(e),
            None => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.request_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Adapts (or warms) `(tenant, task)` from a support set; returns the
    /// context source (`hot`, `warm` or `cold`).
    pub fn adapt(
        &mut self,
        tenant: &str,
        task: &str,
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<String> {
        let req = Request::Adapt {
            tenant: tenant.to_string(),
            task: task.to_string(),
            ways,
            support,
            deadline_ms: None,
        };
        match self.request_ok(&req)? {
            Response::Adapted { source } => Ok(source),
            other => Err(unexpected("adapt ack", &other)),
        }
    }

    /// Grows `(tenant, task)` with newly arrived support (incremental
    /// online adaptation); returns the context's new revision plus how it
    /// was produced (`extended`, or `cold` when the key was unknown and a
    /// full adapt ran instead).
    pub fn extend(
        &mut self,
        tenant: &str,
        task: &str,
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<(u32, String)> {
        let req = Request::Extend {
            tenant: tenant.to_string(),
            task: task.to_string(),
            ways,
            support,
            deadline_ms: None,
        };
        match self.request_ok(&req)? {
            Response::Extended { revision, source } => Ok((revision, source)),
            other => Err(unexpected("extend ack", &other)),
        }
    }

    /// Predicts tags for query sentences under an already-adapted task.
    pub fn predict(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
    ) -> Result<Vec<Vec<String>>> {
        self.predict_req(tenant, task, sentences, None)
    }

    /// Predicts with an inline support set (adapt-on-miss in one round
    /// trip).
    pub fn predict_with_support(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<Vec<Vec<String>>> {
        self.predict_req(tenant, task, sentences, Some((ways, support)))
    }

    fn predict_req(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
        inline: Option<(usize, Vec<SupportSentence>)>,
    ) -> Result<Vec<Vec<String>>> {
        let (ways, support) = match inline {
            Some((w, s)) => (Some(w), Some(s)),
            None => (None, None),
        };
        let req = Request::Predict {
            tenant: tenant.to_string(),
            task: task.to_string(),
            sentences: sentences.to_vec(),
            ways,
            support,
            deadline_ms: None,
        };
        match self.request_ok(&req)? {
            Response::Predictions { tags } => Ok(tags),
            other => Err(unexpected("predictions", &other)),
        }
    }

    /// Counter snapshot (cache + queue), sorted by name.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        match self.request_ok(&Request::Stats)? {
            Response::Stats { counters } => Ok(counters),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Requests an orderly shutdown of the daemon.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request_ok(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown ack", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> Error {
    Error::Serde(format!("expected {wanted}, got {:?}", got))
}

/// Retry knobs for [`RetryClient`]. Backoff is exponential from
/// `base_backoff_ms`, capped at `max_backoff_ms`, with ±50% jitter drawn
/// from a seeded in-tree [`Rng`] — two clients with the same seed back off
/// identically, which keeps chaos tests reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (default 2 → at most 3 attempts).
    pub max_retries: u32,
    /// First backoff interval in milliseconds (default 10).
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds (default 500).
    pub max_backoff_ms: u64,
    /// Deadline attached to every adapt/predict request, and used to size
    /// the socket timeout. `None` leaves requests unbounded.
    pub deadline_ms: Option<u64>,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// Defaults: 2 retries, 10 ms → 500 ms backoff, no deadline, seed 7.
    pub fn new() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            deadline_ms: None,
            seed: 7,
        }
    }

    /// Sets the retry budget (retries after the first attempt).
    pub fn max_retries(mut self, n: u32) -> RetryPolicy {
        self.max_retries = n;
        self
    }

    /// Sets the backoff range in milliseconds.
    pub fn backoff_ms(mut self, base: u64, max: u64) -> RetryPolicy {
        self.base_backoff_ms = base.max(1);
        self.max_backoff_ms = max.max(base.max(1));
        self
    }

    /// Sets the per-request deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> RetryPolicy {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::new()
    }
}

/// What a [`RetryClient`] has been through, for load reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts beyond the first, across all requests.
    pub retries: u64,
    /// Connections re-established after an I/O or framing failure.
    pub reconnects: u64,
    /// Requests that ultimately failed with `deadline_exceeded`.
    pub deadline_misses: u64,
}

/// A self-healing client: reconnects on connection failures and retries
/// transient errors with seeded exponential backoff.
///
/// Retryable classes: [`Error::Io`] (drop, timeout), [`Error::Serde`]
/// (corrupt frame, stale reply), [`Error::Overloaded`] (shed) and
/// [`Error::DeadlineExceeded`]. Everything else — bad requests, unknown
/// tasks — fails fast, since retrying cannot change the answer.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    rng: Rng,
    conn: Option<Client>,
    next_id: u64,
    stats: RetryStats,
}

impl RetryClient {
    /// Creates a client for `addr`; the connection is established lazily on
    /// the first request.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        let rng = Rng::new(policy.seed);
        RetryClient {
            addr: addr.into(),
            policy,
            rng,
            conn: None,
            next_id: 0,
            stats: RetryStats::default(),
        }
    }

    /// Retry/reconnect/deadline-miss counters so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// Sends a request through the retry loop.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        let id = format!("r{}", self.next_id);
        self.next_id += 1;
        let mut attempt: u32 = 0;
        loop {
            match self.attempt_once(req, &id, attempt) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // A failed read/write or a garbled frame leaves the
                    // stream in an unknown state: drop the connection so
                    // the next attempt starts clean.
                    if matches!(&e, Error::Io { .. } | Error::Serde(_))
                        && self.conn.take().is_some()
                    {
                        self.stats.reconnects += 1;
                    }
                    let retryable = matches!(
                        &e,
                        Error::Io { .. }
                            | Error::Serde(_)
                            | Error::Overloaded { .. }
                            | Error::DeadlineExceeded { .. }
                    );
                    if !retryable || attempt >= self.policy.max_retries {
                        if matches!(&e, Error::DeadlineExceeded { .. }) {
                            self.stats.deadline_misses += 1;
                        }
                        return Err(e);
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    self.backoff(attempt);
                }
            }
        }
    }

    fn attempt_once(&mut self, req: &Request, id: &str, attempt: u32) -> Result<Response> {
        if self.conn.is_none() {
            let mut conn = Client::connect(&self.addr)?;
            // Socket timeout = deadline + slack, so a wedged server surfaces
            // as a retryable I/O error instead of an indefinite block.
            if let Some(ms) = self.policy.deadline_ms {
                conn.set_io_timeout(Some(Duration::from_millis(ms.saturating_mul(2) + 500)))?;
            }
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let mut json = req.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.push(("id".into(), Json::Str(id.to_string())));
            if attempt > 0 {
                fields.push(("attempt".into(), Json::from(attempt as u64)));
            }
        }
        let line = conn.request_raw(&json.to_string())?;
        let parsed = Json::parse(&line)?;
        if let Some(echo) = parsed.get("id") {
            if echo.as_str().ok() != Some(id) {
                return Err(Error::Serde(format!(
                    "response id mismatch: expected `{id}`"
                )));
            }
        }
        let resp = Response::from_json(&parsed)?;
        match resp.to_error() {
            Some(e) => Err(e),
            None => Ok(resp),
        }
    }

    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << (attempt - 1).min(16));
        let capped = exp.min(self.policy.max_backoff_ms);
        let ms = (capped as f32 * self.rng.uniform(0.5, 1.5)) as u64;
        std::thread::sleep(Duration::from_millis(ms.max(1)));
    }

    fn request_ok(&mut self, req: &Request) -> Result<Response> {
        let resp = self.request(req)?;
        match resp.to_error() {
            Some(e) => Err(e),
            None => Ok(resp),
        }
    }

    /// Liveness probe (retried).
    pub fn ping(&mut self) -> Result<()> {
        match self.request_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Adapts `(tenant, task)` with the policy deadline attached; safe to
    /// retry thanks to the server-side single-flight cache.
    pub fn adapt(
        &mut self,
        tenant: &str,
        task: &str,
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<String> {
        let req = Request::Adapt {
            tenant: tenant.to_string(),
            task: task.to_string(),
            ways,
            support,
            deadline_ms: self.policy.deadline_ms,
        };
        match self.request_ok(&req)? {
            Response::Adapted { source } => Ok(source),
            other => Err(unexpected("adapt ack", &other)),
        }
    }

    /// Grows a task's context with new support (retried, deadline
    /// attached). Safe to retry: a duplicate extend after a lost reply
    /// re-runs over support the context already retains, which is
    /// idempotent in the labels it can predict (the revision may advance
    /// twice).
    pub fn extend(
        &mut self,
        tenant: &str,
        task: &str,
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<(u32, String)> {
        let req = Request::Extend {
            tenant: tenant.to_string(),
            task: task.to_string(),
            ways,
            support,
            deadline_ms: self.policy.deadline_ms,
        };
        match self.request_ok(&req)? {
            Response::Extended { revision, source } => Ok((revision, source)),
            other => Err(unexpected("extend ack", &other)),
        }
    }

    /// Predicts under an already-adapted task (retried, deadline attached).
    pub fn predict(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
    ) -> Result<Vec<Vec<String>>> {
        self.predict_req(tenant, task, sentences, None)
    }

    /// Predicts with an inline support set (retried, deadline attached).
    pub fn predict_with_support(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<Vec<Vec<String>>> {
        self.predict_req(tenant, task, sentences, Some((ways, support)))
    }

    fn predict_req(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
        inline: Option<(usize, Vec<SupportSentence>)>,
    ) -> Result<Vec<Vec<String>>> {
        let (ways, support) = match inline {
            Some((w, s)) => (Some(w), Some(s)),
            None => (None, None),
        };
        let req = Request::Predict {
            tenant: tenant.to_string(),
            task: task.to_string(),
            sentences: sentences.to_vec(),
            ways,
            support,
            deadline_ms: self.policy.deadline_ms,
        };
        match self.request_ok(&req)? {
            Response::Predictions { tags } => Ok(tags),
            other => Err(unexpected("predictions", &other)),
        }
    }

    /// Counter snapshot (retried).
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        match self.request_ok(&Request::Stats)? {
            Response::Stats { counters } => Ok(counters),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Requests an orderly shutdown. If a retry finds the accept loop
    /// already closed, the resulting connect error is surfaced as-is.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request_ok(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown ack", &other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_builders_floor_sanely() {
        let p = RetryPolicy::new().backoff_ms(0, 0);
        assert_eq!((p.base_backoff_ms, p.max_backoff_ms), (1, 1));
        let p = RetryPolicy::new().max_retries(5).deadline_ms(250).seed(9);
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.deadline_ms, Some(250));
        assert_eq!(p.seed, 9);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..8 {
            assert_eq!(a.uniform(0.5, 1.5).to_bits(), b.uniform(0.5, 1.5).to_bits());
        }
    }
}
