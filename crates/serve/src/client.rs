//! A small blocking client for the NDJSON serving protocol.
//!
//! Used by the CLI, the load generator and the end-to-end tests; external
//! callers can treat it as reference documentation for the wire format.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use fewner_util::{Error, Json, Result};

use crate::protocol::{Request, Response, SupportSentence};

/// One connection to a running `fewner serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Io {
        path: what.to_string(),
        detail: e.to_string(),
    }
}

impl Client {
    /// Connects to a serving daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(|e| io_err("connect", e))?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line and reads one response line.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        let mut line = req.to_json().to_string();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| io_err("send", e))?;
        self.writer.flush().map_err(|e| io_err("send", e))?;
        let mut buf = String::new();
        let n = self
            .reader
            .read_line(&mut buf)
            .map_err(|e| io_err("recv", e))?;
        if n == 0 {
            return Err(Error::Io {
                path: "recv".into(),
                detail: "server closed the connection".into(),
            });
        }
        Response::from_json(&Json::parse(buf.trim())?)
    }

    /// Sends a request and converts error responses into typed errors
    /// (`overloaded` becomes [`Error::Overloaded`]).
    fn request_ok(&mut self, req: &Request) -> Result<Response> {
        let resp = self.request(req)?;
        match resp.to_error() {
            Some(e) => Err(e),
            None => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.request_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Adapts (or warms) `(tenant, task)` from a support set; returns the
    /// context source (`hot`, `warm` or `cold`).
    pub fn adapt(
        &mut self,
        tenant: &str,
        task: &str,
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<String> {
        let req = Request::Adapt {
            tenant: tenant.to_string(),
            task: task.to_string(),
            ways,
            support,
        };
        match self.request_ok(&req)? {
            Response::Adapted { source } => Ok(source),
            other => Err(unexpected("adapt ack", &other)),
        }
    }

    /// Predicts tags for query sentences under an already-adapted task.
    pub fn predict(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
    ) -> Result<Vec<Vec<String>>> {
        self.predict_req(tenant, task, sentences, None)
    }

    /// Predicts with an inline support set (adapt-on-miss in one round
    /// trip).
    pub fn predict_with_support(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
        ways: usize,
        support: Vec<SupportSentence>,
    ) -> Result<Vec<Vec<String>>> {
        self.predict_req(tenant, task, sentences, Some((ways, support)))
    }

    fn predict_req(
        &mut self,
        tenant: &str,
        task: &str,
        sentences: &[Vec<String>],
        inline: Option<(usize, Vec<SupportSentence>)>,
    ) -> Result<Vec<Vec<String>>> {
        let (ways, support) = match inline {
            Some((w, s)) => (Some(w), Some(s)),
            None => (None, None),
        };
        let req = Request::Predict {
            tenant: tenant.to_string(),
            task: task.to_string(),
            sentences: sentences.to_vec(),
            ways,
            support,
        };
        match self.request_ok(&req)? {
            Response::Predictions { tags } => Ok(tags),
            other => Err(unexpected("predictions", &other)),
        }
    }

    /// Counter snapshot (cache + queue), sorted by name.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        match self.request_ok(&Request::Stats)? {
            Response::Stats { counters } => Ok(counters),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Requests an orderly shutdown of the daemon.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request_ok(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown ack", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> Error {
    Error::Serde(format!("expected {wanted}, got {:?}", got))
}
