//! Shared fixtures: a tiny (untrained) FEWNER model plus sampled tasks.
//! Serving semantics — caching, persistence, batching, shedding — do not
//! depend on model quality, so no meta-training is run here.

use fewner_core::{Fewner, MetaConfig};
use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::{EpisodeSampler, Task};
use fewner_models::{BackboneConfig, LabeledSentence, TokenEncoder};
use fewner_text::embed::EmbeddingSpec;

/// A small model + encoder + a few 2-way 1-shot tasks over GENIA types.
pub fn tiny() -> (Fewner, TokenEncoder, Vec<Task>) {
    let data = DatasetProfile::genia().generate(0.02).expect("corpus");
    let split = split_types(&data, (18, 8, 10), 42).expect("split");
    let spec = EmbeddingSpec {
        dim: 16,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);
    let bb = BackboneConfig {
        word_dim: 16,
        char_dim: 6,
        char_filters: 4,
        char_widths: vec![2],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        ..BackboneConfig::default_for(2)
    };
    let meta = MetaConfig {
        inner_steps_test: 2,
        meta_batch: 2,
        ..MetaConfig::default()
    };
    let learner = Fewner::new(bb, &enc, meta).expect("learner");
    let sampler = EpisodeSampler::new(&split.test, 2, 1, 3).expect("sampler");
    let tasks = sampler.eval_set(7, 3).expect("tasks");
    (learner, enc, tasks)
}

/// Encodes a task's support set the way the server does.
#[allow(dead_code)] // each integration test compiles this module separately
pub fn encode_support(enc: &TokenEncoder, task: &Task) -> Vec<LabeledSentence> {
    fewner_models::encode_batch(enc, &task.support, &task.tag_set())
}
