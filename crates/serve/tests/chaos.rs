//! Chaos suite: a real TCP daemon driven under armed fault plans (ISSUE 7
//! tentpole). Every test asserts one of the resilience invariants:
//!
//! * no request outlives its deadline by more than a poll interval,
//! * responses that succeed under faults are bitwise-identical to a
//!   fault-free run (same seeded fixture ⇒ same frozen θ ⇒ same φ),
//! * a retried adapt triggers exactly one inner loop (`serve/adapt` span
//!   count stays 1 — the single-flight cache absorbs the retry),
//! * saturation sheds only cold adapts while warm tenants keep being
//!   served,
//! * shutdown drains cleanly even with faults still armed.
//!
//! `fault::with_plan` serialises armed-plan sections process-wide. Every
//! test body here runs inside `with_plan` — fault-free sections use an
//! **empty** plan — so a plan armed by one test can never leak into
//! another's baseline when the test harness runs them in parallel.

mod common;

use std::net::TcpListener;
use std::time::{Duration, Instant};

use fewner_core::{MetaConfig, ServeOptions};
use fewner_episode::Task;
use fewner_obs::{MemorySink, MonotonicClock, TraceSummary, Tracer};
use fewner_serve::{Client, RetryClient, RetryPolicy, Server, ServerConfig, SupportSentence};
use fewner_util::fault::{self, FaultPlan};
use fewner_util::Error;

fn wire_support(task: &Task) -> Vec<SupportSentence> {
    task.support
        .iter()
        .map(|s| SupportSentence {
            tokens: s.tokens.clone(),
            tags: s.tags.clone(),
        })
        .collect()
}

fn query_sentences(task: &Task) -> Vec<Vec<String>> {
    task.query.iter().map(|s| s.tokens.clone()).collect()
}

/// A parsed, armed fault plan — or the empty plan for fault-free sections
/// that still need the process-wide serialisation `with_plan` provides.
fn plan(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec).expect("valid fault spec")
}

/// Boots `server` on an ephemeral port, runs `drive`, shuts down, joins.
/// The final `expect` on `run` is itself an assertion: the daemon must
/// drain and exit cleanly no matter what the drive closure (or an armed
/// fault plan) did to it. A panicking drive closure still shuts the daemon
/// down first — otherwise the scope would wait forever on the accept loop
/// and a failed assertion would read as a hang.
fn with_server<T: Send>(server: &Server, drive: impl FnOnce(&str) -> T + Send) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::scope(|s| {
        let daemon = s.spawn(|| server.run(listener));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drive(&addr)));
        if !server.shutting_down() {
            Client::connect(&addr).and_then(|mut c| c.shutdown()).ok();
        }
        let drained = daemon.join().expect("daemon thread");
        match out {
            Ok(out) => {
                drained.expect("clean drain");
                out
            }
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

fn traced_server(cfg: ServerConfig) -> (Server, MemorySink) {
    let (learner, enc, _tasks) = common::tiny();
    let sink = MemorySink::new();
    let tracer = Tracer::new(MonotonicClock::new(), sink.clone());
    let server = Server::new(learner, enc, ServeOptions::new().tracer(tracer), cfg).unwrap();
    (server, sink)
}

/// The fault-free reference: adapt + predict on a clean daemon. The tiny
/// fixture is fully seed-driven, so every fresh build reproduces the same
/// frozen θ and the same adapted φ — this is the bitwise baseline the
/// chaos runs are compared against.
fn clean_predictions(task: &Task) -> Vec<Vec<String>> {
    let (server, _sink) = traced_server(ServerConfig::new());
    with_server(&server, |addr| {
        let mut client = Client::connect(addr).unwrap();
        client
            .adapt("acme", "t0", task.n_ways, wire_support(task))
            .unwrap();
        client
            .predict("acme", "t0", &query_sentences(task))
            .unwrap()
    })
}

fn summary_of(sink: &MemorySink, server: &Server) -> TraceSummary {
    server.tracer().flush().unwrap();
    TraceSummary::parse(&sink.text()).unwrap()
}

#[test]
fn conn_drop_is_retried_to_a_bitwise_identical_response_with_one_adapt() {
    let (_, _, tasks) = common::tiny();
    let task = &tasks[0];
    let baseline = fault::with_plan(plan(""), || clean_predictions(task));

    let (server, sink) = traced_server(ServerConfig::new());
    let (preds, stats) = fault::with_plan(plan("serve_conn_drop:1"), || {
        with_server(&server, |addr| {
            let mut client = RetryClient::new(addr, RetryPolicy::new().seed(11));
            // The first response write is dropped mid-connection; the retry
            // reconnects, re-sends the adapt, and lands on the settled
            // single-flight cell instead of a second inner loop.
            let source = client
                .adapt("acme", "t0", task.n_ways, wire_support(task))
                .unwrap();
            assert_eq!(source, "hot", "the retry found the settled cell");
            let preds = client
                .predict("acme", "t0", &query_sentences(task))
                .unwrap();
            (preds, client.retry_stats())
        })
    });

    assert_eq!(preds, baseline, "faulted run must match the clean run");
    assert!(stats.retries >= 1, "the drop must have forced a retry");
    assert!(stats.reconnects >= 1);
    let summary = summary_of(&sink, &server);
    assert_eq!(
        summary.spans.get("serve/adapt").map(|s| s.count()),
        Some(1),
        "exactly one inner loop despite the client retrying the adapt"
    );
    assert_eq!(
        summary.counters.get("serve/fault_conn_drop").copied(),
        Some(1)
    );
    assert!(
        summary.counters.get("serve/request_retries").copied() >= Some(1),
        "the server saw the attempt counter"
    );
}

#[test]
fn frame_corruption_is_retried_to_a_bitwise_identical_response() {
    let (_, _, tasks) = common::tiny();
    let task = &tasks[0];
    let baseline = fault::with_plan(plan(""), || clean_predictions(task));

    let (server, sink) = traced_server(ServerConfig::new());
    let (preds, stats) = fault::with_plan(plan("serve_frame_corrupt:1"), || {
        with_server(&server, |addr| {
            let mut client = RetryClient::new(addr, RetryPolicy::new().seed(23));
            // The first response frame is garbled on the wire; the client's
            // parse fails, it reconnects and retries.
            client
                .adapt("acme", "t0", task.n_ways, wire_support(task))
                .unwrap();
            let preds = client
                .predict("acme", "t0", &query_sentences(task))
                .unwrap();
            (preds, client.retry_stats())
        })
    });

    assert_eq!(preds, baseline, "faulted run must match the clean run");
    assert!(stats.retries >= 1, "corruption must have forced a retry");
    let summary = summary_of(&sink, &server);
    assert_eq!(
        summary.spans.get("serve/adapt").map(|s| s.count()),
        Some(1),
        "exactly one inner loop despite the retry"
    );
    assert_eq!(
        summary.counters.get("serve/fault_frame_corrupt").copied(),
        Some(1)
    );
}

#[test]
fn adapt_stall_cannot_pin_a_request_past_its_deadline() {
    let (_, _, tasks) = common::tiny();
    let task = &tasks[0];
    let (server, sink) = traced_server(ServerConfig::new());

    fault::with_plan(plan("serve_adapt_stall:1"), || {
        with_server(&server, |addr| {
            // 150 ms budget vs a 400 ms injected stall. The stall checks
            // the deadline every 10 ms, so the typed error must come back
            // within budget + one poll interval + wire slack.
            let mut client = RetryClient::new(
                addr,
                RetryPolicy::new().max_retries(0).deadline_ms(150).seed(3),
            );
            let started = Instant::now();
            let err = client
                .adapt("acme", "t0", task.n_ways, wire_support(task))
                .unwrap_err();
            let elapsed = started.elapsed();
            match err {
                Error::DeadlineExceeded { budget_ms, .. } => assert_eq!(budget_ms, 150),
                other => panic!("expected DeadlineExceeded, got {other}"),
            }
            assert!(
                elapsed < Duration::from_millis(600),
                "deadline overshoot: {elapsed:?} for a 150ms budget"
            );
            assert_eq!(client.retry_stats().deadline_misses, 1);

            // The stall fired once; the failed cell was removed, so the
            // daemon recovers to a clean cold adapt.
            let mut retry = Client::connect(addr).unwrap();
            let source = retry
                .adapt("acme", "t0", task.n_ways, wire_support(task))
                .unwrap();
            assert_eq!(
                source, "cold",
                "failed adapt must not leave a poisoned cell"
            );
        })
    });

    let summary = summary_of(&sink, &server);
    assert!(
        summary.counters.get("serve/deadline_missed").copied() >= Some(1),
        "the miss must be counted"
    );
    assert_eq!(
        summary.counters.get("serve/fault_adapt_stall").copied(),
        Some(1)
    );
}

#[test]
fn saturation_sheds_only_cold_adapts_while_warm_tenants_keep_serving() {
    let (learner, enc, tasks) = common::tiny();
    let task = &tasks[0];
    // The e2e wedge: many inner steps make every cold adapt slow enough to
    // deterministically pile the queue up behind one worker — even when
    // this test shares the machine with the rest of the workspace suite.
    let slow = {
        let cfg = MetaConfig {
            inner_steps_test: 2_000,
            meta_batch: 2,
            ..MetaConfig::default()
        };
        let mut bb = learner.backbone.config().clone();
        bb.dropout = 0.0;
        fewner_core::Fewner::new(bb, &enc, cfg).unwrap()
    };
    let sink = MemorySink::new();
    let tracer = Tracer::new(MonotonicClock::new(), sink.clone());
    let server = Server::new(
        slow,
        enc,
        ServeOptions::new().tracer(tracer),
        ServerConfig::new().workers(1).queue_limit(2),
    )
    .unwrap();

    // The wedge is manufactured with the stall fault, not model slowness:
    // the warm-up adapt is stall-stream tick #1 (unarmed), the wedge adapt
    // is tick #2 and freezes the single worker for a deterministic 400 ms —
    // wide enough to pile the queue up and fire the cold burst into it.
    fault::with_plan(plan("serve_adapt_stall:2"), || {
        with_server(&server, |addr| {
            // Warm the tenant up front (slow, but runs once).
            Client::connect(addr)
                .unwrap()
                .adapt("acme", "warm", task.n_ways, wire_support(task))
                .unwrap();

            // Wedge the single worker in a cold adapt for another key, and
            // wait until the worker has actually *entered* the stall (its
            // counter ticks at stall start; cache counters only move once
            // the adapt finishes) — sleeps are not a synchronisation
            // primitive. Mid-run flushes are safe: counters re-emit as
            // snapshots and the summary keeps the last one.
            let wedge = {
                let addr = addr.to_string();
                let sentences = query_sentences(task);
                let ways = task.n_ways;
                let support = wire_support(task);
                std::thread::spawn(move || {
                    Client::connect(&addr)
                        .unwrap()
                        .predict_with_support("acme", "wedge", &sentences, ways, support)
                })
            };
            let stall_deadline = Instant::now() + Duration::from_secs(30);
            while summary_of(&sink, &server)
                .counters
                .get("serve/fault_adapt_stall")
                .copied()
                .unwrap_or(0)
                < 1
            {
                assert!(
                    Instant::now() < stall_deadline,
                    "timed out waiting for the wedge to enter the armed stall"
                );
                std::thread::sleep(Duration::from_millis(5));
            }

            // Three warm predicts enqueue behind the wedge (overflow allowance
            // is 2 × queue_limit = 4) — they are slow but must all be served.
            let warm_handles: Vec<_> = (0..3)
                .map(|_| {
                    let addr = addr.to_string();
                    let sentences = query_sentences(task);
                    std::thread::spawn(move || {
                        Client::connect(&addr)
                            .unwrap()
                            .predict("acme", "warm", &sentences)
                    })
                })
                .collect();
            // The `stats` op is answered inline (never queued), so it can
            // observe the queue without getting stuck behind the wedge.
            let mut stats_client = Client::connect(addr).unwrap();
            let queue_deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let stats = stats_client.stats().unwrap();
                let depth = stats
                    .iter()
                    .find(|(n, _)| n == "queue_depth")
                    .map_or(0, |(_, v)| *v);
                if depth >= 3 {
                    break;
                }
                assert!(
                    Instant::now() < queue_deadline,
                    "timed out waiting for the warm predicts to queue up; last stats: {stats:?}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }

            // The worker is pinned inside the wedge adapt with ≥ 3 jobs
            // queued: every cold adapt-on-miss is now shed at the cold
            // limit — warm work keeps its place in the queue.
            for i in 0..4 {
                let err = Client::connect(addr)
                    .unwrap()
                    .predict_with_support(
                        "acme",
                        &format!("cold-{i}"),
                        &query_sentences(task),
                        task.n_ways,
                        wire_support(task),
                    )
                    .unwrap_err();
                match err {
                    Error::Overloaded { limit, .. } => {
                        assert_eq!(limit, 2, "cold work sheds at the base limit")
                    }
                    other => panic!("expected Overloaded, got {other}"),
                }
            }

            for h in warm_handles {
                let preds = h.join().unwrap().expect("warm predict survives saturation");
                assert_eq!(preds.len(), task.query.len());
            }
            wedge.join().unwrap().expect("the wedge itself completes");

            let stats = Client::connect(addr).unwrap().stats().unwrap();
            let get = |k: &str| stats.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
            assert_eq!(get("shed_cold"), Some(4), "all four cold adapts shed");
            assert_eq!(get("worker_panics"), Some(0));
        })
    });

    let summary = {
        server.tracer().flush().unwrap();
        TraceSummary::parse(&sink.text()).unwrap()
    };
    assert_eq!(summary.counters.get("serve/shed_cold").copied(), Some(4));
    assert!(summary.counters.get("serve/shed").copied() >= Some(4));
}

#[test]
fn shutdown_drains_cleanly_with_faults_still_armed() {
    let (server, _sink) = traced_server(ServerConfig::new());
    fault::with_plan(plan("serve_conn_drop:2"), || {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::scope(|s| {
            let daemon = s.spawn(|| server.run(listener));
            let mut client = Client::connect(&addr).unwrap();
            client.ping().unwrap();
            // The shutdown ack is the second response — the armed fault
            // eats it. The client sees a dead connection, but the daemon
            // must already be draining and exit cleanly regardless.
            let ack = client.shutdown();
            assert!(ack.is_err(), "the ack was dropped by the fault plan");
            daemon
                .join()
                .expect("daemon thread")
                .expect("drain stays clean under armed faults");
        });
    });
}
