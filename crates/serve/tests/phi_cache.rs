//! φ-cache semantics: LRU eviction order, TTL expiry on a manual clock,
//! bitwise-identical persisted reloads, exactly-once concurrent adapts, and
//! graceful degradation when φ persistence fails.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use fewner_core::{AdaptedCtx, CachePolicy, ServeOptions};
use fewner_obs::{Clock, ManualClock, MemorySink, MonotonicClock, TraceSummary, Tracer};
use fewner_serve::{CacheKey, Lookup, PhiCache};
use fewner_util::fault::{self, FaultPlan};
use fewner_util::{Json, ToJson};

fn key(s: &str) -> CacheKey {
    ("tenant".to_string(), s.to_string())
}

/// A synthetic context (cache semantics don't need a model).
fn ctx(seed: f32) -> AdaptedCtx {
    let mut store = fewner_tensor::ParamStore::new();
    let id = store.add(
        "phi",
        fewner_tensor::Array::from_vec(1, 4, vec![seed, seed * 0.5, -seed, seed + 1.0]),
    );
    let json = Json::Obj(vec![
        ("version".into(), Json::from(1u64)),
        ("n_ways".into(), Json::from(2usize)),
        ("phi".into(), store.value(id).to_json()),
    ]);
    AdaptedCtx::from_json(&json).expect("ctx")
}

#[test]
fn lru_evicts_least_recently_used_first() {
    let cache = PhiCache::new(CachePolicy::lru(2), Tracer::disabled()).unwrap();
    cache.get_or_adapt(&key("a"), || Ok(ctx(1.0))).unwrap();
    cache.get_or_adapt(&key("b"), || Ok(ctx(2.0))).unwrap();
    // Touch `a` so `b` becomes the LRU entry.
    let (_, l) = cache
        .get_or_adapt(&key("a"), || panic!("a is resident"))
        .unwrap();
    assert_eq!(l, Lookup::Hit);
    // Inserting `c` must evict `b`, not `a`.
    cache.get_or_adapt(&key("c"), || Ok(ctx(3.0))).unwrap();
    assert!(cache.contains(&key("a")), "recently used survives");
    assert!(!cache.contains(&key("b")), "LRU entry evicted");
    assert!(cache.contains(&key("c")));
    let s = cache.stats();
    assert_eq!(s.evictions, 1);
    // And a lookup of `b` is a miss again.
    let (_, l) = cache.get_or_adapt(&key("b"), || Ok(ctx(2.5))).unwrap();
    assert_eq!(l, Lookup::Cold);
}

#[test]
fn ttl_expires_entries_on_the_injected_clock() {
    let clock = Arc::new(ManualClock::starting_at(1_000));
    let cache = PhiCache::with_clock(
        CachePolicy::lru(8).ttl_ns(100),
        Tracer::disabled(),
        clock.clone() as Arc<dyn Clock>,
    )
    .unwrap();
    cache.get_or_adapt(&key("x"), || Ok(ctx(1.0))).unwrap();

    // Within the TTL: still a hit.
    clock.advance(99);
    let (_, l) = cache
        .get_or_adapt(&key("x"), || panic!("not expired yet"))
        .unwrap();
    assert_eq!(l, Lookup::Hit);

    // Past the TTL: the entry is dropped and re-adapted.
    clock.advance(2);
    let (_, l) = cache.get_or_adapt(&key("x"), || Ok(ctx(2.0))).unwrap();
    assert_eq!(l, Lookup::Cold);
    let s = cache.stats();
    assert_eq!(s.expirations, 1);
    assert_eq!(s.misses, 2, "initial adapt + post-expiry adapt");
    assert_eq!(s.hits, 1);
}

#[test]
fn hits_do_not_extend_the_ttl() {
    // TTL measures time since (re-)insertion, not since last use: a key
    // read every nanosecond still expires on schedule.
    let clock = Arc::new(ManualClock::starting_at(0));
    let cache = PhiCache::with_clock(
        CachePolicy::lru(8).ttl_ns(100),
        Tracer::disabled(),
        clock.clone() as Arc<dyn Clock>,
    )
    .unwrap();
    cache.get_or_adapt(&key("x"), || Ok(ctx(1.0))).unwrap();
    for _ in 0..4 {
        clock.advance(25);
        cache.get_or_adapt(&key("x"), || Ok(ctx(9.9))).unwrap();
    }
    // 100ns have elapsed since insertion; the fifth lookup re-adapted.
    assert_eq!(cache.stats().expirations, 1);
}

#[test]
fn persisted_context_reloads_bitwise_identical_to_the_fresh_adapt() {
    let (learner, enc, tasks) = common::tiny();
    let task = &tasks[0];
    let support = common::encode_support(&enc, task);
    let opts = ServeOptions::new();
    let dir = std::env::temp_dir().join(format!("fewner-phi-reload-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let policy = CachePolicy::lru(4).persist_dir(&dir);
    let k = key("genia-task");

    // First boot: cold adapt, persisted on the way.
    let cache1 = PhiCache::new(policy.clone(), Tracer::disabled()).unwrap();
    let (fresh, l) = cache1
        .get_or_adapt(&k, || learner.adapt_support(&support, task.n_ways, &opts))
        .unwrap();
    assert_eq!(l, Lookup::Cold);
    assert_eq!(cache1.stats().persists, 1);
    assert!(cache1.has_persisted(&k));

    // "Restart": a brand-new cache over the same directory. The adapt
    // closure must NOT run — the φ comes back from disk, bitwise equal.
    let cache2 = PhiCache::new(policy, Tracer::disabled()).unwrap();
    let (reloaded, l) = cache2
        .get_or_adapt(&k, || panic!("warm key must not re-adapt"))
        .unwrap();
    assert_eq!(l, Lookup::Warm);
    assert_eq!(
        fresh.phi_values(),
        reloaded.phi_values(),
        "persisted φ must round-trip bitwise"
    );
    assert_eq!(fresh.n_ways(), reloaded.n_ways());
    assert_eq!(cache2.stats().reloads, 1);

    // And the reloaded context decodes exactly like the fresh one.
    let query: Vec<fewner_models::EncodedSentence> =
        task.query.iter().map(|s| enc.encode(&s.tokens)).collect();
    let a = learner.predict(&fresh, &query, &opts).unwrap();
    let b = learner.predict(&reloaded, &query, &opts).unwrap();
    assert_eq!(a, b, "same φ bits ⇒ same predictions");

    // Invalidation removes the durable copy too.
    cache2.invalidate(&k);
    assert!(!cache2.has_persisted(&k));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_lookups_of_one_key_adapt_exactly_once() {
    let cache = Arc::new(PhiCache::new(CachePolicy::lru(4), Tracer::disabled()).unwrap());
    let adapts = Arc::new(AtomicUsize::new(0));
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let k = key("contended");

    let contexts: Vec<Arc<AdaptedCtx>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let adapts = Arc::clone(&adapts);
                let barrier = Arc::clone(&barrier);
                let k = k.clone();
                s.spawn(move || {
                    barrier.wait();
                    let (ctx, _) = cache
                        .get_or_adapt(&k, || {
                            adapts.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window: everyone else must
                            // block on the in-flight cell, not re-adapt.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(ctx(5.0))
                        })
                        .unwrap();
                    ctx
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        adapts.load(Ordering::SeqCst),
        1,
        "single-flight: the inner loop runs once for n concurrent lookups"
    );
    for c in &contexts[1..] {
        assert!(
            Arc::ptr_eq(&contexts[0], c),
            "every waiter shares the same context"
        );
    }
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, n as u64);
    assert_eq!(s.misses, 1, "one miss (the adapter); the rest joined it");
}

/// Shared body for the persist-failure tests: under an armed durable-write
/// fault the cache must (a) keep serving the context from memory, (b) flip
/// into memory-only degraded mode with exactly one `serve/persist_degraded`
/// event, and (c) leave **no** file — torn or otherwise — on disk.
fn degraded_persist_under(plan: &str, tag: &str) {
    let dir = std::env::temp_dir().join(format!("fewner-phi-degrade-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let sink = MemorySink::new();
    let tracer = Tracer::new(MonotonicClock::new(), sink.clone());
    fault::with_plan(FaultPlan::parse(plan).unwrap(), || {
        let cache = PhiCache::new(CachePolicy::lru(4).persist_dir(&dir), tracer.clone()).unwrap();
        let (_c, l) = cache.get_or_adapt(&key("k"), || Ok(ctx(1.0))).unwrap();
        assert_eq!(l, Lookup::Cold, "the adapt itself must succeed");

        // The context stays served from memory even though the write failed.
        let (_c, l) = cache
            .get_or_adapt(&key("k"), || panic!("resident context must not re-adapt"))
            .unwrap();
        assert_eq!(l, Lookup::Hit);

        assert!(cache.is_persist_degraded(), "first failure flips the mode");
        assert_eq!(cache.stats().persists, 0, "nothing counted as persisted");
        assert!(!cache.has_persisted(&key("k")), "no durable copy claimed");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|d| d.filter_map(|e| e.ok()).map(|e| e.file_name()).collect())
            .unwrap_or_default();
        assert!(
            leftovers.is_empty(),
            "torn file left on disk: {leftovers:?}"
        );

        // Degraded mode is sticky: later adapts skip the disk entirely
        // (the armed fault fires once, so a second attempt would succeed —
        // proving the skip is deliberate, not another failure).
        cache.get_or_adapt(&key("k2"), || Ok(ctx(2.0))).unwrap();
        assert!(!cache.has_persisted(&key("k2")));
        assert_eq!(cache.stats().persists, 0);
    });
    tracer.flush().unwrap();
    let summary = TraceSummary::parse(&sink.text()).unwrap();
    assert_eq!(
        summary.events.get("serve/persist_degraded").copied(),
        Some(1),
        "exactly one degradation event, however many persists were skipped"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persist_write_failure_degrades_to_memory_only() {
    degraded_persist_under("ckpt_write_fail:1", "fail");
}

#[test]
fn persist_truncation_leaves_no_torn_file_and_degrades() {
    degraded_persist_under("ckpt_truncate:1", "truncate");
}
