//! Negative-path tests for the bounded wire framing (ISSUE 7, satellite 1):
//! oversized frames, garbage bytes, non-JSON lines and truncated frames
//! must produce typed errors and bounded memory — never a pinned
//! connection thread, never a wedged daemon.

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use fewner_core::ServeOptions;
use fewner_serve::{Client, Server, ServerConfig};
use fewner_util::Json;

/// Boots `server` on an ephemeral port, runs `drive`, shuts down, joins.
fn with_server<T: Send>(server: &Server, drive: impl FnOnce(&str) -> T + Send) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::scope(|s| {
        let daemon = s.spawn(|| server.run(listener));
        let out = drive(&addr);
        if !server.shutting_down() {
            Client::connect(&addr)
                .and_then(|mut c| c.shutdown())
                .expect("clean shutdown");
        }
        daemon.join().expect("daemon thread").expect("run");
        out
    })
}

fn tiny_server(cfg: ServerConfig) -> Server {
    let (learner, enc, _tasks) = common::tiny();
    Server::new(learner, enc, ServeOptions::new(), cfg).unwrap()
}

/// Writes `bytes` raw and reads back one response line.
fn raw_round_trip(addr: &str, bytes: &[u8]) -> (TcpStream, BufReader<TcpStream>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response");
    (stream, reader, line)
}

#[test]
fn oversized_frame_gets_a_typed_error_and_the_connection_closes() {
    // 1 KiB cap (the enforced floor); send a 5 KiB line.
    let server = tiny_server(ServerConfig::new().max_frame_bytes(1 << 10));
    with_server(&server, |addr| {
        let mut huge = vec![b'x'; 5 << 10];
        huge.push(b'\n');
        let (_stream, mut reader, line) = raw_round_trip(addr, &huge);
        let resp = Json::parse(line.trim()).expect("error response is valid JSON");
        assert!(!resp.field("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            resp.field("error").unwrap().as_str().unwrap(),
            "frame_too_large"
        );
        // After an oversized frame the server closes the connection: the
        // stream is not trustworthy mid-frame.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);

        // The daemon itself is unharmed: a fresh connection works.
        Client::connect(addr).unwrap().ping().unwrap();
    });
    assert!(
        server.cache().stats().misses == 0,
        "no adapt work was triggered by garbage"
    );
}

#[test]
fn non_utf8_bytes_get_bad_request_and_the_connection_survives() {
    let server = tiny_server(ServerConfig::new());
    with_server(&server, |addr| {
        let (mut stream, mut reader, line) = raw_round_trip(addr, b"\xff\xfe\x80 garbage\n");
        let resp = Json::parse(line.trim()).expect("valid JSON error");
        assert_eq!(
            resp.field("error").unwrap().as_str().unwrap(),
            "bad_request"
        );

        // Same connection, valid request: still served.
        stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut pong = String::new();
        reader.read_line(&mut pong).unwrap();
        let resp = Json::parse(pong.trim()).unwrap();
        assert!(resp.field("ok").unwrap().as_bool().unwrap());
    });
}

#[test]
fn non_json_line_gets_bad_request() {
    let server = tiny_server(ServerConfig::new());
    with_server(&server, |addr| {
        let (_stream, _reader, line) = raw_round_trip(addr, b"this is not json\n");
        let resp = Json::parse(line.trim()).expect("valid JSON error");
        assert!(!resp.field("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            resp.field("error").unwrap().as_str().unwrap(),
            "bad_request"
        );
    });
}

#[test]
fn truncated_frame_closes_cleanly_and_the_server_keeps_serving() {
    let server = tiny_server(ServerConfig::new());
    with_server(&server, |addr| {
        // A client that dies mid-line: partial frame, no newline, then EOF.
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(b"{\"op\":\"pi").expect("partial send");
            stream.flush().ok();
            // Dropping the stream closes it mid-frame.
        }
        // Other clients are unaffected, before and after the dead peer's
        // connection thread notices the EOF.
        Client::connect(addr).unwrap().ping().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(250));
        Client::connect(addr).unwrap().ping().unwrap();
    });
}

#[test]
fn many_oversized_frames_do_not_exhaust_the_daemon() {
    // A small herd of abusive clients, each sending an oversized frame:
    // every one gets the typed error, and the daemon stays healthy. This is
    // the "slow or malicious client cannot pin a connection thread" claim
    // exercised at the memory level — 16 clients × 1 MiB declared would be
    // unbounded growth without the cap.
    let server = Arc::new(tiny_server(ServerConfig::new().max_frame_bytes(1 << 10)));
    with_server(&server, |addr| {
        std::thread::scope(|s| {
            for _ in 0..16 {
                let addr = addr.to_string();
                s.spawn(move || {
                    let mut huge = vec![b'a'; 64 << 10];
                    huge.push(b'\n');
                    let (_stream, _reader, line) = raw_round_trip(&addr, &huge);
                    let resp = Json::parse(line.trim()).expect("valid JSON error");
                    assert_eq!(
                        resp.field("error").unwrap().as_str().unwrap(),
                        "frame_too_large"
                    );
                });
            }
        });
        Client::connect(addr).unwrap().ping().unwrap();
    });
}
