//! End-to-end daemon tests over real TCP: protocol round trips, restart
//! warm-start from persisted φ, micro-batching, and overload shedding.

mod common;

use std::net::TcpListener;
use std::sync::Arc;

use fewner_core::{CachePolicy, MetaConfig, ServeOptions};
use fewner_episode::Task;
use fewner_obs::{MemorySink, MonotonicClock, TraceSummary, Tracer};
use fewner_serve::{Client, Request, Response, Server, ServerConfig, SupportSentence};
use fewner_util::Error;

fn wire_support(task: &Task) -> Vec<SupportSentence> {
    task.support
        .iter()
        .map(|s| SupportSentence {
            tokens: s.tokens.clone(),
            tags: s.tags.clone(),
        })
        .collect()
}

fn query_sentences(task: &Task) -> Vec<Vec<String>> {
    task.query.iter().map(|s| s.tokens.clone()).collect()
}

/// Boots `server` on an ephemeral port, runs `drive` against it, sends
/// shutdown, and joins everything before returning.
fn with_server<T: Send>(server: &Server, drive: impl FnOnce(&str) -> T + Send) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::scope(|s| {
        let daemon = s.spawn(|| server.run(listener));
        let out = drive(&addr);
        if !server.shutting_down() {
            Client::connect(&addr)
                .and_then(|mut c| c.shutdown())
                .expect("clean shutdown");
        }
        daemon.join().expect("daemon thread").expect("run");
        out
    })
}

#[test]
fn protocol_round_trip_over_tcp() {
    let (learner, enc, tasks) = common::tiny();
    let task = &tasks[0];
    let server = Server::new(
        learner,
        enc,
        ServeOptions::new(),
        ServerConfig::new().workers(2),
    )
    .unwrap();

    with_server(&server, |addr| {
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();

        // Unknown task without support: typed error, not a hang.
        let err = client.predict("acme", "nope", &[vec!["x".to_string()]]);
        assert!(matches!(err, Err(Error::InvalidConfig(msg)) if msg.contains("unknown_task")));

        // Adapt, then predict over the same connection.
        let source = client
            .adapt("acme", "t0", task.n_ways, wire_support(task))
            .unwrap();
        assert_eq!(source, "cold");
        let preds = client
            .predict("acme", "t0", &query_sentences(task))
            .unwrap();
        assert_eq!(preds.len(), task.query.len());
        for (pred, sent) in preds.iter().zip(&task.query) {
            assert_eq!(pred.len(), sent.tokens.len(), "one tag per token");
            for tag in pred {
                assert!(fewner_text::Tag::parse(tag).is_ok(), "wire tags parse");
            }
        }

        // A second adapt of the same key is a cache hit.
        let source = client
            .adapt("acme", "t0", task.n_ways, wire_support(task))
            .unwrap();
        assert_eq!(source, "hot");

        // Another tenant with the same task id gets its own context.
        let source = client
            .adapt("zeta", "t0", task.n_ways, wire_support(task))
            .unwrap();
        assert_eq!(source, "cold", "tenants must not share φ");

        let stats = client.stats().unwrap();
        let get = |k: &str| stats.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("cache_hits"), Some(2), "adapt hit + predict hit");
        assert_eq!(get("cache_misses"), Some(2), "two cold adapts");
        assert_eq!(get("resident_contexts"), Some(2));

        // Malformed lines get a typed bad_request, not a dropped connection.
        let resp = client
            .request(&Request::Predict {
                tenant: "acme".into(),
                task: "t0".into(),
                sentences: vec![],
                ways: None,
                support: None,
                deadline_ms: None,
            })
            .unwrap();
        assert!(matches!(resp, Response::Error { ref kind, .. } if kind == "bad_request"));
    });
}

#[test]
fn extend_grows_a_served_context_incrementally() {
    let (learner, enc, tasks) = common::tiny();
    let (task, task2) = (&tasks[0], &tasks[1]);
    let sink = MemorySink::new();
    let tracer = Tracer::new(MonotonicClock::new(), sink.clone());
    let server = Server::new(
        learner,
        enc,
        ServeOptions::new().tracer(tracer),
        ServerConfig::new(),
    )
    .unwrap();

    with_server(&server, |addr| {
        let mut client = Client::connect(addr).unwrap();

        // Unknown key: nothing to extend, so the new support alone feeds a
        // full adapt — reported as `cold` at revision 1.
        let (rev, source) = client
            .extend("acme", "t0", task.n_ways, wire_support(task))
            .unwrap();
        assert_eq!((rev, source.as_str()), (1, "cold"));

        // Known key: warm-started incremental steps over the merged
        // support; each extend bumps the revision and supersedes the
        // cached context.
        let (rev, source) = client
            .extend("acme", "t0", task2.n_ways, wire_support(task2))
            .unwrap();
        assert_eq!((rev, source.as_str()), (2, "extended"));
        let (rev, source) = client
            .extend("acme", "t0", task.n_ways, wire_support(task))
            .unwrap();
        assert_eq!((rev, source.as_str()), (3, "extended"));

        // A way count that contradicts the resident context is a typed
        // bad_request, not a silent re-adapt.
        let err = client.extend(
            "acme",
            "t0",
            1,
            vec![SupportSentence {
                tokens: vec!["x".to_string()],
                tags: vec![fewner_text::Tag::O],
            }],
        );
        assert!(
            matches!(err, Err(Error::InvalidConfig(ref msg)) if msg.contains("bad_request")),
            "expected bad_request on a ways mismatch, got {err:?}"
        );

        // Prediction flows through the latest extended revision.
        let preds = client
            .predict("acme", "t0", &query_sentences(task))
            .unwrap();
        assert_eq!(preds.len(), task.query.len());
    });

    let summary = TraceSummary::parse(&sink.text()).unwrap();
    assert!(
        summary.spans.contains_key("serve/adapt_extend"),
        "incremental adaptation is timed separately from cold adapts"
    );
    assert_eq!(
        summary.counters.get("serve/extends").copied().unwrap_or(0),
        2,
        "two warm extends ran ({:?})",
        summary.counters
    );
}

#[test]
fn restart_reuses_persisted_phi_with_identical_predictions() {
    let (learner, enc, tasks) = common::tiny();
    let task = &tasks[0];
    let dir = std::env::temp_dir().join(format!("fewner-e2e-phi-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let policy = CachePolicy::lru(8).persist_dir(&dir);

    // First boot: adapt-on-miss predict persists the φ.
    let server1 = Server::new(
        learner,
        enc,
        ServeOptions::new().cache(policy.clone()),
        ServerConfig::new(),
    )
    .unwrap();
    let first = with_server(&server1, |addr| {
        let mut client = Client::connect(addr).unwrap();
        client
            .predict_with_support(
                "acme",
                "t0",
                &query_sentences(task),
                task.n_ways,
                wire_support(task),
            )
            .unwrap()
    });
    assert_eq!(server1.cache().stats().persists, 1);

    // Second boot over the same directory: NO support is sent, yet the
    // predict succeeds (warm reload) and the predictions are identical —
    // the persisted φ round-tripped bitwise. Fewner init is seed-driven,
    // so rebuilding the fixture reproduces the exact same frozen θ.
    let (learner2, enc2, _) = common::tiny();
    let server2 = Server::new(
        learner2,
        enc2,
        ServeOptions::new().cache(policy),
        ServerConfig::new(),
    )
    .unwrap();
    let second = with_server(&server2, |addr| {
        let mut client = Client::connect(addr).unwrap();
        client
            .predict("acme", "t0", &query_sentences(task))
            .unwrap()
    });
    assert_eq!(first, second, "restart must not change predictions");
    let stats = server2.cache().stats();
    assert_eq!(stats.reloads, 1, "the context came from disk");
    assert_eq!(stats.misses, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_with_typed_error_and_batching_merges_queued_work() {
    let (enc, tasks, learner) = {
        let (l, e, t) = common::tiny();
        (e, t, l)
    };
    let task = &tasks[0];
    // A deliberately slow adapt (many inner steps) wedges the single worker
    // long enough for queued predicts to pile up deterministically.
    let slow = {
        let cfg = MetaConfig {
            inner_steps_test: 300,
            meta_batch: 2,
            ..MetaConfig::default()
        };
        let mut bb = learner.backbone.config().clone();
        bb.dropout = 0.0;
        fewner_core::Fewner::new(bb, &enc, cfg).unwrap()
    };
    let sink = MemorySink::new();
    let tracer = Tracer::new(MonotonicClock::new(), sink.clone());
    let server = Arc::new(
        Server::new(
            slow,
            enc,
            ServeOptions::new().tracer(tracer).batch(64),
            ServerConfig::new().workers(1).queue_limit(2),
        )
        .unwrap(),
    );

    let (ok, shed) = with_server(&server, |addr| {
        // Request 1: adapt-on-miss — the worker starts the slow inner loop.
        let addr = addr.to_string();
        let opener = {
            let addr = addr.clone();
            let sentences = query_sentences(task);
            let ways = task.n_ways;
            let support = wire_support(task);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.predict_with_support("acme", "slow", &sentences, ways, support)
            })
        };
        // Give the worker time to dequeue request 1 and enter the adapt.
        std::thread::sleep(std::time::Duration::from_millis(150));

        // A burst of follow-up predicts: queue_limit is 2, so at most two
        // queue behind the wedged worker and the rest shed immediately.
        let burst = 6;
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..burst)
                .map(|_| {
                    let addr = addr.clone();
                    let sentences = query_sentences(task);
                    s.spawn(move || {
                        let mut c = Client::connect(&addr).unwrap();
                        c.predict("acme", "slow", &sentences)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        opener.join().unwrap().unwrap();

        let mut ok = 0u64;
        let mut shed = 0u64;
        for r in results {
            match r {
                Ok(preds) => {
                    assert_eq!(preds.len(), task.query.len());
                    ok += 1;
                }
                Err(Error::Overloaded { queue_depth, limit }) => {
                    assert_eq!(limit, 2, "limit travels over the wire");
                    assert!(queue_depth >= limit);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        (ok, shed)
    });

    assert!(shed >= 1, "bounded queue must shed under overload");
    assert_eq!(ok + shed, 6);
    // The queued (non-shed) predicts were drained as one micro-batch when
    // the worker finally freed up: the trace shows merged requests.
    let summary = TraceSummary::parse(&sink.text()).unwrap();
    if ok >= 2 {
        assert!(
            summary
                .counters
                .get("serve/batch_merged")
                .copied()
                .unwrap_or(0)
                >= 1,
            "same-key queued jobs must merge into one decode"
        );
    }
    assert!(summary.counters.get("serve/shed").copied().unwrap_or(0) >= 1);
    assert!(summary.spans.contains_key("serve/adapt"), "cold adapt span");
}
