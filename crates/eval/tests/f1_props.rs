//! Property tests for entity-level F1 (ISSUE 4, satellite 1).
//!
//! Two attack surfaces:
//!
//! 1. **Malformed BIO input** — model decoders are CRF-constrained, but the
//!    scorer must also survive raw sequences: `I-` with no opening `B-`, a
//!    slot change mid-span, empty predictions. The repair convention under
//!    test is conll-style: a dangling `I-s` *opens* a span, a slot change
//!    closes the running span and opens a new one.
//! 2. **Differential micro-F1** — on small random label grids, the
//!    accumulator's micro-F1 must equal a brute-force oracle that extracts
//!    spans with an independent (local, per-position) rule and scores them
//!    with the paper's `2c / (g + r)` directly.

use fewner_eval::F1Counts;
use fewner_text::span::SlotSpan;
use fewner_text::{tags_to_spans, Tag};
use fewner_util::Rng;
use proptest::prelude::*;

const SLOTS: usize = 3;

/// A random tag sequence with **no validity constraints**: any of O, B-s,
/// I-s at every position, so malformed shapes (leading `I`, slot flips
/// inside a run) occur constantly.
fn random_tags(len: usize, rng: &mut Rng) -> Vec<Tag> {
    (0..len)
        .map(|_| match rng.below(1 + 2 * SLOTS) {
            0 => Tag::O,
            k if k <= SLOTS => Tag::B(k - 1),
            k => Tag::I(k - SLOTS - 1),
        })
        .collect()
}

/// Independent span oracle. Position `i` **starts** a span of slot `s`
/// when the tag is `B(s)`, or when it is `I(s)` that nothing extends
/// (sequence start, after `O`, or after a different slot). The span then
/// runs through every following `I(s)`. This is a local, per-position
/// restatement of the repair convention, deliberately unlike the
/// open-span state machine in `tags_to_spans`.
fn oracle_spans(tags: &[Tag]) -> Vec<SlotSpan> {
    let slot_of = |t: Tag| match t {
        Tag::O => None,
        Tag::B(s) | Tag::I(s) => Some(s),
    };
    let mut spans = Vec::new();
    for (i, &tag) in tags.iter().enumerate() {
        let starts = match tag {
            Tag::O => None,
            Tag::B(s) => Some(s),
            Tag::I(s) => (i == 0 || slot_of(tags[i - 1]) != Some(s)).then_some(s),
        };
        let Some(s) = starts else { continue };
        let mut end = i + 1;
        while end < tags.len() && tags[end] == Tag::I(s) {
            end += 1;
        }
        spans.push(SlotSpan {
            start: i,
            end,
            slot: s,
        });
    }
    spans
}

/// Brute-force micro-F1 over a grid of sentences: count spans and exact
/// matches per sentence, then apply `2c / (g + r)` once at the end.
fn oracle_micro_f1(grid: &[(Vec<Tag>, Vec<Tag>)]) -> f64 {
    let (mut g, mut r, mut c) = (0usize, 0usize, 0usize);
    for (gold, pred) in grid {
        let gs = oracle_spans(gold);
        let ps = oracle_spans(pred);
        g += gs.len();
        r += ps.len();
        c += ps.iter().filter(|p| gs.contains(p)).count();
    }
    if g + r == 0 {
        1.0
    } else {
        2.0 * c as f64 / (g + r) as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary (including malformed) tag sequences never panic the
    /// scorer, and its scores stay inside [0, 1] with the precision /
    /// recall / F1 ordering intact.
    #[test]
    fn malformed_sequences_never_panic_and_scores_stay_bounded(
        seed in 0u64..5000,
        len in 0usize..12,
    ) {
        let mut rng = Rng::new(seed);
        let gold = random_tags(len, &mut rng);
        let pred = random_tags(len, &mut rng);
        let mut counts = F1Counts::default();
        counts.add_tags(&gold, &pred);
        let (p, r, f1) = (counts.precision(), counts.recall(), counts.f1());
        prop_assert!((0.0..=1.0).contains(&p), "precision {p}");
        prop_assert!((0.0..=1.0).contains(&r), "recall {r}");
        prop_assert!((0.0..=1.0).contains(&f1), "f1 {f1}");
        prop_assert!(counts.correct <= counts.gold.min(counts.predicted));
        // F1 is the harmonic mean: it cannot exceed either component.
        prop_assert!(f1 <= p + 1e-12 || f1 <= r + 1e-12);
    }

    /// Scoring a sequence against itself is always a perfect 1.0, no
    /// matter how malformed the BIO shape is — both sides repair it the
    /// same way.
    #[test]
    fn self_comparison_is_always_perfect(seed in 0u64..5000, len in 0usize..12) {
        let mut rng = Rng::new(seed);
        let tags = random_tags(len, &mut rng);
        let mut counts = F1Counts::default();
        counts.add_tags(&tags, &tags);
        prop_assert_eq!(counts.gold, counts.predicted);
        prop_assert_eq!(counts.correct, counts.gold);
        prop_assert!((counts.f1() - 1.0).abs() < 1e-12);
    }

    /// F1 is symmetric in (gold, pred): `2c / (g + r)` does not care which
    /// side predicted (exact-match `c` is itself symmetric).
    #[test]
    fn f1_is_symmetric(seed in 0u64..5000, len in 0usize..12) {
        let mut rng = Rng::new(seed);
        let a = random_tags(len, &mut rng);
        let b = random_tags(len, &mut rng);
        let mut ab = F1Counts::default();
        ab.add_tags(&a, &b);
        let mut ba = F1Counts::default();
        ba.add_tags(&b, &a);
        prop_assert_eq!(ab.correct, ba.correct);
        prop_assert!((ab.f1() - ba.f1()).abs() < 1e-12);
    }

    /// Differential check: over a random grid of sentences, the
    /// accumulator's micro-F1 equals the brute-force oracle's, and the
    /// span extraction itself agrees sentence by sentence.
    #[test]
    fn micro_f1_matches_brute_force_oracle(
        seed in 0u64..5000,
        sentences in 1usize..6,
        len in 0usize..10,
    ) {
        let mut rng = Rng::new(seed);
        let grid: Vec<(Vec<Tag>, Vec<Tag>)> = (0..sentences)
            .map(|_| (random_tags(len, &mut rng), random_tags(len, &mut rng)))
            .collect();
        let mut counts = F1Counts::default();
        for (gold, pred) in &grid {
            prop_assert_eq!(tags_to_spans(gold), oracle_spans(gold));
            counts.add_tags(gold, pred);
        }
        let expected = oracle_micro_f1(&grid);
        prop_assert!(
            (counts.f1() - expected).abs() < 1e-12,
            "micro-F1 {} != oracle {}",
            counts.f1(),
            expected
        );
    }
}

/// The named malformed shapes from the issue, pinned as plain unit cases
/// so a repair-convention change fails with a readable diff.
#[test]
fn dangling_i_and_mid_span_slot_change_repair_deterministically() {
    // I- with no opening B-: opens a span at position 0.
    assert_eq!(
        tags_to_spans(&[Tag::I(1), Tag::I(1), Tag::O]),
        vec![SlotSpan {
            start: 0,
            end: 2,
            slot: 1
        }]
    );
    // Slot change mid-span: closes [0,1) slot 0, opens [1,3) slot 2.
    assert_eq!(
        tags_to_spans(&[Tag::B(0), Tag::I(2), Tag::I(2)]),
        vec![
            SlotSpan {
                start: 0,
                end: 1,
                slot: 0
            },
            SlotSpan {
                start: 1,
                end: 3,
                slot: 2
            },
        ]
    );
    // Empty prediction against real gold: defined scores, zero F1.
    let mut counts = F1Counts::default();
    counts.add_tags(&[Tag::B(0), Tag::I(0)], &[Tag::O, Tag::O]);
    assert_eq!(counts.predicted, 0);
    assert_eq!(counts.precision(), 0.0);
    assert_eq!(counts.f1(), 0.0);
}
