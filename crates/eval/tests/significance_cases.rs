//! Hand-computed paired-comparison cases (ISSUE 4, satellite 2).
//!
//! Each test pins `paired_compare` against values derived on paper, so a
//! regression in the t-statistic, the normal-approximation p-value, or the
//! bootstrap loop shows up as a concrete number mismatch rather than a
//! loosely-bounded "still significant" assertion.

use fewner_eval::paired_compare;

/// Identical score vectors: every difference is exactly 0, so se = 0 and
/// mean = 0 → t = 0 → p = 2·(1 − Φ(0)) ≈ 1 (the Abramowitz–Stegun erf
/// approximation puts Φ(0) within 1e-8 of 1/2), and no bootstrap resample
/// can total > 0.
#[test]
fn identical_methods_give_p_of_one() {
    let a: Vec<f64> = (0..30).map(|i| 0.4 + 0.01 * (i % 7) as f64).collect();
    let c = paired_compare(&a, &a, 11).unwrap();
    assert_eq!(c.mean_diff, 0.0);
    assert_eq!(c.t_statistic, 0.0);
    assert!((c.p_value - 1.0).abs() < 1e-6, "p = {}", c.p_value);
    assert_eq!(c.bootstrap_win_rate, 0.0);
    assert_eq!(c.n, 30);
}

/// A constant positive difference has zero variance: the t statistic
/// diverges to +∞ and the p-value collapses to exactly 0, while every
/// bootstrap resample sums to a positive total (win rate exactly 1).
/// (0.75 − 0.25 = 0.5 is exactly representable, so the per-episode
/// differences — and hence the variance's zero — are exact.)
#[test]
fn disjoint_constant_wins_drive_p_to_zero() {
    let a = vec![0.75; 40];
    let b = vec![0.25; 40];
    let c = paired_compare(&a, &b, 12).unwrap();
    assert_eq!(c.mean_diff, 0.5);
    assert!(c.t_statistic.is_infinite() && c.t_statistic > 0.0);
    assert_eq!(c.p_value, 0.0);
    assert_eq!(c.bootstrap_win_rate, 1.0);
    assert!(c.significant_at(0.05));
}

/// Same degenerate case mirrored: B beats A everywhere, t = −∞, p = 0 —
/// but `significant_at` must still reject because the advantage is B's.
#[test]
fn disjoint_losses_are_never_significant_for_a() {
    let a = vec![0.25; 40];
    let b = vec![0.75; 40];
    let c = paired_compare(&a, &b, 13).unwrap();
    assert!(c.t_statistic.is_infinite() && c.t_statistic < 0.0);
    assert_eq!(c.p_value, 0.0);
    assert_eq!(c.bootstrap_win_rate, 0.0);
    assert!(!c.significant_at(0.05));
}

/// Fully hand-computed two-episode case. Differences are [0.1, 0.3]:
///   mean = 0.2
///   var  = ((0.1−0.2)² + (0.3−0.2)²) / (2−1) = 0.02
///   se   = sqrt(0.02 / 2) = 0.1
///   t    = 0.2 / 0.1 = 2.0
///   p    = 2·(1 − Φ(2)) ≈ 0.0455  (normal approximation)
/// Both differences are positive, so every bootstrap resample wins.
#[test]
fn hand_computed_t_statistic_and_p_value() {
    let a = [0.6, 0.9];
    let b = [0.5, 0.6];
    let c = paired_compare(&a, &b, 14).unwrap();
    assert!((c.mean_diff - 0.2).abs() < 1e-12);
    assert!((c.t_statistic - 2.0).abs() < 1e-12, "t = {}", c.t_statistic);
    assert!(
        (c.p_value - 0.0455).abs() < 5e-4,
        "2(1 − Φ(2)) ≈ 0.0455, got {}",
        c.p_value
    );
    assert_eq!(c.bootstrap_win_rate, 1.0);
}

/// The bootstrap is a pure function of (scores, seed): the same seed must
/// reproduce the identical win rate, and a different seed may move it only
/// within resampling noise.
#[test]
fn bootstrap_is_seed_deterministic() {
    let a: Vec<f64> = (0..25).map(|i| 0.5 + 0.02 * ((i * 7) % 5) as f64).collect();
    let b: Vec<f64> = (0..25)
        .map(|i| 0.48 + 0.02 * ((i * 3) % 5) as f64)
        .collect();
    let first = paired_compare(&a, &b, 99).unwrap();
    let again = paired_compare(&a, &b, 99).unwrap();
    assert_eq!(first.bootstrap_win_rate, again.bootstrap_win_rate);
    assert_eq!(first.p_value, again.p_value);
    let other = paired_compare(&a, &b, 100).unwrap();
    assert!(
        (first.bootstrap_win_rate - other.bootstrap_win_rate).abs() < 0.1,
        "different seeds agree to within resampling noise"
    );
}
