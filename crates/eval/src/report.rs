//! Table rendering and JSON reports.
//!
//! The bench binaries regenerate the paper's tables through these types:
//! a [`Table`] holds one row per method and one column per dataset×shot
//! cell, renders in the paper's `mean ± ci%` style, and serialises to JSON
//! under `reports/` so EXPERIMENTS.md numbers stay regenerable.

use fewner_text::Tag;
use fewner_util::{FromJson, Json, MeanCi, Result, ToJson};

/// One table cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Mean episode F1.
    pub mean: f64,
    /// 95 % CI half-width.
    pub ci95: f64,
    /// Episode count.
    pub n: usize,
}

impl From<MeanCi> for Cell {
    fn from(m: MeanCi) -> Cell {
        Cell {
            mean: m.mean,
            ci95: m.ci95,
            n: m.n,
        }
    }
}

impl Cell {
    /// Paper-style rendering: `23.74 ± 0.65%`.
    pub fn render(&self) -> String {
        format!("{:.2} ± {:.2}%", self.mean * 100.0, self.ci95 * 100.0)
    }
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("mean".into(), Json::from(self.mean)),
            ("ci95".into(), Json::from(self.ci95)),
            ("n".into(), Json::from(self.n)),
        ])
    }
}

impl FromJson for Cell {
    fn from_json(json: &Json) -> Result<Cell> {
        // Skipped cells carry NaN means, which JSON renders as `null`.
        let num = |key: &str| -> Result<f64> {
            match json.field(key)? {
                Json::Null => Ok(f64::NAN),
                v => v.as_f64(),
            }
        };
        Ok(Cell {
            mean: num("mean")?,
            ci95: num("ci95")?,
            n: json.field("n")?.as_usize()?,
        })
    }
}

/// A reproduction of one paper table.
#[derive(Debug, Clone)]
pub struct Table {
    /// e.g. `Table 2: intra-domain cross-type adaptation`.
    pub title: String,
    /// Column headers, e.g. `NNE 1-shot`.
    pub columns: Vec<String>,
    /// `(method name, cells)` in display order.
    pub rows: Vec<(String, Vec<Cell>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Table {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a method row; the cell count must match the columns.
    pub fn push_row(&mut self, method: impl Into<String>, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((method.into(), cells));
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let mut method_width = "Method".len();
        let rendered: Vec<(String, Vec<String>)> = self
            .rows
            .iter()
            .map(|(m, cells)| {
                method_width = method_width.max(m.len());
                (m.clone(), cells.iter().map(Cell::render).collect())
            })
            .collect();
        for (_, cells) in &rendered {
            for (w, c) in widths.iter_mut().zip(cells) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&format!("{:<method_width$}", "Method"));
        for (w, c) in widths.iter().zip(&self.columns) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(method_width + widths.iter().map(|w| w + 2).sum::<usize>()));
        out.push('\n');
        for (m, cells) in &rendered {
            out.push_str(&format!("{m:<method_width$}"));
            for (w, c) in widths.iter().zip(cells) {
                out.push_str(&format!("  {c:>w$}"));
            }
            out.push('\n');
        }
        out
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("title".into(), Json::from(self.title.as_str())),
            (
                "columns".into(),
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|c| Json::from(c.as_str()))
                        .collect(),
                ),
            ),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(method, cells)| {
                            Json::Obj(vec![
                                ("method".into(), Json::from(method.as_str())),
                                (
                                    "cells".into(),
                                    Json::Arr(cells.iter().map(ToJson::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }

    /// Parses a table previously written by [`Table::to_json`].
    pub fn from_json_str(text: &str) -> fewner_util::Result<Table> {
        let json = Json::parse(text)?;
        let columns = json
            .field("columns")?
            .as_arr()?
            .iter()
            .map(|c| Ok(c.as_str()?.to_string()))
            .collect::<fewner_util::Result<Vec<_>>>()?;
        let rows = json
            .field("rows")?
            .as_arr()?
            .iter()
            .map(|row| {
                Ok((
                    row.field("method")?.as_str()?.to_string(),
                    row.field("cells")?
                        .as_arr()?
                        .iter()
                        .map(Cell::from_json)
                        .collect::<fewner_util::Result<Vec<_>>>()?,
                ))
            })
            .collect::<fewner_util::Result<Vec<_>>>()?;
        Ok(Table {
            title: json.field("title")?.as_str()?.to_string(),
            columns,
            rows,
        })
    }

    /// The cell for `(method, column)`, if present.
    pub fn cell(&self, method: &str, column: &str) -> Option<Cell> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(m, _)| m == method)
            .map(|(_, cells)| cells[col])
    }
}

/// Renders a sentence with predicted entities bracketed — the paper's
/// Table 6 notation — plus a correctness marker against the gold tags.
pub fn qualitative_line(
    tokens: &[String],
    gold: &[Tag],
    pred: &[Tag],
    slot_name: impl Fn(usize) -> String,
) -> String {
    let spans = fewner_text::tags_to_spans(pred);
    let mut out = String::new();
    let mut i = 0;
    while i < tokens.len() {
        if !out.is_empty() {
            out.push(' ');
        }
        if let Some(span) = spans.iter().find(|s| s.start == i) {
            out.push('[');
            out.push_str(&tokens[span.start..span.end].join(" "));
            out.push_str(&format!("]{{{}}}", slot_name(span.slot)));
            i = span.end;
        } else {
            out.push_str(&tokens[i]);
            i += 1;
        }
    }
    let correct = gold == pred;
    format!("{} {}", if correct { "✓" } else { "✗" }, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(mean: f64, ci: f64) -> Cell {
        Cell {
            mean,
            ci95: ci,
            n: 100,
        }
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let mut t = Table::new("Table X", vec!["A 1-shot".into(), "A 5-shot".into()]);
        t.push_row("FewNER", vec![cell(0.2374, 0.0065), cell(0.295, 0.0068)]);
        t.push_row("MAML", vec![cell(0.1998, 0.0083), cell(0.2256, 0.0073)]);
        let s = t.render();
        assert!(s.contains("23.74 ± 0.65%"));
        assert!(s.contains("MAML"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rows_panic() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row("m", vec![cell(0.1, 0.0)]);
    }

    #[test]
    fn json_round_trip_and_cell_lookup() {
        let mut t = Table::new("T", vec!["col".into()]);
        t.push_row("m", vec![cell(0.5, 0.01)]);
        let back = Table::from_json_str(&t.to_json()).unwrap();
        assert_eq!(back.title, "T");
        let c = back.cell("m", "col").unwrap();
        assert!((c.mean - 0.5).abs() < 1e-12);
        assert!(back.cell("missing", "col").is_none());
        assert!(back.cell("m", "missing").is_none());
    }

    #[test]
    fn qualitative_rendering() {
        let tokens: Vec<String> = ["Jordan", "is", "here"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let gold = vec![Tag::B(0), Tag::O, Tag::O];
        let pred_right = gold.clone();
        let pred_wrong = vec![Tag::O, Tag::O, Tag::B(1)];
        let line = qualitative_line(&tokens, &gold, &pred_right, |s| format!("slot{s}"));
        assert!(line.starts_with('✓'));
        assert!(line.contains("[Jordan]{slot0}"));
        let line = qualitative_line(&tokens, &gold, &pred_wrong, |s| format!("slot{s}"));
        assert!(line.starts_with('✗'));
        assert!(line.contains("[here]{slot1}"));
    }
}
