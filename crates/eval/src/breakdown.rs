//! Error-type breakdown for the qualitative analysis (paper §4.5.3).
//!
//! The paper attributes FEWNER's errors to missed mentions and wrong
//! boundaries rather than wrong types. This module quantifies that claim:
//! every predicted/gold span pair is classified as an exact match, a
//! boundary error (overlapping span, right slot), a slot error (right
//! boundaries, wrong slot), or a spurious/missed mention, and a
//! *detection-only* F1 (boundaries regardless of slot) is reported next to
//! the strict F1.

use fewner_text::span::SlotSpan;
use fewner_text::{tags_to_spans, Tag};

use crate::f1::F1Counts;

/// Span-level error classification counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorBreakdown {
    /// Exact matches (boundaries + slot).
    pub exact: usize,
    /// Correct slot, overlapping but not identical boundaries.
    pub boundary: usize,
    /// Identical boundaries, wrong slot.
    pub slot: usize,
    /// Predicted spans overlapping nothing in the gold set.
    pub spurious: usize,
    /// Gold spans with no overlapping prediction of any kind.
    pub missed: usize,
}

impl ErrorBreakdown {
    /// Classifies one sentence's predictions against its gold spans.
    pub fn add_spans(&mut self, gold: &[SlotSpan], pred: &[SlotSpan]) {
        for p in pred {
            if gold.contains(p) {
                self.exact += 1;
            } else if let Some(g) = gold.iter().find(|g| overlap(g, p)) {
                if g.start == p.start && g.end == p.end {
                    self.slot += 1;
                } else if g.slot == p.slot {
                    self.boundary += 1;
                } else {
                    // Overlapping with both boundary and slot wrong: count
                    // as the rarer, more informative slot error.
                    self.slot += 1;
                }
            } else {
                self.spurious += 1;
            }
        }
        for g in gold {
            if !pred.iter().any(|p| overlap(g, p)) {
                self.missed += 1;
            }
        }
    }

    /// Classifies from tag sequences.
    pub fn add_tags(&mut self, gold: &[Tag], pred: &[Tag]) {
        self.add_spans(&tags_to_spans(gold), &tags_to_spans(pred));
    }

    /// Merges another breakdown.
    pub fn merge(&mut self, other: &ErrorBreakdown) {
        self.exact += other.exact;
        self.boundary += other.boundary;
        self.slot += other.slot;
        self.spurious += other.spurious;
        self.missed += other.missed;
    }

    /// Total error events (everything except exact matches).
    pub fn total_errors(&self) -> usize {
        self.boundary + self.slot + self.spurious + self.missed
    }

    /// Human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "exact {} | boundary {} | slot {} | spurious {} | missed {}",
            self.exact, self.boundary, self.slot, self.spurious, self.missed
        )
    }
}

fn overlap(a: &SlotSpan, b: &SlotSpan) -> bool {
    a.start < b.end && b.start < a.end
}

/// Strict and detection-only F1 side by side.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectionVsTyping {
    /// Exact-match F1 counts (boundaries + slot).
    pub strict: F1Counts,
    /// Boundary-only F1 counts (slot ignored).
    pub detection: F1Counts,
}

impl DetectionVsTyping {
    /// Accumulates one sentence.
    pub fn add_tags(&mut self, gold: &[Tag], pred: &[Tag]) {
        let gold_spans = tags_to_spans(gold);
        let pred_spans = tags_to_spans(pred);
        self.strict.add_spans(&gold_spans, &pred_spans);
        let erase = |spans: &[SlotSpan]| -> Vec<SlotSpan> {
            spans
                .iter()
                .map(|s| SlotSpan {
                    start: s.start,
                    end: s.end,
                    slot: 0,
                })
                .collect()
        };
        self.detection
            .add_spans(&erase(&gold_spans), &erase(&pred_spans));
    }

    /// How much of the F1 gap is typing rather than detection:
    /// `detection_f1 − strict_f1` (≥ 0 up to counting ties).
    pub fn typing_gap(&self) -> f64 {
        self.detection.f1() - self.strict.f1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: usize, end: usize, slot: usize) -> SlotSpan {
        SlotSpan { start, end, slot }
    }

    #[test]
    fn classifies_each_error_kind() {
        let gold = [span(0, 2, 1), span(4, 5, 0), span(7, 9, 2)];
        let pred = [
            span(0, 2, 1),   // exact
            span(4, 6, 0),   // boundary (overlap, right slot)
            span(7, 9, 0),   // slot (same boundaries, wrong slot)
            span(10, 11, 1), // spurious
        ];
        let mut b = ErrorBreakdown::default();
        b.add_spans(&gold, &pred);
        assert_eq!(
            b,
            ErrorBreakdown {
                exact: 1,
                boundary: 1,
                slot: 1,
                spurious: 1,
                missed: 0,
            }
        );
        assert_eq!(b.total_errors(), 3);
        assert!(b.render().contains("boundary 1"));
    }

    #[test]
    fn missed_mentions_are_counted() {
        let gold = [span(0, 2, 1), span(5, 6, 0)];
        let pred = [span(0, 2, 1)];
        let mut b = ErrorBreakdown::default();
        b.add_spans(&gold, &pred);
        assert_eq!(b.missed, 1);
        assert_eq!(b.exact, 1);
    }

    #[test]
    fn detection_f1_dominates_strict_f1() {
        let gold = vec![Tag::B(0), Tag::I(0), Tag::O, Tag::B(1)];
        // Right boundaries, both slots wrong.
        let pred = vec![Tag::B(1), Tag::I(1), Tag::O, Tag::B(0)];
        let mut d = DetectionVsTyping::default();
        d.add_tags(&gold, &pred);
        assert_eq!(d.detection.f1(), 1.0);
        assert_eq!(d.strict.f1(), 0.0);
        assert_eq!(d.typing_gap(), 1.0);
    }

    #[test]
    fn perfect_prediction_has_no_gap() {
        let gold = vec![Tag::B(0), Tag::I(0), Tag::O];
        let mut d = DetectionVsTyping::default();
        d.add_tags(&gold, &gold.clone());
        assert_eq!(d.typing_gap(), 0.0);
        assert_eq!(d.strict.f1(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ErrorBreakdown {
            exact: 1,
            ..Default::default()
        };
        a.merge(&ErrorBreakdown {
            missed: 2,
            ..Default::default()
        });
        assert_eq!(a.exact, 1);
        assert_eq!(a.missed, 2);
    }
}
