//! Inference-throughput accounting for the serving path.
//!
//! Both the `fewner predict` CLI subcommand and the timing harness report
//! decoding speed as tokens per second over the query sweep; this module is
//! the shared bookkeeping: time a prediction closure, count the tokens it
//! emitted, and render a one-line report.

use std::time::Instant;

use fewner_util::Result;

/// Accumulated prediction-throughput counters for one or more tasks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    /// Decoded tokens.
    pub tokens: usize,
    /// Decoded sentences.
    pub sentences: usize,
    /// Wall-clock seconds spent predicting.
    pub seconds: f64,
}

impl Throughput {
    /// Tokens per wall-clock second.
    ///
    /// Never divides zero by zero: an empty measurement (no tokens) is
    /// `0.0`, while tokens decoded in less than the clock's resolution
    /// report `f64::INFINITY` rather than a silent `0.0` that would hide a
    /// *fast* run as a stalled one ([`render`](Self::render) prints the
    /// distinguishable `fast` marker for that case).
    pub fn tokens_per_sec(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else if self.seconds > 0.0 {
            self.tokens as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }

    /// Folds another measurement into this one.
    pub fn merge(&mut self, other: &Throughput) {
        self.tokens += other.tokens;
        self.sentences += other.sentences;
        self.seconds += other.seconds;
    }

    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        let rate = self.tokens_per_sec();
        let rate = if rate.is_finite() {
            format!("{rate:.0} tokens/sec")
        } else {
            "faster than the clock resolution".to_string()
        };
        format!(
            "{} tokens / {} sentences in {:.1} ms — {}",
            self.tokens,
            self.sentences,
            self.seconds * 1e3,
            rate
        )
    }
}

/// Times a prediction closure and counts the tokens in its output.
///
/// The closure returns per-sentence tag-index paths (the shape of
/// `EpisodicLearner::adapt_and_predict`); every path element is one decoded
/// token.
pub fn measure_predictions<F>(predict: F) -> Result<(Vec<Vec<usize>>, Throughput)>
where
    F: FnOnce() -> Result<Vec<Vec<usize>>>,
{
    let start = Instant::now();
    let preds = predict()?;
    let seconds = start.elapsed().as_secs_f64();
    let tokens = preds.iter().map(Vec::len).sum();
    let sentences = preds.len();
    Ok((
        preds,
        Throughput {
            tokens,
            sentences,
            seconds,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_tokens_and_sentences() {
        let (preds, t) = measure_predictions(|| Ok(vec![vec![0, 1, 2], vec![1], vec![]])).unwrap();
        assert_eq!(preds.len(), 3);
        assert_eq!(t.tokens, 4);
        assert_eq!(t.sentences, 3);
        assert!(t.seconds >= 0.0);
    }

    #[test]
    fn merge_accumulates_and_render_is_finite() {
        let mut a = Throughput {
            tokens: 100,
            sentences: 10,
            seconds: 0.5,
        };
        let b = Throughput {
            tokens: 50,
            sentences: 5,
            seconds: 0.5,
        };
        a.merge(&b);
        assert_eq!(a.tokens, 150);
        assert_eq!(a.sentences, 15);
        assert!((a.tokens_per_sec() - 150.0).abs() < 1e-9);
        assert!(a.render().contains("tokens/sec"));
    }

    #[test]
    fn zero_time_does_not_divide_by_zero() {
        let t = Throughput::default();
        assert_eq!(t.tokens_per_sec(), 0.0);
    }

    #[test]
    fn zero_tokens_with_time_is_zero_not_nan() {
        // A run that decoded nothing (every query path empty) still burned
        // wall-clock; the rate is an honest 0, never NaN.
        let t = Throughput {
            tokens: 0,
            sentences: 3,
            seconds: 0.25,
        };
        assert_eq!(t.tokens_per_sec(), 0.0);
        assert!(t.render().contains("0 tokens/sec"));
    }

    #[test]
    fn tokens_in_zero_time_report_infinity_not_zero() {
        // Regression: a sub-resolution measurement used to report 0.0,
        // indistinguishable from a stall. It must read as infinitely fast
        // and render without printing `inf`.
        let t = Throughput {
            tokens: 42,
            sentences: 2,
            seconds: 0.0,
        };
        assert_eq!(t.tokens_per_sec(), f64::INFINITY);
        let line = t.render();
        assert!(!line.contains("inf"), "no raw float INF in output: {line}");
        assert!(line.contains("faster than the clock resolution"));
    }

    #[test]
    fn merged_zero_duration_measurements_stay_finite_once_time_accrues() {
        let mut total = Throughput {
            tokens: 10,
            sentences: 1,
            seconds: 0.0,
        };
        total.merge(&Throughput {
            tokens: 10,
            sentences: 1,
            seconds: 0.1,
        });
        assert!((total.tokens_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn errors_propagate() {
        let r = measure_predictions(|| Err(fewner_util::Error::InvalidConfig("boom".into())));
        assert!(r.is_err());
    }
}
