//! Paired significance tests between methods.
//!
//! The paper claims FEWNER outperforms baselines "by significant margins";
//! because every method is evaluated on the *same* fixed episode set
//! (§4.2.1), the right tests are **paired**: a paired t-test on the
//! per-episode F1 differences and a paired bootstrap for a
//! distribution-free check. Both are implemented from scratch (no stats
//! dependency) with the normal-approximation p-value that is standard at
//! n ≥ 30 episodes.

use fewner_util::{Error, Result, Rng};

/// Result of a paired comparison of method A against method B.
#[derive(Debug, Clone, Copy)]
pub struct PairedComparison {
    /// Mean per-episode difference (A − B).
    pub mean_diff: f64,
    /// t statistic of the paired t-test.
    pub t_statistic: f64,
    /// Two-sided p-value (normal approximation to the t distribution).
    pub p_value: f64,
    /// Fraction of bootstrap resamples in which A beats B on average.
    pub bootstrap_win_rate: f64,
    /// Number of paired episodes.
    pub n: usize,
}

impl PairedComparison {
    /// True when A's advantage is significant at the given level under the
    /// t-test *and* the bootstrap agrees (win rate ≥ 1 − α).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.mean_diff > 0.0 && self.p_value < alpha && self.bootstrap_win_rate >= 1.0 - alpha
    }
}

/// Standard normal CDF (Abramowitz–Stegun 7.1.26 erf approximation).
fn phi(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Runs the paired t-test + paired bootstrap on per-episode scores.
///
/// `a` and `b` must be scores of the two methods on the *same* episodes in
/// the same order.
pub fn paired_compare(a: &[f64], b: &[f64], seed: u64) -> Result<PairedComparison> {
    if a.len() != b.len() {
        return Err(Error::InvalidConfig(format!(
            "paired comparison needs equal lengths ({} vs {})",
            a.len(),
            b.len()
        )));
    }
    let n = a.len();
    if n < 2 {
        return Err(Error::InvalidConfig(
            "paired comparison needs at least 2 episodes".into(),
        ));
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    let t = if se == 0.0 {
        if mean == 0.0 {
            0.0
        } else {
            f64::INFINITY * mean.signum()
        }
    } else {
        mean / se
    };
    let p = if t.is_infinite() {
        0.0
    } else {
        2.0 * (1.0 - phi(t.abs()))
    };

    // Paired bootstrap: resample episode indices with replacement.
    const RESAMPLES: usize = 2000;
    let mut rng = Rng::new(seed);
    let mut wins = 0usize;
    for _ in 0..RESAMPLES {
        let mut total = 0.0;
        for _ in 0..n {
            total += diffs[rng.below(n)];
        }
        if total > 0.0 {
            wins += 1;
        }
    }

    Ok(PairedComparison {
        mean_diff: mean,
        t_statistic: t,
        p_value: p,
        bootstrap_win_rate: wins as f64 / RESAMPLES as f64,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_advantage_is_significant() {
        let a: Vec<f64> = (0..50).map(|i| 0.5 + 0.01 * (i % 5) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.1).collect();
        let c = paired_compare(&a, &b, 1).unwrap();
        assert!(c.mean_diff > 0.09);
        assert!(c.p_value < 1e-6);
        assert!(c.bootstrap_win_rate > 0.99);
        assert!(c.significant_at(0.05));
    }

    #[test]
    fn identical_methods_are_not_significant() {
        let a: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let c = paired_compare(&a, &a, 2).unwrap();
        assert_eq!(c.mean_diff, 0.0);
        assert!(!c.significant_at(0.05));
    }

    #[test]
    fn noisy_tie_is_not_significant() {
        // Differences alternate ±0.1: mean 0, high variance.
        let a: Vec<f64> = (0..40)
            .map(|i| 0.5 + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let b: Vec<f64> = (0..40)
            .map(|i| 0.5 + if i % 2 == 0 { -0.05 } else { 0.05 })
            .collect();
        let c = paired_compare(&a, &b, 3).unwrap();
        assert!(c.p_value > 0.5, "p {}", c.p_value);
        assert!(!c.significant_at(0.05));
    }

    #[test]
    fn negative_advantage_never_significant() {
        let a: Vec<f64> = vec![0.2; 30];
        let b: Vec<f64> = (0..30).map(|i| 0.3 + 0.001 * i as f64).collect();
        let c = paired_compare(&a, &b, 4).unwrap();
        assert!(c.mean_diff < 0.0);
        assert!(!c.significant_at(0.05));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(paired_compare(&[0.1, 0.2], &[0.1], 5).is_err());
        assert!(paired_compare(&[0.1], &[0.1], 5).is_err());
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((phi(0.0) - 0.5).abs() < 1e-6);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!((phi(-1.96) - 0.025).abs() < 1e-3);
    }
}
