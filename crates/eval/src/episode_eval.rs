//! Evaluating a learner over the fixed episode set.
//!
//! For each held-out task: adapt on the support set, predict the query set,
//! score entity-level F1 (§4.1.1); report mean ± 1.96·σ/√n over episodes.
//! All methods are scored on the same seed-fixed task list, exactly as the
//! paper fixes the evaluation seed (§4.2.1).

use fewner_core::EpisodicLearner;
use fewner_episode::Task;
use fewner_models::TokenEncoder;
use fewner_text::Tag;
use fewner_util::{MeanCi, OnlineStats, Result};

use crate::f1::F1Counts;

/// Scores one task: adapt + predict + entity-level F1.
pub fn score_task(learner: &dyn EpisodicLearner, task: &Task, enc: &TokenEncoder) -> Result<f64> {
    let predictions = learner.adapt_and_predict(task, enc)?;
    let tags = task.tag_set();
    let mut counts = F1Counts::default();
    for (pred_idx, sent) in predictions.iter().zip(&task.query) {
        let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
        counts.add_tags(&sent.tags, &pred);
    }
    Ok(counts.f1())
}

/// Evaluates a learner over an episode set serially.
pub fn evaluate(
    learner: &dyn EpisodicLearner,
    tasks: &[Task],
    enc: &TokenEncoder,
) -> Result<MeanCi> {
    let mut stats = OnlineStats::new();
    for task in tasks {
        stats.push(score_task(learner, task, enc)?);
    }
    Ok(stats.summary())
}

/// Evaluates in parallel over `threads` worker threads (std scoped
/// threads; adaptation never mutates the learner, so sharing is safe).
///
/// Falls back to the serial path for a single thread. A panicking worker
/// surfaces as [`fewner_util::Error::WorkerPanic`] rather than poisoning
/// the whole harness.
pub fn evaluate_parallel<L>(
    learner: &L,
    tasks: &[Task],
    enc: &TokenEncoder,
    threads: usize,
) -> Result<MeanCi>
where
    L: EpisodicLearner + Sync,
{
    if threads <= 1 || tasks.len() < 2 {
        return evaluate(learner, tasks, enc);
    }
    let chunk = tasks.len().div_ceil(threads);
    let results: Vec<Result<OnlineStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .chunks(chunk)
            .map(|chunk_tasks| {
                scope.spawn(move || -> Result<OnlineStats> {
                    let mut stats = OnlineStats::new();
                    for task in chunk_tasks {
                        stats.push(score_task(learner, task, enc)?);
                    }
                    Ok(stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(fewner_util::Error::WorkerPanic {
                        context: "episode evaluation".into(),
                    })
                })
            })
            .collect()
    });

    let mut total = OnlineStats::new();
    for r in results {
        total.merge(&r?);
    }
    Ok(total.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_text::embed::EmbeddingSpec;
    use fewner_util::Rng;

    use fewner_core::TaskOutcome;
    use fewner_tensor::{ParamGrads, ParamStore};

    fn zero_outcome() -> TaskOutcome {
        TaskOutcome {
            loss: 0.0,
            grads: ParamGrads::zeros_like(&ParamStore::new()),
        }
    }

    /// An oracle learner that returns the gold tags — F1 must be 1.0.
    struct Oracle;
    impl EpisodicLearner for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn task_grad(
            &self,
            _t: &Task,
            _e: &TokenEncoder,
            _rng: &mut fewner_util::Rng,
        ) -> Result<TaskOutcome> {
            Ok(zero_outcome())
        }
        fn apply_meta_grads(&mut self, _grads: ParamGrads, _n: usize) -> Result<()> {
            Ok(())
        }
        fn adapt_and_predict(&self, task: &Task, _e: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
            let tags = task.tag_set();
            Ok(task
                .query
                .iter()
                .map(|s| s.tags.iter().map(|&t| tags.index(t)).collect())
                .collect())
        }
    }

    /// Predicts all-O — recall 0, so F1 0 whenever gold entities exist.
    struct AllO;
    impl EpisodicLearner for AllO {
        fn name(&self) -> &'static str {
            "all-o"
        }
        fn task_grad(
            &self,
            _t: &Task,
            _e: &TokenEncoder,
            _rng: &mut fewner_util::Rng,
        ) -> Result<TaskOutcome> {
            Ok(zero_outcome())
        }
        fn apply_meta_grads(&mut self, _grads: ParamGrads, _n: usize) -> Result<()> {
            Ok(())
        }
        fn adapt_and_predict(&self, task: &Task, _e: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
            Ok(task.query.iter().map(|s| vec![0; s.len()]).collect())
        }
    }

    fn fixture() -> (Vec<Task>, TokenEncoder) {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.test, 3, 1, 4).unwrap();
        let tasks = sampler.eval_set(55, 6).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 16,
                ..EmbeddingSpec::default()
            },
            4,
        );
        (tasks, enc)
    }

    #[test]
    fn oracle_scores_one() {
        let (tasks, enc) = fixture();
        let s = evaluate(&Oracle, &tasks, &enc).unwrap();
        assert!((s.mean - 1.0).abs() < 1e-12, "{s}");
        assert_eq!(s.n, 6);
    }

    #[test]
    fn all_o_scores_zero() {
        let (tasks, enc) = fixture();
        let s = evaluate(&AllO, &tasks, &enc).unwrap();
        assert_eq!(s.mean, 0.0, "{s}");
    }

    #[test]
    fn parallel_matches_serial() {
        let (tasks, enc) = fixture();
        let serial = evaluate(&Oracle, &tasks, &enc).unwrap();
        let parallel = evaluate_parallel(&Oracle, &tasks, &enc, 3).unwrap();
        assert!((serial.mean - parallel.mean).abs() < 1e-12);
        assert!((serial.ci95 - parallel.ci95).abs() < 1e-9);
        assert_eq!(serial.n, parallel.n);
    }

    #[test]
    fn rng_unused_fixture_is_deterministic() {
        let (a, _) = fixture();
        let (b, _) = fixture();
        assert_eq!(a.len(), b.len());
        let mut rng = Rng::new(1);
        let _ = rng.next_u64();
        assert_eq!(a[0].slot_types, b[0].slot_types);
    }
}
