//! Entity-level F1 (paper §4.1.1).
//!
//! For each evaluation episode: `g` = gold entities, `r` = predicted
//! entities, `c` = exact matches (same boundaries *and* same class slot);
//! `F1 = 2c / (g + r)`. Episode scores are averaged with a 95 % CI by the
//! harness.

use fewner_text::span::SlotSpan;
use fewner_text::{tags_to_spans, Tag};

/// Counts backing one episode's F1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct F1Counts {
    /// Total gold entities (`g`).
    pub gold: usize,
    /// Total predicted entities (`r`).
    pub predicted: usize,
    /// Correctly predicted entities (`c`).
    pub correct: usize,
}

impl F1Counts {
    /// Accumulates counts from one sentence's gold and predicted spans.
    pub fn add_spans(&mut self, gold: &[SlotSpan], pred: &[SlotSpan]) {
        self.gold += gold.len();
        self.predicted += pred.len();
        self.correct += pred.iter().filter(|p| gold.contains(p)).count();
    }

    /// Accumulates counts from tag sequences.
    pub fn add_tags(&mut self, gold: &[Tag], pred: &[Tag]) {
        debug_assert_eq!(gold.len(), pred.len());
        self.add_spans(&tags_to_spans(gold), &tags_to_spans(pred));
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &F1Counts) {
        self.gold += other.gold;
        self.predicted += other.predicted;
        self.correct += other.correct;
    }

    /// Precision `c / r` (1 when nothing was predicted and nothing gold).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            if self.gold == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.correct as f64 / self.predicted as f64
        }
    }

    /// Recall `c / g`.
    pub fn recall(&self) -> f64 {
        if self.gold == 0 {
            if self.predicted == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.correct as f64 / self.gold as f64
        }
    }

    /// `F1 = 2c / (g + r)`, defined as 1 when `g = r = 0`.
    pub fn f1(&self) -> f64 {
        if self.gold + self.predicted == 0 {
            1.0
        } else {
            2.0 * self.correct as f64 / (self.gold + self.predicted) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: usize, end: usize, slot: usize) -> SlotSpan {
        SlotSpan { start, end, slot }
    }

    #[test]
    fn exact_match_requires_boundaries_and_slot() {
        let mut c = F1Counts::default();
        let gold = [span(0, 2, 1), span(4, 5, 0)];
        // One exact, one boundary error, one slot error.
        let pred = [span(0, 2, 1), span(4, 6, 0), span(0, 2, 0)];
        c.add_spans(&gold, &pred);
        assert_eq!(
            c,
            F1Counts {
                gold: 2,
                predicted: 3,
                correct: 1
            }
        );
        assert!((c.f1() - 0.4).abs() < 1e-12); // 2*1 / (2+3)
        assert!((c.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tags_path_matches_span_path() {
        let gold = [Tag::B(0), Tag::I(0), Tag::O, Tag::B(1)];
        let pred = [Tag::B(0), Tag::I(0), Tag::O, Tag::B(0)];
        let mut c = F1Counts::default();
        c.add_tags(&gold, &pred);
        assert_eq!(
            c,
            F1Counts {
                gold: 2,
                predicted: 2,
                correct: 1
            }
        );
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hand_counted_paper_formula() {
        // g = 5, r = 4, c = 3 -> F1 = 6/9.
        let c = F1Counts {
            gold: 5,
            predicted: 4,
            correct: 3,
        };
        assert!((c.f1() - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = F1Counts::default();
        assert_eq!(empty.f1(), 1.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);

        let no_pred = F1Counts {
            gold: 3,
            predicted: 0,
            correct: 0,
        };
        assert_eq!(no_pred.f1(), 0.0);
        assert_eq!(no_pred.precision(), 0.0);

        let no_gold = F1Counts {
            gold: 0,
            predicted: 2,
            correct: 0,
        };
        assert_eq!(no_gold.recall(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = F1Counts {
            gold: 1,
            predicted: 2,
            correct: 1,
        };
        a.merge(&F1Counts {
            gold: 3,
            predicted: 1,
            correct: 1,
        });
        assert_eq!(
            a,
            F1Counts {
                gold: 4,
                predicted: 3,
                correct: 2
            }
        );
    }
}
