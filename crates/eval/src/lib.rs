//! `fewner-eval` — entity-level F1 and the episode evaluation harness.
//!
//! * [`f1`] — the paper's exact-match entity F1 (§4.1.1).
//! * [`episode_eval`] — adapt-and-score over the seed-fixed evaluation
//!   episode set, serial or parallel.
//! * [`report`] — paper-style table rendering + JSON reports and the
//!   qualitative-analysis line format (Table 6).
//! * [`breakdown`] — span-level error classification (boundary vs slot vs
//!   missed) behind the paper's qualitative-error claims (§4.5.3).
//! * [`significance`] — paired t-test + bootstrap between methods scored on
//!   the same episodes (the paper's "significant margins").
//! * [`throughput`] — tokens/sec accounting for the inference/serving path
//!   (`fewner predict`, the timing harness).

#![warn(missing_docs)]

pub mod breakdown;
pub mod episode_eval;
pub mod f1;
pub mod report;
pub mod significance;
pub mod throughput;

pub use breakdown::{DetectionVsTyping, ErrorBreakdown};
pub use episode_eval::{evaluate, evaluate_parallel, score_task};
pub use f1::F1Counts;
pub use report::{qualitative_line, Cell, Table};
pub use significance::{paired_compare, PairedComparison};
pub use throughput::{measure_predictions, Throughput};
