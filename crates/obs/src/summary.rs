//! Reading a trace back: per-phase latency percentiles, counter totals,
//! and the §4.5.2 adaptation-vs-training cost split.
//!
//! The summary is computed from the *raw span records* (exact percentiles
//! by sorting durations), not from the fixed histogram buckets — the
//! buckets exist for cheap steady-state aggregation, the span lines for
//! precise post-hoc analysis. Counter/gauge lines are flush snapshots, so
//! the *last* occurrence of each name wins.

use std::collections::BTreeMap;
use std::path::Path;

use fewner_util::{durable, Error, Json, Result};

/// Aggregated durations of one span name.
#[derive(Debug, Clone, Default)]
pub struct SpanStats {
    durs_ns: Vec<u64>, // kept sorted by finish()
    total_ns: u64,
}

impl SpanStats {
    /// Number of recorded spans.
    pub fn count(&self) -> usize {
        self.durs_ns.len()
    }

    /// Total nanoseconds across all spans of this name.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.durs_ns.is_empty() {
            0.0
        } else {
            self.total_ns as f64 / self.durs_ns.len() as f64
        }
    }

    /// Exact percentile (nearest-rank on the sorted durations); `p` in
    /// [0, 100].
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.durs_ns.is_empty() {
            return 0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * (self.durs_ns.len() - 1) as f64).round() as usize;
        self.durs_ns[rank]
    }

    /// Largest duration.
    pub fn max_ns(&self) -> u64 {
        self.durs_ns.last().copied().unwrap_or(0)
    }

    fn push(&mut self, dur: u64) {
        self.durs_ns.push(dur);
        self.total_ns += dur;
    }

    fn finish(&mut self) {
        self.durs_ns.sort_unstable();
    }
}

/// Aggregate of one histogram's flush snapshot (`t: "hist"` records).
/// Histograms carry signals with no backing span records — e.g.
/// `corpus/window_resident`, the routed-sentence residency of a streaming
/// window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistDigest {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
}

impl HistDigest {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The streaming-corpus digest — see [`TraceSummary::streaming`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingDigest {
    /// Corpus chunks generated on demand (`corpus/chunks_generated`).
    pub chunks_generated: u64,
    /// Mean routed sentences resident in the sampling window
    /// (`corpus/window_resident`).
    pub window_mean: f64,
    /// Peak routed sentences resident at once — the run's actual memory
    /// bound.
    pub window_peak: f64,
}

/// The sharded-training digest from a coordinator trace — see
/// [`TraceSummary::sharding`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingDigest {
    /// Reduce rounds the coordinator completed (`shard/rounds`).
    pub rounds: u64,
    /// `(shard id, tasks computed)` per worker (`shard/tasks/s{N}`),
    /// ascending by shard id. Reassigned ranges count toward the worker
    /// that absorbed them.
    pub tasks_per_shard: Vec<(usize, u64)>,
    /// Workers that died mid-run (`shard/deaths`).
    pub deaths: u64,
    /// Task ranges reassigned to a surviving worker (`shard/reassigned`).
    pub reassigned: u64,
    /// Gradient frames retransmitted after CRC failures
    /// (`shard/retransmits`).
    pub retransmits: u64,
    /// Rounds skipped because a shard reported a non-finite loss
    /// (`shard/skipped_rounds`).
    pub skipped_rounds: u64,
}

/// A parsed trace, ready to render.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Span stats keyed by span name (sorted).
    pub spans: BTreeMap<String, SpanStats>,
    /// Counter totals (last flush snapshot wins).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (last flush snapshot wins).
    pub gauges: BTreeMap<String, f64>,
    /// Event counts per event name.
    pub events: BTreeMap<String, usize>,
    /// Histogram digests (last flush snapshot wins).
    pub hists: BTreeMap<String, HistDigest>,
    /// Total records parsed.
    pub records: usize,
}

impl TraceSummary {
    /// Parses a trace from JSONL text; every non-empty line must be a
    /// valid record.
    pub fn parse(text: &str) -> Result<TraceSummary> {
        let mut summary = TraceSummary::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rec = Json::parse(line)
                .map_err(|e| Error::Serde(format!("trace line {}: {e}", lineno + 1)))?;
            let kind = rec.field("t")?.as_str()?.to_string();
            let name = rec.field("name")?.as_str()?.to_string();
            match kind.as_str() {
                "span" => {
                    let dur = rec.field("dur")?.as_u64()?;
                    summary.spans.entry(name).or_default().push(dur);
                }
                "event" => *summary.events.entry(name).or_insert(0) += 1,
                "counter" => {
                    summary.counters.insert(name, rec.field("v")?.as_u64()?);
                }
                "gauge" => {
                    summary.gauges.insert(name, rec.field("v")?.as_f64()?);
                }
                // Histogram snapshots are the only record of observe()
                // signals (spans keep their own raw records); like
                // counters, the last flush wins.
                "hist" => {
                    summary.hists.insert(
                        name,
                        HistDigest {
                            count: rec.field("count")?.as_u64()?,
                            sum: rec.field("sum")?.as_f64()?,
                            min: rec.field("min")?.as_f64()?,
                            max: rec.field("max")?.as_f64()?,
                        },
                    );
                }
                other => {
                    return Err(Error::Serde(format!(
                        "trace line {}: unknown record type `{other}`",
                        lineno + 1
                    )))
                }
            }
            summary.records += 1;
        }
        for stats in summary.spans.values_mut() {
            stats.finish();
        }
        Ok(summary)
    }

    /// Reads and parses a trace file — either a durable CRC-framed file
    /// (as [`crate::JsonlSink`] writes) or plain JSONL text.
    pub fn from_file(path: impl AsRef<Path>) -> Result<TraceSummary> {
        TraceSummary::parse(&read_trace_text(path.as_ref())?)
    }

    /// Reads several trace files into one merged summary — e.g. a training
    /// trace plus a serving trace, so the §4.5.2 cost split covers both
    /// phases in a single report. Records are concatenated in argument
    /// order (so for counters the *last file's* snapshot wins).
    pub fn from_files<P: AsRef<Path>>(paths: &[P]) -> Result<TraceSummary> {
        let mut text = String::new();
        for path in paths {
            text.push_str(&read_trace_text(path.as_ref())?);
            text.push('\n');
        }
        TraceSummary::parse(&text)
    }

    /// The §4.5.2 cost split: total time in meta-training iterations vs
    /// total time adapting φ at serve time. `None` until the trace holds
    /// at least one of the two phases.
    pub fn cost_split(&self) -> Option<(u64, u64)> {
        let train = self.spans.get("train/iteration").map(SpanStats::total_ns);
        let adapt = self.spans.get("serve/adapt").map(SpanStats::total_ns);
        if train.is_none() && adapt.is_none() {
            return None;
        }
        Some((train.unwrap_or(0), adapt.unwrap_or(0)))
    }

    /// The serving-resilience digest: `(requests, deadline_missed, shed,
    /// retries)` from the daemon's counters. `None` when the trace holds no
    /// serving traffic at all, so training-only traces stay quiet.
    pub fn resilience(&self) -> Option<(u64, u64, u64, u64)> {
        let c = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let requests = c("serve/requests");
        let digest = (
            requests,
            c("serve/deadline_missed"),
            c("serve/shed"),
            c("serve/request_retries"),
        );
        (requests > 0).then_some(digest)
    }

    /// The streaming-corpus digest: chunks generated on demand plus the
    /// sampling window's resident-sentence profile. `None` when the trace
    /// holds no `corpus/chunks_generated` counter, so materialized runs
    /// stay quiet.
    pub fn streaming(&self) -> Option<StreamingDigest> {
        let chunks = *self.counters.get("corpus/chunks_generated")?;
        let resident = self.hists.get("corpus/window_resident");
        Some(StreamingDigest {
            chunks_generated: chunks,
            window_mean: resident.map_or(0.0, HistDigest::mean),
            window_peak: resident.map_or(0.0, |h| h.max),
        })
    }

    /// The sharded-training digest: reduce rounds, per-shard task counts
    /// and fault-tolerance counters from the coordinator's trace. `None`
    /// when the trace holds no `shard/rounds` counter, so unsharded runs
    /// stay quiet.
    pub fn sharding(&self) -> Option<ShardingDigest> {
        let rounds = *self.counters.get("shard/rounds")?;
        let c = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let mut tasks_per_shard: Vec<(usize, u64)> = self
            .counters
            .iter()
            .filter_map(|(name, v)| {
                let id = name.strip_prefix("shard/tasks/s")?;
                id.parse::<usize>().ok().map(|id| (id, *v))
            })
            .collect();
        tasks_per_shard.sort_unstable();
        Some(ShardingDigest {
            rounds,
            tasks_per_shard,
            deaths: c("shard/deaths"),
            reassigned: c("shard/reassigned"),
            retransmits: c("shard/retransmits"),
            skipped_rounds: c("shard/skipped_rounds"),
        })
    }

    /// The human-readable report `fewner trace summarize` prints.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        out.push_str(&format!("trace summary: {} records\n", self.records));
        if !self.spans.is_empty() {
            out.push_str("\nper-phase latency (ms)\n");
            out.push_str(&format!(
                "  {:<22} {:>7} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "phase", "count", "total", "mean", "p50", "p90", "p99", "max"
            ));
            for (name, s) in &self.spans {
                out.push_str(&format!(
                    "  {:<22} {:>7} {:>11.2} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                    name,
                    s.count(),
                    ms(s.total_ns()),
                    s.mean_ns() / 1e6,
                    ms(s.percentile_ns(50.0)),
                    ms(s.percentile_ns(90.0)),
                    ms(s.percentile_ns(99.0)),
                    ms(s.max_ns()),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<30} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<30} {v}\n"));
            }
        }
        if !self.events.is_empty() {
            out.push_str("\nevents\n");
            for (name, v) in &self.events {
                out.push_str(&format!("  {name:<30} ×{v}\n"));
            }
        }
        if let Some((requests, missed, shed, retries)) = self.resilience() {
            out.push_str("\nserving resilience\n");
            out.push_str(&format!(
                "  {requests} requests: {missed} deadline-missed ({:.1}%), \
                 {shed} shed, {retries} retried\n",
                100.0 * missed as f64 / requests as f64
            ));
            if self.events.contains_key("serve/persist_degraded") {
                out.push_str("  φ persistence DEGRADED to memory-only (see events)\n");
            }
        }
        if let Some(stream) = self.streaming() {
            out.push_str("\nstreaming corpus\n");
            out.push_str(&format!(
                "  {} chunks generated on demand; window residency mean {:.1}, \
                 peak {:.0} routed sentences\n",
                stream.chunks_generated, stream.window_mean, stream.window_peak,
            ));
        }
        if let Some(ext) = self.spans.get("serve/adapt_extend") {
            out.push_str("\nincremental adaptation\n");
            out.push_str(&format!(
                "  {} extends ({} total), mean {:.2} ms",
                ext.count(),
                self.counters.get("serve/extends").copied().unwrap_or(0),
                ext.mean_ns() / 1e6,
            ));
            if let Some(cold) = self.spans.get("serve/adapt") {
                if cold.count() > 0 && ext.mean_ns() > 0.0 {
                    out.push_str(&format!(
                        " vs cold adapt mean {:.2} ms ({:.1}x)",
                        cold.mean_ns() / 1e6,
                        cold.mean_ns() / ext.mean_ns(),
                    ));
                }
            }
            out.push('\n');
        }
        if let Some(sharding) = self.sharding() {
            out.push_str("\nsharding\n");
            out.push_str(&format!(
                "  {} rounds across {} shards: {} skipped, {} deaths, \
                 {} ranges reassigned, {} frames retransmitted\n",
                sharding.rounds,
                sharding.tasks_per_shard.len(),
                sharding.skipped_rounds,
                sharding.deaths,
                sharding.reassigned,
                sharding.retransmits,
            ));
            if !sharding.tasks_per_shard.is_empty() {
                out.push_str("  tasks per shard:");
                for (id, tasks) in &sharding.tasks_per_shard {
                    out.push_str(&format!(" s{id:02}={tasks}"));
                }
                out.push('\n');
            }
            if let Some(wait) = self.spans.get("shard/straggler_wait") {
                out.push_str(&format!(
                    "  straggler wait (ms): p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}\n",
                    ms(wait.percentile_ns(50.0)),
                    ms(wait.percentile_ns(90.0)),
                    ms(wait.percentile_ns(99.0)),
                    ms(wait.max_ns()),
                ));
            }
        }
        if let Some((train_ns, adapt_ns)) = self.cost_split() {
            out.push_str("\nadaptation vs training cost (paper §4.5.2)\n");
            let train_spans = self.spans.get("train/iteration");
            let adapt_spans = self.spans.get("serve/adapt");
            out.push_str(&format!(
                "  training   (train/iteration): {:>10.2} ms over {} iterations\n",
                ms(train_ns),
                train_spans.map_or(0, SpanStats::count)
            ));
            out.push_str(&format!(
                "  adaptation (serve/adapt):     {:>10.2} ms over {} tasks\n",
                ms(adapt_ns),
                adapt_spans.map_or(0, SpanStats::count)
            ));
            if train_ns > 0 && adapt_ns > 0 {
                let per_iter = train_spans.map_or(0.0, SpanStats::mean_ns);
                let per_task = adapt_spans.map_or(0.0, SpanStats::mean_ns);
                if per_iter > 0.0 {
                    out.push_str(&format!(
                        "  per-task adaptation / per-iteration training: {:.4}\n",
                        per_task / per_iter
                    ));
                }
            }
        }
        out
    }
}

/// The raw JSONL payload of a trace file, unwrapping the durable frame
/// when present.
fn read_trace_text(path: &Path) -> Result<String> {
    let head = std::fs::read(path).map_err(|e| Error::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    if head.starts_with(durable::MAGIC.as_bytes()) {
        durable::read_verified_string(path)
    } else {
        String::from_utf8(head).map_err(|_| Error::Io {
            path: path.display().to_string(),
            detail: "trace file is not UTF-8".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, start: u64, dur: u64) -> String {
        format!(r#"{{"t":"span","name":"{name}","start":{start},"dur":{dur}}}"#)
    }

    #[test]
    fn percentiles_are_exact_on_known_durations() {
        let text: String = (1..=100u64)
            .map(|i| span_line("train/iteration", i, i * 1000))
            .collect::<Vec<_>>()
            .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        let stats = &s.spans["train/iteration"];
        assert_eq!(stats.count(), 100);
        assert_eq!(stats.percentile_ns(0.0), 1_000);
        assert_eq!(stats.percentile_ns(50.0), 51_000); // nearest-rank on 0..=99
        assert_eq!(stats.percentile_ns(100.0), 100_000);
        assert_eq!(stats.max_ns(), 100_000);
        assert_eq!(stats.total_ns(), 5_050_000);
    }

    #[test]
    fn counters_take_the_last_snapshot_and_events_count() {
        let text = [
            r#"{"t":"counter","name":"sampler/tasks_drawn","v":10}"#,
            r#"{"t":"event","name":"train/skip","at":5}"#,
            r#"{"t":"event","name":"train/skip","at":9}"#,
            r#"{"t":"counter","name":"sampler/tasks_drawn","v":32}"#,
        ]
        .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        assert_eq!(s.counters["sampler/tasks_drawn"], 32);
        assert_eq!(s.events["train/skip"], 2);
        assert_eq!(s.records, 4);
    }

    #[test]
    fn resilience_digest_appears_only_for_serving_traces() {
        let quiet = TraceSummary::parse(&span_line("train/iteration", 0, 1_000)).unwrap();
        assert_eq!(quiet.resilience(), None);
        assert!(!quiet.render().contains("serving resilience"));

        let text = [
            r#"{"t":"counter","name":"serve/requests","v":40}"#,
            r#"{"t":"counter","name":"serve/deadline_missed","v":4}"#,
            r#"{"t":"counter","name":"serve/shed","v":3}"#,
            r#"{"t":"counter","name":"serve/request_retries","v":5}"#,
            r#"{"t":"event","name":"serve/persist_degraded","at":7}"#,
        ]
        .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        assert_eq!(s.resilience(), Some((40, 4, 3, 5)));
        let report = s.render();
        assert!(report.contains("serving resilience"));
        assert!(report.contains("4 deadline-missed (10.0%)"));
        assert!(report.contains("3 shed, 5 retried"));
        assert!(report.contains("DEGRADED to memory-only"));
    }

    #[test]
    fn sharding_digest_appears_only_for_sharded_traces() {
        let quiet = TraceSummary::parse(&span_line("train/iteration", 0, 1_000)).unwrap();
        assert_eq!(quiet.sharding(), None);
        assert!(!quiet.render().contains("\nsharding\n"));

        let text = [
            r#"{"t":"counter","name":"shard/rounds","v":12}"#,
            r#"{"t":"counter","name":"shard/tasks/s0","v":30}"#,
            r#"{"t":"counter","name":"shard/tasks/s1","v":18}"#,
            r#"{"t":"counter","name":"shard/deaths","v":1}"#,
            r#"{"t":"counter","name":"shard/reassigned","v":2}"#,
            r#"{"t":"counter","name":"shard/retransmits","v":3}"#,
            r#"{"t":"counter","name":"shard/skipped_rounds","v":1}"#,
            span_line("shard/straggler_wait", 0, 4_000_000).as_str(),
            span_line("shard/straggler_wait", 1, 6_000_000).as_str(),
        ]
        .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        let digest = s.sharding().expect("sharded trace must digest");
        assert_eq!(digest.rounds, 12);
        assert_eq!(digest.tasks_per_shard, vec![(0, 30), (1, 18)]);
        assert_eq!(
            (digest.deaths, digest.reassigned, digest.retransmits),
            (1, 2, 3)
        );
        assert_eq!(digest.skipped_rounds, 1);
        let report = s.render();
        assert!(report.contains("\nsharding\n"), "{report}");
        assert!(
            report.contains("12 rounds across 2 shards: 1 skipped, 1 deaths"),
            "{report}"
        );
        assert!(report.contains("s00=30 s01=18"), "{report}");
        assert!(report.contains("straggler wait (ms): p50"), "{report}");
    }

    #[test]
    fn sharding_shard_ids_sort_numerically() {
        // Lexical counter order would put s10 before s2; the digest must not.
        let text = [
            r#"{"t":"counter","name":"shard/rounds","v":1}"#,
            r#"{"t":"counter","name":"shard/tasks/s10","v":5}"#,
            r#"{"t":"counter","name":"shard/tasks/s2","v":7}"#,
        ]
        .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        assert_eq!(s.sharding().unwrap().tasks_per_shard, vec![(2, 7), (10, 5)]);
    }

    #[test]
    fn streaming_digest_appears_only_for_streaming_traces() {
        let quiet = TraceSummary::parse(&span_line("train/iteration", 0, 1_000)).unwrap();
        assert_eq!(quiet.streaming(), None);
        assert!(!quiet.render().contains("streaming corpus"));

        let text = [
            r#"{"t":"counter","name":"corpus/chunks_generated","v":128}"#,
            r#"{"t":"hist","name":"corpus/window_resident","count":4,"sum":720.0,"min":150.0,"max":200.0,"buckets":[]}"#,
        ]
        .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        let d = s.streaming().expect("streaming trace must digest");
        assert_eq!(d.chunks_generated, 128);
        assert!((d.window_mean - 180.0).abs() < 1e-9);
        assert_eq!(d.window_peak, 200.0);
        let report = s.render();
        assert!(report.contains("streaming corpus"), "{report}");
        assert!(report.contains("128 chunks generated"), "{report}");
        assert!(report.contains("peak 200 routed sentences"), "{report}");
    }

    #[test]
    fn incremental_adaptation_renders_the_extend_vs_cold_split() {
        let text = [
            span_line("serve/adapt", 0, 12_000_000),
            span_line("serve/adapt_extend", 1, 6_000_000),
            r#"{"t":"counter","name":"serve/extends","v":1}"#.to_string(),
        ]
        .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        let report = s.render();
        assert!(report.contains("incremental adaptation"), "{report}");
        assert!(
            report.contains("1 extends (1 total), mean 6.00 ms vs cold adapt mean 12.00 ms (2.0x)"),
            "{report}"
        );
    }

    #[test]
    fn cost_split_reports_both_phases() {
        let text = [
            span_line("train/iteration", 0, 8_000_000),
            span_line("train/iteration", 1, 12_000_000),
            span_line("serve/adapt", 2, 1_000_000),
        ]
        .join("\n");
        let s = TraceSummary::parse(&text).unwrap();
        assert_eq!(s.cost_split(), Some((20_000_000, 1_000_000)));
        let report = s.render();
        assert!(report.contains("per-phase latency"));
        assert!(report.contains("train/iteration"));
        assert!(report.contains("adaptation vs training cost"));
        assert!(report.contains("over 2 iterations"));
        assert!(report.contains("over 1 tasks"));
    }

    #[test]
    fn empty_trace_has_no_cost_split() {
        let s = TraceSummary::parse("").unwrap();
        assert_eq!(s.records, 0);
        assert!(s.cost_split().is_none());
        assert!(s.render().contains("0 records"));
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = TraceSummary::parse("{\"t\":\"span\"").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = TraceSummary::parse(r#"{"t":"mystery","name":"x"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown record type"), "{err}");
        // A span without `dur` is malformed too.
        assert!(TraceSummary::parse(r#"{"t":"span","name":"x","start":1}"#).is_err());
    }

    #[test]
    fn from_file_reads_plain_and_durable_framed_traces() {
        let dir = std::env::temp_dir();
        let plain = dir.join(format!("fewner-obs-plain-{}.jsonl", std::process::id()));
        std::fs::write(&plain, span_line("a", 0, 5)).unwrap();
        assert_eq!(TraceSummary::from_file(&plain).unwrap().records, 1);

        let framed = dir.join(format!("fewner-obs-framed-{}.jsonl", std::process::id()));
        durable::write_atomic(&framed, span_line("b", 0, 7).as_bytes()).unwrap();
        let s = TraceSummary::from_file(&framed).unwrap();
        assert_eq!(s.spans["b"].total_ns(), 7);

        // Merging a train-phase and a serve-phase trace yields a combined
        // cost split (mixed framing is fine).
        let train = dir.join(format!("fewner-obs-train-{}.jsonl", std::process::id()));
        durable::write_atomic(
            &train,
            span_line("train/iteration", 0, 9_000_000).as_bytes(),
        )
        .unwrap();
        let serve = dir.join(format!("fewner-obs-serve-{}.jsonl", std::process::id()));
        std::fs::write(&serve, span_line("serve/adapt", 0, 3_000_000)).unwrap();
        let merged = TraceSummary::from_files(&[&train, &serve]).unwrap();
        assert_eq!(merged.cost_split(), Some((9_000_000, 3_000_000)));

        for p in [&plain, &framed, &train, &serve] {
            std::fs::remove_file(p).ok();
        }
    }
}
