//! The tracer: spans, events, and the metric entry points.
//!
//! Record shapes (one compact JSON object per line):
//!
//! ```text
//! {"t":"span","name":"train/iteration","start":<ns>,"dur":<ns>,"iter":3,...}
//! {"t":"event","name":"train/resume","at":<ns>,"iteration":6,...}
//! {"t":"counter","name":"sampler/tasks_drawn","v":128}      (flush snapshot)
//! {"t":"gauge","name":"infer/pool_hits","v":512}            (flush snapshot)
//! {"t":"hist","name":"train/outer_loss","count":16,"sum":…} (flush snapshot)
//! ```
//!
//! Span and event fields are flattened into the record object; field names
//! therefore must not collide with `t`/`name`/`start`/`dur`/`at` (the
//! instrumentation sites use short plain keys like `iter`, `loss`,
//! `tokens`).

use std::sync::Arc;

use fewner_util::{Json, Result};

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::Metrics;
use crate::sink::{JsonlSink, Sink};

struct Inner {
    clock: Box<dyn Clock>,
    sink: Box<dyn Sink>,
    metrics: Metrics,
}

/// The handle instrumented code holds.
///
/// Cheap to clone and thread-safe; a disabled tracer is a `None` and every
/// operation on it is a single branch. All constructors are explicit —
/// there is no global tracer, so tests and parallel runs cannot interfere
/// through hidden state.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// The no-op tracer: records nothing, costs ~nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer with an explicit clock and sink (tests use
    /// [`crate::ManualClock`] + [`crate::MemorySink`] here).
    pub fn new(clock: impl Clock + 'static, sink: impl Sink + 'static) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                clock: Box::new(clock),
                sink: Box::new(sink),
                metrics: Metrics::new(),
            })),
        }
    }

    /// The production configuration: monotonic clock, durable JSONL file
    /// at `path` (written on [`Tracer::flush`]).
    pub fn jsonl(path: impl Into<std::path::PathBuf>) -> Tracer {
        Tracer::new(MonotonicClock::new(), JsonlSink::new(path))
    }

    /// True when records are being collected.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; its duration is recorded when the guard drops. Attach
    /// context with [`Span::set`].
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            state: self.inner.as_deref().map(|inner| SpanState {
                inner,
                name,
                start: inner.clock.now_ns(),
                fields: Vec::new(),
            }),
        }
    }

    /// Records an instantaneous event with the given extra fields.
    pub fn event(&self, name: &str, fields: &[(&str, Json)]) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let mut obj: Vec<(String, Json)> = vec![
            ("t".into(), Json::Str("event".into())),
            ("name".into(), Json::Str(name.into())),
            ("at".into(), Json::Num(inner.clock.now_ns() as f64)),
        ];
        for (k, v) in fields {
            obj.push(((*k).into(), v.clone()));
        }
        inner.sink.record(&Json::Obj(obj).to_string());
    }

    /// Adds `by` to the counter `name`.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.incr(name, by);
        }
    }

    /// Sets the gauge `name`.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.gauge(name, value);
        }
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.observe(name, value);
        }
    }

    /// Emits the current metrics snapshot as trace records, then persists
    /// the sink. Call once at the end of a run (and after any event worth
    /// surviving a later crash).
    pub fn flush(&self) -> Result<()> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        let snap = inner.metrics.snapshot();
        for (name, v) in &snap.counters {
            let line = Json::Obj(vec![
                ("t".into(), Json::Str("counter".into())),
                ("name".into(), Json::Str(name.clone())),
                ("v".into(), Json::Num(*v as f64)),
            ]);
            inner.sink.record(&line.to_string());
        }
        for (name, v) in &snap.gauges {
            let line = Json::Obj(vec![
                ("t".into(), Json::Str("gauge".into())),
                ("name".into(), Json::Str(name.clone())),
                ("v".into(), Json::Num(*v)),
            ]);
            inner.sink.record(&line.to_string());
        }
        for (name, h) in &snap.histograms {
            let line = Json::Obj(vec![
                ("t".into(), Json::Str("hist".into())),
                ("name".into(), Json::Str(name.clone())),
                ("count".into(), Json::Num(h.count as f64)),
                ("sum".into(), Json::Num(h.sum)),
                (
                    "min".into(),
                    Json::Num(if h.count == 0 { 0.0 } else { h.min }),
                ),
                (
                    "max".into(),
                    Json::Num(if h.count == 0 { 0.0 } else { h.max }),
                ),
                (
                    "buckets".into(),
                    Json::Arr(
                        h.bucket_counts
                            .iter()
                            .map(|&c| Json::Num(c as f64))
                            .collect(),
                    ),
                ),
            ]);
            inner.sink.record(&line.to_string());
        }
        inner.sink.flush()
    }
}

struct SpanState<'a> {
    inner: &'a Inner,
    name: &'static str,
    start: u64,
    fields: Vec<(String, Json)>,
}

/// An open span; dropping it records the duration (also observed into the
/// histogram of the span's name, so flush snapshots carry per-phase
/// aggregates even if the raw records are discarded).
pub struct Span<'a> {
    state: Option<SpanState<'a>>,
}

impl Span<'_> {
    /// Attaches a context field to the span record.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        if let Some(state) = &mut self.state {
            state.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let end = state.inner.clock.now_ns();
        let dur = end.saturating_sub(state.start);
        let mut obj: Vec<(String, Json)> = vec![
            ("t".into(), Json::Str("span".into())),
            ("name".into(), Json::Str(state.name.into())),
            ("start".into(), Json::Num(state.start as f64)),
            ("dur".into(), Json::Num(dur as f64)),
        ];
        obj.extend(state.fields);
        state.inner.sink.record(&Json::Obj(obj).to_string());
        state.inner.metrics.observe(state.name, dur as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut s = t.span("x");
        s.set("k", 1u64);
        drop(s);
        t.event("e", &[("a", Json::Num(1.0))]);
        t.incr("c", 1);
        t.gauge("g", 1.0);
        t.observe("h", 1.0);
        t.flush().unwrap();
    }

    #[test]
    fn span_duration_is_exactly_the_clock_delta() {
        let clock = ManualClock::starting_at(100);
        let sink = MemorySink::new();
        let handle = sink.clone();
        let t = Tracer::new(clock, sink);
        {
            let mut span = t.span("phase/work");
            span.set("iter", 7u64);
        }
        // The clock never advanced, so dur is 0 and start is 100.
        let lines = handle.lines();
        assert_eq!(lines.len(), 1);
        let rec = Json::parse(&lines[0]).unwrap();
        assert_eq!(rec.field("t").unwrap().as_str().unwrap(), "span");
        assert_eq!(rec.field("name").unwrap().as_str().unwrap(), "phase/work");
        assert_eq!(rec.field("start").unwrap().as_u64().unwrap(), 100);
        assert_eq!(rec.field("dur").unwrap().as_u64().unwrap(), 0);
        assert_eq!(rec.field("iter").unwrap().as_u64().unwrap(), 7);
    }

    #[test]
    fn manual_clock_advancing_inside_a_span_is_measured() {
        // Share the clock through an Arc so the test can advance it while
        // the tracer holds it.
        #[derive(Clone)]
        struct SharedClock(Arc<ManualClock>);
        impl Clock for SharedClock {
            fn now_ns(&self) -> u64 {
                self.0.now_ns()
            }
        }
        let clock = SharedClock(Arc::new(ManualClock::new()));
        let sink = MemorySink::new();
        let handle = sink.clone();
        let t = Tracer::new(clock.clone(), sink);
        {
            let _span = t.span("adapt");
            clock.0.advance(42_000);
        }
        let rec = Json::parse(&handle.lines()[0]).unwrap();
        assert_eq!(rec.field("dur").unwrap().as_u64().unwrap(), 42_000);
        // The duration also landed in the span-name histogram.
        let snap_lines = {
            t.flush().unwrap();
            handle.lines()
        };
        let hist = snap_lines
            .iter()
            .find(|l| l.contains(r#""t":"hist""#) && l.contains(r#""name":"adapt""#))
            .expect("histogram snapshot line");
        let h = Json::parse(hist).unwrap();
        assert_eq!(h.field("count").unwrap().as_u64().unwrap(), 1);
        assert_eq!(h.field("sum").unwrap().as_f64().unwrap(), 42_000.0);
    }

    #[test]
    fn events_and_flush_snapshot_are_recorded_in_order() {
        let sink = MemorySink::new();
        let handle = sink.clone();
        let t = Tracer::new(ManualClock::starting_at(5), sink);
        t.event("train/resume", &[("iteration", Json::Num(6.0))]);
        t.incr("zeta", 2);
        t.incr("alpha", 1);
        t.gauge("mid", 0.5);
        t.flush().unwrap();
        let lines = handle.lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(r#""t":"event""#) && lines[0].contains(r#""at":5"#));
        // Counters enumerate sorted: alpha before zeta.
        assert!(lines[1].contains(r#""name":"alpha""#));
        assert!(lines[2].contains(r#""name":"zeta""#));
        assert!(lines[3].contains(r#""t":"gauge""#));
    }

    #[test]
    fn tracer_clones_share_one_trace() {
        let sink = MemorySink::new();
        let handle = sink.clone();
        let t = Tracer::new(ManualClock::new(), sink);
        let t2 = t.clone();
        t.incr("n", 1);
        t2.incr("n", 1);
        t2.flush().unwrap();
        assert!(handle.text().contains(r#""v":2"#));
    }
}
