//! Trace record sinks.
//!
//! A sink receives complete, already-rendered trace lines (one compact
//! JSON object each) and decides where they go: nowhere ([`NoopSink`]), a
//! shared in-memory buffer for tests ([`MemorySink`]), or a durable JSONL
//! file ([`JsonlSink`]). Records are buffered in memory and only hit the
//! filesystem on [`Sink::flush`], through `fewner-util`'s atomic
//! CRC-framed writer — so a crashed run loses its unflushed trace tail,
//! but never leaves a torn or unverifiable trace file. (The checkpoint
//! story is unaffected: traces are diagnostics, snapshots are the source
//! of truth.)

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use fewner_util::{durable, Result};

/// Receives rendered trace lines.
pub trait Sink: Send + Sync {
    /// Accepts one trace record (a complete JSON object, no newline).
    fn record(&self, line: &str);

    /// Persists everything recorded so far, if this sink persists at all.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _line: &str) {}
}

/// Collects lines in memory behind a shared handle; clone it before moving
/// one copy into the tracer and read the other from the test.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty shared buffer.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of every line recorded so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink lock").clone()
    }

    /// All recorded lines joined with newlines (the shape
    /// [`crate::TraceSummary::parse`] takes).
    pub fn text(&self) -> String {
        self.lines().join("\n")
    }
}

impl Sink for MemorySink {
    fn record(&self, line: &str) {
        self.lines
            .lock()
            .expect("memory sink lock")
            .push(line.to_string());
    }
}

/// Buffers lines and flushes them as one durable JSONL document.
///
/// Every flush rewrites the whole accumulated trace atomically (traces are
/// diagnostic-sized, not log-pipeline-sized), so the file on disk is always
/// a complete, CRC-verified prefix of the run.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    buffer: Mutex<String>,
}

impl JsonlSink {
    /// A sink that will write to `path` on flush.
    pub fn new(path: impl Into<PathBuf>) -> JsonlSink {
        JsonlSink {
            path: path.into(),
            buffer: Mutex::new(String::new()),
        }
    }

    /// The flush target.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, line: &str) {
        let mut buf = self.buffer.lock().expect("jsonl sink lock");
        buf.push_str(line);
        buf.push('\n');
    }

    fn flush(&self) -> Result<()> {
        let buf = self.buffer.lock().expect("jsonl sink lock");
        durable::write_atomic(&self.path, buf.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_shares_lines_across_clones() {
        let sink = MemorySink::new();
        let handle = sink.clone();
        sink.record(r#"{"t":"event","name":"a"}"#);
        sink.record(r#"{"t":"event","name":"b"}"#);
        assert_eq!(handle.lines().len(), 2);
        assert!(handle.text().contains("\"b\""));
    }

    #[test]
    fn noop_sink_accepts_and_flushes() {
        let sink = NoopSink;
        sink.record("ignored");
        sink.flush().unwrap();
    }

    #[test]
    fn jsonl_sink_flushes_a_durable_verified_file() {
        let path =
            std::env::temp_dir().join(format!("fewner-obs-sink-{}.jsonl", std::process::id()));
        let sink = JsonlSink::new(&path);
        sink.record(r#"{"t":"counter","name":"x","v":1}"#);
        sink.record(r#"{"t":"counter","name":"y","v":2}"#);
        sink.flush().unwrap();
        let text = durable::read_verified_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{')));
        // A later flush rewrites the full accumulated trace.
        sink.record(r#"{"t":"counter","name":"z","v":3}"#);
        sink.flush().unwrap();
        let text = durable::read_verified_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }
}
