//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! All three families are keyed by name in a `BTreeMap` so a snapshot
//! always enumerates in one deterministic (sorted) order — trace files are
//! diffable and tests can assert on exact output. The registry is
//! internally locked; instrumented code only ever sees it through
//! [`crate::Tracer`], which skips the lock entirely when tracing is
//! disabled.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Histogram bucket upper bounds: log-decade from 1 µs to 100 s (in ns),
/// plus the implicit overflow bucket. One fixed scale for every histogram
/// keeps snapshots comparable across runs and avoids per-metric
/// configuration drift; exact percentiles for spans come from the raw span
/// records, not from these buckets.
pub const BUCKET_BOUNDS: [f64; 9] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11];

/// One histogram's accumulated state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations per bucket (`BUCKET_BOUNDS.len() + 1` entries; the
    /// last one counts observations above every bound).
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    fn new() -> HistogramSnapshot {
        HistogramSnapshot {
            bucket_counts: vec![0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        let bucket = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.bucket_counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric, in sorted name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The thread-safe metrics registry behind a [`crate::Tracer`].
#[derive(Default)]
pub struct Metrics {
    registry: Mutex<Registry>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `by` to the counter `name` (created at 0).
    pub fn incr(&self, name: &str, by: u64) {
        let mut r = self.registry.lock().expect("metrics lock");
        *r.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        let mut r = self.registry.lock().expect("metrics lock");
        r.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut r = self.registry.lock().expect("metrics lock");
        r.histograms
            .entry(name.to_string())
            .or_insert_with(HistogramSnapshot::new)
            .observe(value);
    }

    /// Copies out every metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = self.registry.lock().expect("metrics lock");
        MetricsSnapshot {
            counters: r.counters.clone(),
            gauges: r.gauges.clone(),
            histograms: r.histograms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_in_sorted_order() {
        let m = Metrics::new();
        m.incr("b/second", 2);
        m.incr("a/first", 1);
        m.incr("b/second", 3);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a/first", "b/second"]);
        assert_eq!(snap.counters["b/second"], 5);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let m = Metrics::new();
        m.gauge("g", 1.0);
        m.gauge("g", -4.5);
        assert_eq!(m.snapshot().gauges["g"], -4.5);
    }

    #[test]
    fn histogram_buckets_count_and_bound_correctly() {
        let m = Metrics::new();
        // 500 ns → bucket 0 (≤ 1e3); 5e5 → bucket 2 (≤ 1e5)? No: 5e5 ≤ 1e6
        // is bucket 3. 1e12 overflows every bound.
        m.observe("h", 500.0);
        m.observe("h", 5e5);
        m.observe("h", 1e12);
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.bucket_counts[0], 1);
        assert_eq!(h.bucket_counts[3], 1);
        assert_eq!(*h.bucket_counts.last().unwrap(), 1);
        assert_eq!(h.min, 500.0);
        assert_eq!(h.max, 1e12);
        assert!((h.mean() - (500.0 + 5e5 + 1e12) / 3.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(HistogramSnapshot::new().mean(), 0.0);
    }

    #[test]
    fn exact_bound_lands_in_its_bucket() {
        let m = Metrics::new();
        m.observe("h", 1e3); // exactly the first bound → bucket 0
        assert_eq!(m.snapshot().histograms["h"].bucket_counts[0], 1);
    }
}
