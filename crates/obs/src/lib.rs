//! Structured tracing + metrics for the FEWNER stack.
//!
//! The §4.5.2 cost analysis (adaptation ≪ training, inner-step cost ~flat
//! in K) was first reproduced with one-off timing binaries; a system meant
//! to serve real traffic needs the same numbers *from the running system*.
//! This crate is that observability layer:
//!
//! * [`Tracer`] — the one handle the rest of the workspace holds. A
//!   disabled tracer ([`Tracer::disabled`]) is a `None` behind an `Option`:
//!   every call site reduces to one branch, no allocation, no dispatch, so
//!   instrumented code pays ~nothing when tracing is off.
//! * [`Span`] / events — RAII timing: a span records its duration into the
//!   trace when dropped. Timestamps come from an injectable [`Clock`]
//!   ([`ManualClock`] in tests, [`MonotonicClock`] in production), so span
//!   durations are *exactly* assertable.
//! * [`Metrics`] — counters, gauges and fixed-bucket histograms, keyed by
//!   name in sorted order so snapshots are deterministic.
//! * [`Sink`] — where trace records go: [`NoopSink`], an in-memory
//!   [`MemorySink`] for tests, or [`JsonlSink`] writing one compact JSON
//!   object per line through `fewner-util`'s durable (CRC-framed, atomic)
//!   writer.
//! * [`TraceSummary`] — reads a trace back and renders per-phase latency
//!   percentiles, counter totals and the adaptation-vs-training cost split
//!   (the `fewner trace summarize` subcommand).
//!
//! # Determinism contract
//!
//! Emission never touches an [`fewner_util::Rng`] stream and never changes
//! what the instrumented code computes: training checkpoints are bitwise
//! identical with tracing on or off, at any thread count. (The trainer
//! keeps this honest by routing traced runs through the same decomposed
//! task-gradient path the parallel and fault-injected paths already use.)

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod sink;
pub mod summary;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{HistogramSnapshot, Metrics, MetricsSnapshot};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink};
pub use summary::{HistDigest, SpanStats, StreamingDigest, TraceSummary};
pub use trace::{Span, Tracer};
