//! Injectable clocks.
//!
//! Every timestamp the tracer records comes through the [`Clock`] trait so
//! tests can drive time by hand ([`ManualClock`]) and assert exact span
//! durations, while production uses the monotonic wall clock
//! ([`MonotonicClock`]). Clocks report nanoseconds since an arbitrary
//! per-clock origin — trace timestamps are only ever compared *within* one
//! trace, never across processes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotonic nanosecond timestamps.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin. Must be monotonic
    /// non-decreasing.
    fn now_ns(&self) -> u64;
}

/// The production clock: `Instant`-based, origin at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates at u64::MAX after ~584 years of uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for deterministic tests: time only moves when the
/// test calls [`ManualClock::advance`] (or [`ManualClock::set`]).
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0 ns.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Starts the clock at `ns`.
    pub fn starting_at(ns: u64) -> ManualClock {
        ManualClock {
            now: AtomicU64::new(ns),
        }
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps to an absolute time (must not move backwards in sane tests;
    /// the clock does not enforce it).
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0, "reading must not advance time");
        c.advance(250);
        assert_eq!(c.now_ns(), 250);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
        let d = ManualClock::starting_at(42);
        assert_eq!(d.now_ns(), 42);
    }
}
