//! Integration tests over the full corpus layer: every profile × split
//! combination used by the experiments, the masking invariants, embedding
//! cluster coverage, and the difficulty knobs the table reproductions rely
//! on.

use std::collections::HashSet;

use fewner_corpus::{
    full_view, holdout_target, split_sentences, split_types, AceDomain, DatasetProfile, Genre,
};
use fewner_text::TypeId;

#[test]
fn all_experiment_splits_construct_and_are_consistent() {
    // Table 2 splits.
    for (profile, counts) in [
        (DatasetProfile::nne(), (52usize, 10usize, 15usize)),
        (DatasetProfile::fg_ner(), (163, 15, 20)),
        (DatasetProfile::genia(), (18, 8, 10)),
    ] {
        let d = profile.generate(0.02).unwrap();
        let split = split_types(&d, counts, 42).unwrap();
        assert_eq!(split.train.types.len(), counts.0, "{}", profile.name);
        assert_eq!(split.test.types.len(), counts.2, "{}", profile.name);
        let train: HashSet<TypeId> = split.train.types.iter().copied().collect();
        let test: HashSet<TypeId> = split.test.types.iter().copied().collect();
        assert!(train.is_disjoint(&test));
        // Masked sentences only carry their partition's types.
        for s in &split.test.sentences {
            for span in &s.spans {
                assert!(test.contains(&span.type_id));
            }
        }
    }
}

#[test]
fn ace_pairs_share_types_and_differ_in_style() {
    for (src, dst) in [
        (AceDomain::Bc, AceDomain::Un),
        (AceDomain::Bn, AceDomain::Cts),
        (AceDomain::Nw, AceDomain::Wl),
    ] {
        let a = DatasetProfile::ace2005(src).generate(0.05).unwrap();
        let b = DatasetProfile::ace2005(dst).generate(0.05).unwrap();
        // Intra-type: identical type inventory.
        for (x, y) in a.types.iter().zip(&b.types) {
            assert_eq!(x.name, y.name);
        }
        // Cross-domain: disjoint-enough function vocabulary.
        assert!(a.genre != b.genre);
        let split_a = split_sentences(&a, (8.0, 1.0, 1.0), 7).unwrap();
        let split_b = split_sentences(&b, (8.0, 1.0, 1.0), 7).unwrap();
        assert!(!split_a.train.is_empty());
        assert!(!split_b.test.is_empty());
    }
}

#[test]
fn cross_type_pairs_have_disjoint_inventories() {
    for (src, dst) in [
        (DatasetProfile::genia(), DatasetProfile::bionlp13cg()),
        (DatasetProfile::ontonotes(), DatasetProfile::bionlp13cg()),
        (DatasetProfile::ontonotes(), DatasetProfile::fg_ner()),
    ] {
        let a = src.generate(0.01).unwrap();
        let b = dst.generate(0.03).unwrap();
        // Type *identities* are dataset-local; their names must differ
        // (suffix signatures are drawn with different seeds).
        let names_a: HashSet<&str> = a.types.iter().map(|t| t.name.as_str()).collect();
        let names_b: HashSet<&str> = b.types.iter().map(|t| t.name.as_str()).collect();
        assert!(
            names_a.is_disjoint(&names_b),
            "{} and {} share type names",
            src.name,
            dst.name
        );
        let train = full_view(&a);
        let (val, test) = holdout_target(&b, 11).unwrap();
        assert_eq!(val.len() + test.len(), b.sentences.len());
        assert!(!train.is_empty());
    }
}

#[test]
fn genia_is_designed_harder_than_nne() {
    let nne = DatasetProfile::nne();
    let genia = DatasetProfile::genia();
    assert!(genia.gen.trigger_prob < nne.gen.trigger_prob);
    assert!(genia.gen.homonym_prob > nne.gen.homonym_prob);
    assert!(genia.gen.fresh_prob > nne.gen.fresh_prob);
}

#[test]
fn nested_generation_only_in_ace() {
    for p in [
        DatasetProfile::nne(),
        DatasetProfile::fg_ner(),
        DatasetProfile::genia(),
        DatasetProfile::ontonotes(),
        DatasetProfile::bionlp13cg(),
    ] {
        assert_eq!(p.gen.nested_prob, 0.0, "{}", p.name);
    }
    for dom in AceDomain::ALL {
        assert!(DatasetProfile::ace2005(dom).gen.nested_prob > 0.0);
    }
}

#[test]
fn cluster_maps_cover_the_vocabulary_across_merges() {
    let a = DatasetProfile::genia().generate(0.01).unwrap();
    let b = DatasetProfile::bionlp13cg().generate(0.02).unwrap();
    let merged = a.merged_clusters(&b);
    // Everything a sees is in the merge, plus b's additions.
    for k in a.clusters().keys() {
        assert!(merged.contains_key(k));
    }
    assert!(merged.len() >= a.clusters().len());
    assert!(merged.len() >= b.clusters().len());
}

#[test]
fn table1_density_targets() {
    // Mention densities drive the Table 1 mention counts; pin each
    // profile's measured density to its calibrated target ±20 %.
    for (p, target) in [
        (DatasetProfile::nne(), 4.66),
        (DatasetProfile::fg_ner(), 1.87),
        (DatasetProfile::genia(), 4.13),
        (DatasetProfile::ontonotes(), 2.47),
        (DatasetProfile::bionlp13cg(), 3.59),
    ] {
        let d = p.generate(0.02).unwrap();
        let s = d.stats();
        let density = s.mentions as f64 / s.sentences as f64;
        assert!(
            (density - target).abs() / target < 0.2,
            "{}: density {density:.2} vs target {target}",
            p.name
        );
    }
}

#[test]
fn slot_filling_extension_profile_is_well_formed() {
    let p = DatasetProfile::slot_filling();
    let d = p.generate(0.02).unwrap();
    let s = d.stats();
    assert_eq!(s.types, 14);
    let density = s.mentions as f64 / s.sentences as f64;
    assert!((1.8..2.7).contains(&density), "slot density {density}");
    // Dialogue-specific function words appear.
    let has_dialogue_word = d
        .sentences
        .iter()
        .flat_map(|s| s.tokens.iter())
        .any(|t| t == "please" || t == "book" || t == "remind");
    assert!(has_dialogue_word);
    // And the standard type-disjoint split works on it.
    let split = split_types(&d, (8, 3, 3), 42).unwrap();
    assert!(!split.train.is_empty() && !split.test.is_empty());
}

#[test]
fn genre_word_pools_drive_measurable_text_differences() {
    let bn = DatasetProfile::ace2005(AceDomain::Bn)
        .generate(0.05)
        .unwrap();
    let un = DatasetProfile::ace2005(AceDomain::Un)
        .generate(0.05)
        .unwrap();
    let tokens = |d: &fewner_corpus::Dataset| -> HashSet<String> {
        d.sentences
            .iter()
            .flat_map(|s| s.tokens.iter().cloned())
            .collect()
    };
    let (tb, tu) = (tokens(&bn), tokens(&un));
    // Usenet-specific words appear only in UN.
    assert!(tu.contains("newsgroup") || tu.contains("crosspost"));
    assert!(!tb.contains("newsgroup") && !tb.contains("crosspost"));
    // Genre overlap ordering is pinned at the pool level too.
    assert!(
        Genre::BroadcastNews.overlap(&Genre::Telephone)
            > Genre::BroadcastConversation.overlap(&Genre::Usenet)
    );
}
