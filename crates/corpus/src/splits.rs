//! Train/validation/test splits for the three adaptation experiments.
//!
//! * **Type-disjoint splits** (intra-domain cross-type, §4.2.1): the type
//!   inventory is partitioned — e.g. 52/10/15 for NNE — and each split sees
//!   only its own types. A sentence is routed to the partition owning its
//!   *first* mention's type; mentions of out-of-partition types are masked
//!   to `O` (dropped from the gold spans), the standard practice when
//!   episodic NER corpora contain entangled types.
//! * **Sentence splits** (cross-domain intra-type, §4.3.1): a plain ratio
//!   split such as ACE2005's 8/1/1; all splits share the type space.
//! * **Holdout splits** (cross-domain cross-type, §4.4.1): the target corpus
//!   is split 20 % validation / 80 % test; training data comes entirely
//!   from the source corpus.

use std::collections::HashSet;

use fewner_text::{Sentence, TypeId};
use fewner_util::{Error, Result, Rng};

use crate::generator::Dataset;

/// A view of a dataset restricted to a type partition.
#[derive(Debug, Clone)]
pub struct SplitView {
    /// Which concrete types this split may use.
    pub types: Vec<TypeId>,
    /// Sentences with out-of-partition mentions masked to `O`.
    pub sentences: Vec<Sentence>,
}

impl SplitView {
    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// True when the split holds no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }
}

/// The three type-disjoint partitions of a dataset.
#[derive(Debug, Clone)]
pub struct TypeSplit {
    /// Training partition.
    pub train: SplitView,
    /// Validation partition.
    pub val: SplitView,
    /// Test partition — its types never appear in `train`.
    pub test: SplitView,
}

/// Masks a sentence's spans to those whose type is in `keep`.
fn mask_sentence(s: &Sentence, keep: &HashSet<TypeId>) -> Sentence {
    let spans = s
        .spans
        .iter()
        .copied()
        .filter(|sp| keep.contains(&sp.type_id))
        .collect();
    Sentence {
        tokens: s.tokens.clone(),
        spans,
    }
}

/// One type partition of a split: the types it owns plus the membership set
/// used for sentence routing and masking. This is the streaming-side
/// counterpart of a [`SplitView`] — it can route sentences as they arrive
/// from a chunked corpus without a materialized [`Dataset`].
#[derive(Debug, Clone)]
pub struct TypePartition {
    /// The types this partition owns.
    pub types: Vec<TypeId>,
    keep: HashSet<TypeId>,
}

impl TypePartition {
    /// A partition over `types`.
    pub fn new(types: Vec<TypeId>) -> TypePartition {
        let keep = types.iter().copied().collect();
        TypePartition { types, keep }
    }

    /// Routes a sentence into this partition: `Some(masked)` when the
    /// sentence's *first* mention's type belongs here (out-of-partition
    /// mentions masked to `O`), `None` otherwise — the same routing rule
    /// [`split_types`] applies to materialized datasets.
    pub fn route(&self, s: &Sentence) -> Option<Sentence> {
        let first = s.spans.first()?;
        self.keep
            .contains(&first.type_id)
            .then(|| mask_sentence(s, &self.keep))
    }
}

/// Partitions a type-id inventory into disjoint train/val/test partitions
/// with the permutation drawn from `seed`. Shared by [`split_types`] and
/// the streaming samplers, so a chunked run and a materialized run of the
/// same seed agree on which types each split owns.
pub fn partition_type_ids(
    ids: Vec<TypeId>,
    counts: (usize, usize, usize),
    seed: u64,
) -> Result<(TypePartition, TypePartition, TypePartition)> {
    let (n_train, n_val, n_test) = counts;
    let total = n_train + n_val + n_test;
    if total > ids.len() {
        return Err(Error::InvalidConfig(format!(
            "type split {counts:?} needs {total} types; dataset has {}",
            ids.len()
        )));
    }
    let mut rng = Rng::new(seed);
    let mut order = ids;
    rng.shuffle(&mut order);
    Ok((
        TypePartition::new(order[..n_train].to_vec()),
        TypePartition::new(order[n_train..n_train + n_val].to_vec()),
        TypePartition::new(order[n_train + n_val..total].to_vec()),
    ))
}

/// Partitions `dataset` into type-disjoint train/val/test views.
///
/// `counts` are the per-partition type counts, e.g. `(52, 10, 15)` for NNE,
/// `(163, 15, 20)` for FG-NER, `(18, 8, 10)` for GENIA (§4.2.1). The type
/// permutation is drawn from `seed`.
pub fn split_types(
    dataset: &Dataset,
    counts: (usize, usize, usize),
    seed: u64,
) -> Result<TypeSplit> {
    let ids: Vec<TypeId> = dataset.types.iter().map(|t| t.id).collect();
    let (train_p, val_p, test_p) = partition_type_ids(ids, counts, seed)?;

    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();
    for s in &dataset.sentences {
        if let Some(m) = train_p.route(s) {
            train.push(m);
        } else if let Some(m) = val_p.route(s) {
            val.push(m);
        } else if let Some(m) = test_p.route(s) {
            test.push(m);
        }
    }
    Ok(TypeSplit {
        train: SplitView {
            types: train_p.types,
            sentences: train,
        },
        val: SplitView {
            types: val_p.types,
            sentences: val,
        },
        test: SplitView {
            types: test_p.types,
            sentences: test,
        },
    })
}

/// Ratio-based sentence split sharing the full type space (ACE's 8/1/1).
pub fn split_sentences(dataset: &Dataset, ratios: (f64, f64, f64), seed: u64) -> Result<TypeSplit> {
    let (a, b, c) = ratios;
    let total = a + b + c;
    if !(total.is_finite() && total > 0.0) || a < 0.0 || b < 0.0 || c < 0.0 {
        return Err(Error::InvalidConfig(format!("bad split ratios {ratios:?}")));
    }
    let mut rng = Rng::new(seed);
    let mut order: Vec<usize> = (0..dataset.sentences.len()).collect();
    rng.shuffle(&mut order);
    let n = order.len();
    let n_train = ((a / total) * n as f64).round() as usize;
    let n_val = ((b / total) * n as f64).round() as usize;
    let all_types: Vec<TypeId> = dataset.types.iter().map(|t| t.id).collect();
    let take = |idx: &[usize]| -> Vec<Sentence> {
        idx.iter().map(|&i| dataset.sentences[i].clone()).collect()
    };
    let (train_idx, rest) = order.split_at(n_train.min(n));
    let (val_idx, test_idx) = rest.split_at(n_val.min(rest.len()));
    Ok(TypeSplit {
        train: SplitView {
            types: all_types.clone(),
            sentences: take(train_idx),
        },
        val: SplitView {
            types: all_types.clone(),
            sentences: take(val_idx),
        },
        test: SplitView {
            types: all_types,
            sentences: take(test_idx),
        },
    })
}

/// A view over a full dataset (all types, all sentences) — the source-side
/// training view of the cross-domain experiments.
pub fn full_view(dataset: &Dataset) -> SplitView {
    SplitView {
        types: dataset.types.iter().map(|t| t.id).collect(),
        sentences: dataset.sentences.clone(),
    }
}

/// Target-corpus holdout for cross-domain cross-type adaptation: 20 %
/// validation / 80 % test, no training data (§4.4.1).
pub fn holdout_target(dataset: &Dataset, seed: u64) -> Result<(SplitView, SplitView)> {
    let split = split_sentences(dataset, (0.0, 0.2, 0.8), seed)?;
    Ok((split.val, split.test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;

    fn data() -> Dataset {
        DatasetProfile::genia().generate(0.03).unwrap()
    }

    #[test]
    fn type_split_is_disjoint_and_masked() {
        let d = data();
        let split = split_types(&d, (18, 8, 10), 42).unwrap();
        assert_eq!(split.train.types.len(), 18);
        assert_eq!(split.val.types.len(), 8);
        assert_eq!(split.test.types.len(), 10);

        let train_set: HashSet<TypeId> = split.train.types.iter().copied().collect();
        let test_set: HashSet<TypeId> = split.test.types.iter().copied().collect();
        assert!(train_set.is_disjoint(&test_set));

        for s in &split.train.sentences {
            for span in &s.spans {
                assert!(train_set.contains(&span.type_id), "leaked test type");
            }
        }
        for s in &split.test.sentences {
            for span in &s.spans {
                assert!(test_set.contains(&span.type_id));
            }
        }
        assert!(!split.train.is_empty());
        assert!(!split.test.is_empty());
    }

    #[test]
    fn type_split_rejects_oversized_request() {
        let d = data();
        assert!(split_types(&d, (30, 10, 10), 1).is_err());
    }

    #[test]
    fn type_split_is_deterministic() {
        let d = data();
        let a = split_types(&d, (18, 8, 10), 7).unwrap();
        let b = split_types(&d, (18, 8, 10), 7).unwrap();
        assert_eq!(a.test.types, b.test.types);
        assert_eq!(a.test.sentences.len(), b.test.sentences.len());
        let c = split_types(&d, (18, 8, 10), 8).unwrap();
        assert_ne!(a.test.types, c.test.types);
    }

    #[test]
    fn sentence_split_preserves_everything() {
        let d = data();
        let split = split_sentences(&d, (8.0, 1.0, 1.0), 3).unwrap();
        let total = split.train.len() + split.val.len() + split.test.len();
        assert_eq!(total, d.sentences.len());
        // 8/1/1 proportions within rounding.
        let frac = split.train.len() as f64 / total as f64;
        assert!((0.78..0.82).contains(&frac), "train fraction {frac}");
        // Types shared across splits (intra-type).
        assert_eq!(split.train.types, split.test.types);
    }

    #[test]
    fn sentence_split_rejects_bad_ratios() {
        let d = data();
        assert!(split_sentences(&d, (0.0, 0.0, 0.0), 1).is_err());
        assert!(split_sentences(&d, (-1.0, 1.0, 1.0), 1).is_err());
    }

    #[test]
    fn holdout_is_20_80() {
        let d = data();
        let (val, test) = holdout_target(&d, 5).unwrap();
        let total = val.len() + test.len();
        assert_eq!(total, d.sentences.len());
        let frac = test.len() as f64 / total as f64;
        assert!((0.78..0.82).contains(&frac), "test fraction {frac}");
    }
}
