//! `fewner-corpus` — deterministic synthetic corpora standing in for the
//! paper's six licensed datasets (NNE, FG-NER, GENIA, ACE2005, OntoNotes,
//! BioNLP13CG).
//!
//! See `DESIGN.md` §1 for the substitution argument. In short: the paper's
//! adaptation experiments measure transfer between label sets and domains,
//! which depends on the *statistical structure* of the corpora — shared
//! character morphology and lexical clusters across related types, context
//! triggers, domain-specific function vocabulary, surface ambiguity — not on
//! the identity of the underlying news stories or abstracts. Each module
//! contributes one layer of that structure:
//!
//! * [`families`] — coarse semantic families with syllable/suffix/trigger
//!   inventories (the transferable signal).
//! * [`gazetteer`] — concrete [`gazetteer::TypeSpec`]s: per-type suffix,
//!   gazetteer and trigger words.
//! * [`genre`] — function-word pools whose overlaps encode the paper's
//!   domain distances (BN↔CTS close, BC↔UN far).
//! * [`generator`] — the stochastic sentence grammar and dataset assembly,
//!   including ACE-style nested mentions flattened to the innermost span.
//! * [`profiles`] — Table-1-matched dataset profiles.
//! * [`splits`] — type-disjoint, ratio and holdout splits for the three
//!   experiments.

#![warn(missing_docs)]

pub mod families;
pub mod gazetteer;
pub mod generator;
pub mod genre;
pub mod profiles;
pub mod splits;
pub mod stream;

pub use families::Family;
pub use gazetteer::TypeSpec;
pub use generator::{Dataset, DatasetStats, GenConfig};
pub use genre::Genre;
pub use profiles::{AceDomain, DatasetProfile};
pub use splits::{
    full_view, holdout_target, partition_type_ids, split_sentences, split_types, SplitView,
    TypePartition, TypeSplit,
};
pub use stream::{CorpusChunk, CorpusSource, StreamCursor, StreamingCorpus};
