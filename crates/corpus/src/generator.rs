//! Sentence and dataset synthesis.
//!
//! A sentence is produced by a small stochastic grammar:
//!
//! ```text
//! sentence   := opener (trigger? entity connector)+ "."
//! opener     := 1–3 genre function words
//! trigger    := a type- or family-level trigger word (probability knob)
//! entity     := a surface form from the type's gazetteer, a *fresh* name
//!               (OOV knob), or a *homonym* from a sibling type (ambiguity
//!               knob — forces the model to use context)
//! connector  := 1–3 genre function words
//! ```
//!
//! The knobs — mention density, trigger probability, homonym rate, OOV rate
//! — are what the dataset profiles tune to reproduce the difficulty ordering
//! in the paper's Tables 2–4 (e.g. GENIA's sparser triggers and higher
//! ambiguity make the medical intra-domain setting the hardest).

use std::collections::HashMap;
use std::sync::OnceLock;

use fewner_text::{EntitySpan, Sentence, TypeId};
use fewner_util::{Error, Result, Rng};

use crate::gazetteer::TypeSpec;
use crate::genre::Genre;
use crate::stream::StreamingCorpus;

/// Difficulty and density knobs for sentence generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Surface style.
    pub genre: Genre,
    /// Mean entity mentions per sentence (truncated to `1..=6`).
    pub mention_rate: f64,
    /// Probability that an entity is preceded by a trigger word.
    pub trigger_prob: f64,
    /// Given a trigger, probability it is the generic family trigger rather
    /// than the type-specific one.
    pub family_trigger_prob: f64,
    /// Probability an entity's surface form is borrowed from a sibling type
    /// of the same family (gold label stays the generating type).
    pub homonym_prob: f64,
    /// Probability of generating a fresh out-of-gazetteer name.
    pub fresh_prob: f64,
    /// Probability a mention is wrapped in a *nested* outer mention
    /// (ACE2005-style); flattening keeps the innermost (§4.3.1).
    pub nested_prob: f64,
}

impl GenConfig {
    /// Reasonable newswire defaults; profiles override per dataset.
    pub fn newswire() -> GenConfig {
        GenConfig {
            genre: Genre::Newswire,
            mention_rate: 2.5,
            trigger_prob: 0.7,
            family_trigger_prob: 0.3,
            homonym_prob: 0.1,
            fresh_prob: 0.15,
            nested_prob: 0.0,
        }
    }
}

/// A generated corpus with the metadata the rest of the system needs.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name, e.g. `NNE`.
    pub name: String,
    /// Surface genre.
    pub genre: Genre,
    /// The entity-type inventory.
    pub types: Vec<TypeSpec>,
    /// All generated sentences.
    pub sentences: Vec<Sentence>,
    /// Word → embedding-cluster map accumulated during generation.
    clusters: HashMap<String, u64>,
    /// Lazily computed sorted view of `clusters` (see [`Dataset::sorted_clusters`]).
    sorted: OnceLock<Vec<(String, u64)>>,
}

/// Table-1-style statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Number of entity types.
    pub types: usize,
    /// Number of sentences.
    pub sentences: usize,
    /// Number of entity mentions.
    pub mentions: usize,
}

impl Dataset {
    /// Counts types / sentences / mentions (paper Table 1).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            types: self.types.len(),
            sentences: self.sentences.len(),
            mentions: self.sentences.iter().map(|s| s.spans.len()).sum(),
        }
    }

    /// The semantic cluster recorded for a word during generation, if any.
    pub fn cluster_of(&self, word: &str) -> Option<u64> {
        self.clusters
            .get(word)
            .copied()
            .or_else(|| self.clusters.get(&word.to_lowercase()).copied())
    }

    /// Merges another dataset's cluster map (for experiments whose
    /// vocabulary spans source and target corpora).
    pub fn merged_clusters(&self, other: &Dataset) -> HashMap<String, u64> {
        let mut out = self.clusters.clone();
        for (k, v) in &other.clusters {
            out.entry(k.clone()).or_insert(*v);
        }
        out
    }

    /// Direct access to the cluster map.
    pub fn clusters(&self) -> &HashMap<String, u64> {
        &self.clusters
    }

    /// Cluster entries in sorted key order — the deterministic merge order
    /// token encoding needs. Computed once per dataset and cached: the
    /// encoder previously re-collected and re-sorted the full map on every
    /// build, a fresh allocation per call on the serving path.
    pub fn sorted_clusters(&self) -> &[(String, u64)] {
        self.sorted.get_or_init(|| {
            let mut pairs: Vec<(String, u64)> =
                self.clusters.iter().map(|(k, v)| (k.clone(), *v)).collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            pairs
        })
    }

    /// Assembles a dataset from already-generated parts (the streaming
    /// materialization path).
    pub(crate) fn assemble(
        name: String,
        genre: Genre,
        types: Vec<TypeSpec>,
        sentences: Vec<Sentence>,
        clusters: HashMap<String, u64>,
    ) -> Dataset {
        Dataset {
            name,
            genre,
            types,
            sentences,
            clusters,
            sorted: OnceLock::new(),
        }
    }

    /// Looks up a type spec by id.
    pub fn type_spec(&self, id: TypeId) -> &TypeSpec {
        &self.types[id.0 as usize]
    }

    /// Human-readable name of a type.
    pub fn type_name(&self, id: TypeId) -> &str {
        &self.types[id.0 as usize].name
    }
}

/// Mention count with mean ≈ `rate`, clamped to `1..=6`.
///
/// A Bernoulli-rounded base plus symmetric ±1 jitter keeps the expected
/// value at `rate` (up to clamping) while still varying sentence shapes.
fn sample_mention_count(rate: f64, rng: &mut Rng) -> usize {
    let base = rate.floor();
    let mut m = base as i64 + i64::from(rng.chance(rate - base));
    if rng.chance(0.25) {
        m += 1;
    }
    if rng.chance(0.25) {
        m -= 1;
    }
    m.clamp(1, 6) as usize
}

/// Zipf-ish weights so some types are rarer than others.
fn type_weights(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 / (1.0 + i as f64).powf(0.6)).collect()
}

struct SentenceBuilder<'a> {
    tokens: Vec<String>,
    spans: Vec<EntitySpan>,
    clusters: &'a mut HashMap<String, u64>,
}

impl SentenceBuilder<'_> {
    fn push_word(&mut self, word: &str, cluster: Option<u64>) {
        if let Some(c) = cluster {
            self.clusters.entry(word.to_string()).or_insert(c);
        }
        self.tokens.push(word.to_string());
    }

    fn push_filler(
        &mut self,
        pool: &[&'static str],
        lo: usize,
        hi: usize,
        genre: Genre,
        rng: &mut Rng,
    ) {
        let n = rng.range(lo, hi + 1);
        for _ in 0..n {
            let w = *rng.choose(pool);
            self.push_word(w, Some(genre.cluster()));
        }
    }
}

/// Generates one sentence over `types_in_scope` (indices into `all_types`).
///
/// `all_types` provides sibling gazetteers for homonym sampling and outer
/// types for nesting. Nested mentions are *flattened to the innermost span*
/// before the sentence is returned, exactly as the paper preprocesses
/// ACE2005; the outer span is recorded and discarded.
pub fn generate_sentence(
    all_types: &[TypeSpec],
    types_in_scope: &[usize],
    cfg: &GenConfig,
    clusters: &mut HashMap<String, u64>,
    rng: &mut Rng,
) -> Result<Sentence> {
    if types_in_scope.is_empty() {
        return Err(Error::InvalidConfig("no types in scope".into()));
    }
    let pool = cfg.genre.words();
    let weights: Vec<f64> = {
        let all = type_weights(all_types.len());
        types_in_scope.iter().map(|&i| all[i]).collect()
    };

    let mut b = SentenceBuilder {
        tokens: Vec::with_capacity(24),
        spans: Vec::new(),
        clusters,
    };
    b.push_filler(&pool, 1, 3, cfg.genre, rng);

    let mentions = sample_mention_count(cfg.mention_rate, rng);
    for _ in 0..mentions {
        let spec = &all_types[types_in_scope[rng.weighted(&weights)]];

        // Ambiguity: borrow a sibling's surface but keep this gold type.
        let homonym = cfg.homonym_prob > 0.0 && rng.chance(cfg.homonym_prob);
        let surface_spec = if homonym {
            let siblings: Vec<&TypeSpec> = all_types
                .iter()
                .filter(|t| t.family == spec.family && t.id != spec.id)
                .collect();
            if siblings.is_empty() {
                spec
            } else {
                *rng.choose(&siblings)
            }
        } else {
            spec
        };

        // Context trigger: forced for homonyms (context must disambiguate).
        let effective_trigger = if homonym { 0.95 } else { cfg.trigger_prob };
        if rng.chance(effective_trigger) {
            if rng.chance(cfg.family_trigger_prob) {
                let t = *rng.choose(spec.family.triggers());
                b.push_word(t, Some(spec.family.trigger_cluster()));
            } else {
                let t = rng.choose(&spec.triggers).clone();
                b.push_word(&t, Some(spec.family.trigger_cluster()));
            }
        }

        // Optional nesting: an outer wrapper token before the inner mention,
        // recorded as an outer span of a different type, then flattened.
        let nested = cfg.nested_prob > 0.0 && rng.chance(cfg.nested_prob);
        let outer_start = b.tokens.len();
        if nested {
            // Outer "head" word, e.g. "[... region]" around "[Persian Gulf]".
            let outer_spec = &all_types[types_in_scope[rng.weighted(&weights)]];
            let extra = rng.choose(outer_spec.family.triggers());
            b.push_word(extra, Some(outer_spec.family.trigger_cluster()));
        }

        let start = b.tokens.len();
        let name = surface_spec.sample_name(cfg.fresh_prob, rng);
        for tok in &name {
            b.push_word(tok, Some(surface_spec.family.cluster()));
        }
        let end = b.tokens.len();
        let inner = EntitySpan::new(start, end, spec.id)?;

        if nested {
            // Inner-most flattening: the outer span (outer_start..end) is
            // dropped on the floor; only the inner span survives.
            let _outer = EntitySpan::new(outer_start, end, spec.id)?;
        }
        b.spans.push(inner);

        b.push_filler(&pool, 1, 3, cfg.genre, rng);
    }
    b.push_word(".", None);

    Sentence::new(b.tokens, b.spans)
}

/// Generates a full dataset: `n_sentences` sentences over `types`.
///
/// Forwarding shim over the streaming pipeline: one whole-corpus chunk,
/// materialized. Byte-identical to the historical monolithic loop — the
/// chunked generator threads the same single RNG through the same sentence
/// sequence (see `crate::stream` for the determinism contract).
pub fn generate_dataset(
    name: &str,
    types: Vec<TypeSpec>,
    n_sentences: usize,
    cfg: &GenConfig,
    seed: u64,
) -> Result<Dataset> {
    StreamingCorpus::new(name, types, n_sentences, cfg, seed, n_sentences.max(1))?.materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::Family;
    use crate::gazetteer::build_inventory;

    fn tiny() -> Dataset {
        let types = build_inventory(6, &Family::NEWSWIRE, 15, 1);
        generate_dataset("tiny", types, 200, &GenConfig::newswire(), 2).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.sentences, b.sentences);
    }

    #[test]
    fn every_sentence_is_well_formed() {
        let d = tiny();
        for s in &d.sentences {
            assert!(!s.is_empty());
            assert!(!s.spans.is_empty(), "grammar always emits ≥1 mention");
            for span in &s.spans {
                assert!(span.end <= s.len());
                assert!((span.type_id.0 as usize) < d.types.len());
            }
            assert_eq!(s.tokens.last().map(String::as_str), Some("."));
        }
    }

    #[test]
    fn mention_rate_is_respected() {
        let types = build_inventory(6, &Family::NEWSWIRE, 15, 1);
        let dense_cfg = GenConfig {
            mention_rate: 4.6,
            ..GenConfig::newswire()
        };
        let dense = generate_dataset("d", types.clone(), 800, &dense_cfg, 3).unwrap();
        let sparse_cfg = GenConfig {
            mention_rate: 1.6,
            ..GenConfig::newswire()
        };
        let sparse = generate_dataset("s", types, 800, &sparse_cfg, 3).unwrap();
        let dd = dense.stats().mentions as f64 / dense.stats().sentences as f64;
        let ss = sparse.stats().mentions as f64 / sparse.stats().sentences as f64;
        assert!(dd > 3.4, "dense density {dd}");
        assert!(ss < 2.2, "sparse density {ss}");
    }

    #[test]
    fn clusters_cover_entity_and_function_words() {
        let d = tiny();
        let mut clustered = 0usize;
        let mut total = 0usize;
        for s in &d.sentences {
            for t in &s.tokens {
                total += 1;
                if d.cluster_of(t).is_some() {
                    clustered += 1;
                }
            }
        }
        let frac = clustered as f64 / total as f64;
        assert!(frac > 0.9, "cluster coverage {frac}");
    }

    #[test]
    fn homonyms_borrow_sibling_surfaces() {
        let types = build_inventory(8, &[Family::Person], 10, 5);
        let cfg = GenConfig {
            homonym_prob: 1.0,
            fresh_prob: 0.0,
            ..GenConfig::newswire()
        };
        let d = generate_dataset("h", types, 300, &cfg, 9).unwrap();
        // With homonym_prob 1 and 8 sibling types, many mentions must use a
        // surface that is absent from their own gazetteer.
        let mut borrowed = 0usize;
        let mut total = 0usize;
        for s in &d.sentences {
            for span in &s.spans {
                total += 1;
                let own = &d.types[span.type_id.0 as usize].gazetteer;
                let surface: Vec<String> = s.tokens[span.start..span.end].to_vec();
                if !own.contains(&surface) {
                    borrowed += 1;
                }
            }
        }
        assert!(
            borrowed as f64 / total as f64 > 0.7,
            "borrowed {borrowed}/{total}"
        );
    }

    #[test]
    fn nested_generation_flattens_to_innermost() {
        let types = build_inventory(6, &Family::NEWSWIRE, 10, 7);
        let cfg = GenConfig {
            nested_prob: 1.0,
            ..GenConfig::newswire()
        };
        let d = generate_dataset("n", types, 100, &cfg, 11).unwrap();
        // All sentences remain flat (validated by Sentence::new) and spans
        // never include the wrapper token (entity tokens never come from
        // trigger pools — surface names are multi-char generated words).
        for s in &d.sentences {
            for pair in s.spans.windows(2) {
                assert!(!pair[0].overlaps(&pair[1]));
            }
        }
    }

    #[test]
    fn empty_scope_is_an_error() {
        let types = build_inventory(2, &[Family::Person], 5, 1);
        let mut clusters = HashMap::new();
        let mut rng = Rng::new(1);
        assert!(
            generate_sentence(&types, &[], &GenConfig::newswire(), &mut clusters, &mut rng)
                .is_err()
        );
    }
}
