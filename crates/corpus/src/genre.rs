//! Surface-realisation genres.
//!
//! Domain shift in the paper's cross-domain experiments (§4.3) is a shift in
//! *how* sentences are written around the same or different entity types.
//! Each genre carries its own function-word pool; the pools deliberately
//! overlap to different degrees so that the paper's observed difficulty
//! ordering is reproducible: Broadcast News and Conversational Telephone
//! Speech share most of their vocabulary (BN → CTS is the easiest transfer),
//! while Broadcast Conversations and Usenet share almost nothing beyond the
//! core closed-class words (BC → UN is the hardest).

/// A writing style / source domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Genre {
    /// Newswire (NNE, FG-NER, ACE `NW`).
    Newswire,
    /// Broadcast news (ACE `BN`).
    BroadcastNews,
    /// Broadcast conversations (ACE `BC`).
    BroadcastConversation,
    /// Conversational telephone speech (ACE `CTS`).
    Telephone,
    /// Usenet newsgroups (ACE `UN`).
    Usenet,
    /// Weblogs (ACE `WL`).
    Weblog,
    /// Biomedical abstracts (GENIA, BioNLP13CG).
    Medical,
    /// Task-oriented dialogue utterances (the slot-filling extension the
    /// paper's discussion proposes, §5).
    Dialogue,
    /// A blend of written genres (OntoNotes "various").
    Mixed,
}

/// Closed-class words shared by every genre.
const CORE: &[&str] = &[
    "the", "a", "of", "to", "and", "was", "is", "for", "on", "that", "with", "has", "have", "been",
    "as", "at", "by", "from", "it", "in",
];

const NEWS: &[&str] = &[
    "reported",
    "officials",
    "according",
    "statement",
    "announced",
    "sources",
    "government",
    "yesterday",
    "crisis",
    "economy",
    "policy",
    "markets",
    "spokesman",
    "confirmed",
    "analysts",
    "elections",
];

const CONVERSATION: &[&str] = &[
    "yeah",
    "well",
    "know",
    "think",
    "really",
    "gonna",
    "right",
    "okay",
    "mean",
    "guess",
    "stuff",
    "kinda",
    "like",
    "anyway",
    "actually",
    "basically",
];

const STUDIO: &[&str] = &[
    "guest",
    "debate",
    "audience",
    "tonight",
    "caller",
    "show",
    "segment",
    "panel",
    "discussion",
    "host",
    "viewers",
    "live",
];

const INTERNET: &[&str] = &[
    "thread",
    "posted",
    "lol",
    "flamewar",
    "newsgroup",
    "spam",
    "forum",
    "reply",
    "imho",
    "troll",
    "crosspost",
    "archive",
    "usenet",
    "plonk",
    "lurker",
    "netiquette",
];

const BLOG: &[&str] = &[
    "blog",
    "post",
    "readers",
    "comments",
    "personally",
    "update",
    "linked",
    "via",
    "subscribe",
    "honestly",
    "rant",
    "bookmarked",
];

const DIALOGUE: &[&str] = &[
    "please", "book", "play", "find", "show", "me", "want", "need", "set", "add", "remind", "call",
    "order", "search", "nearest", "tonight", "could", "you",
];

const MEDICAL: &[&str] = &[
    "patients",
    "study",
    "analysis",
    "results",
    "observed",
    "assay",
    "vitro",
    "clinical",
    "levels",
    "cases",
    "significant",
    "induced",
    "expression",
    "samples",
    "cohort",
    "baseline",
];

impl Genre {
    /// The genre's full function-word pool (core + genre-specific).
    pub fn words(&self) -> Vec<&'static str> {
        let mut pool: Vec<&'static str> = CORE.to_vec();
        match self {
            Genre::Newswire => pool.extend_from_slice(NEWS),
            // BN anchors read news copy but speak it: mostly news vocabulary
            // with a conversational sliver — close to both NW and CTS.
            Genre::BroadcastNews => {
                pool.extend_from_slice(NEWS);
                pool.extend_from_slice(&CONVERSATION[..8]);
            }
            // CTS is conversational with a sliver of news talk — close to BN.
            Genre::Telephone => {
                pool.extend_from_slice(CONVERSATION);
                pool.extend_from_slice(&NEWS[..4]);
            }
            // BC is studio conversation: conversational + studio jargon,
            // no internet vocabulary at all — far from UN.
            Genre::BroadcastConversation => {
                pool.extend_from_slice(CONVERSATION);
                pool.extend_from_slice(STUDIO);
            }
            Genre::Usenet => {
                pool.extend_from_slice(INTERNET);
                pool.extend_from_slice(&BLOG[..4]);
            }
            Genre::Weblog => {
                pool.extend_from_slice(BLOG);
                pool.extend_from_slice(&NEWS[..6]);
                pool.extend_from_slice(&CONVERSATION[..4]);
            }
            Genre::Medical => pool.extend_from_slice(MEDICAL),
            Genre::Dialogue => pool.extend_from_slice(DIALOGUE),
            Genre::Mixed => {
                pool.extend_from_slice(&NEWS[..8]);
                pool.extend_from_slice(&CONVERSATION[..6]);
                pool.extend_from_slice(&BLOG[..6]);
            }
        }
        pool
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Genre::Newswire => "Newswire",
            Genre::BroadcastNews => "BroadcastNews",
            Genre::BroadcastConversation => "BroadcastConversation",
            Genre::Telephone => "Telephone",
            Genre::Usenet => "Usenet",
            Genre::Weblog => "Weblog",
            Genre::Medical => "Medical",
            Genre::Dialogue => "Dialogue",
            Genre::Mixed => "Mixed",
        }
    }

    /// Embedding cluster for the genre's function words.
    pub fn cluster(&self) -> u64 {
        fewner_text::embed::stable_hash(self.name()) ^ 0x6e72_6547
    }

    /// Jaccard overlap of two genres' word pools (used by tests to pin the
    /// designed domain-distance ordering).
    pub fn overlap(&self, other: &Genre) -> f64 {
        let a: std::collections::HashSet<&str> = self.words().into_iter().collect();
        let b: std::collections::HashSet<&str> = other.words().into_iter().collect();
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Genre; 9] = [
        Genre::Newswire,
        Genre::BroadcastNews,
        Genre::BroadcastConversation,
        Genre::Telephone,
        Genre::Usenet,
        Genre::Weblog,
        Genre::Medical,
        Genre::Dialogue,
        Genre::Mixed,
    ];

    #[test]
    fn every_genre_has_core_plus_specific_words() {
        for g in ALL {
            let words = g.words();
            assert!(words.len() >= CORE.len() + 10, "{g:?} pool too small");
            assert!(words.contains(&"the"));
        }
    }

    #[test]
    fn designed_domain_distances_match_the_paper() {
        // Paper §4.3.2: BN→CTS easiest, BC→UN hardest of the three
        // adaptations (NW→WL in between).
        let bn_cts = Genre::BroadcastNews.overlap(&Genre::Telephone);
        let nw_wl = Genre::Newswire.overlap(&Genre::Weblog);
        let bc_un = Genre::BroadcastConversation.overlap(&Genre::Usenet);
        assert!(
            bn_cts > nw_wl && nw_wl > bc_un,
            "overlap ordering violated: BN-CTS {bn_cts:.3}, NW-WL {nw_wl:.3}, BC-UN {bc_un:.3}"
        );
    }

    #[test]
    fn medical_is_far_from_newswire() {
        let med_news = Genre::Medical.overlap(&Genre::Newswire);
        assert!(med_news < 0.5, "medical/news overlap {med_news}");
    }

    #[test]
    fn clusters_are_distinct() {
        let mut ids: Vec<u64> = ALL.iter().map(Genre::cluster).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
    }
}
