//! Streaming corpus generation — chunked, deterministic, bounded-memory.
//!
//! [`generate_dataset`](crate::generator::generate_dataset) materializes
//! every sentence before the first episode is drawn, which caps workload
//! scale at available memory. This module refactors generation behind the
//! [`CorpusSource`] trait: a corpus is a sequence of fixed-size *chunks*,
//! each reproducible in isolation from the generator RNG state at its
//! boundary. [`StreamingCorpus`] is the chunked implementation;
//! a materialized [`Dataset`] is the degenerate single-chunk one.
//!
//! # Determinism contract
//!
//! Chunking must not change a single byte of the generated corpus, for any
//! chunk size. Two properties of the sentence grammar make this possible:
//!
//! 1. **The RNG is the only sequential dependency.** `generate_sentence`
//!    threads one [`Rng`] through the whole corpus; the word→cluster map it
//!    also receives is *write-only* during generation (`entry().or_insert`,
//!    never read), so cluster state cannot influence sentence content.
//!    Caching the RNG state (four `u64`s) at each chunk boundary therefore
//!    suffices to regenerate any chunk independently and byte-identically.
//! 2. **First-wins cluster merging is associative over chunk order.** Each
//!    chunk collects its *own* fresh cluster map; folding the per-chunk maps
//!    in chunk order with `or_insert` reproduces exactly the map a
//!    monolithic run builds, because a word's final cluster is its value in
//!    the earliest chunk that mentions it.
//!
//! These two facts are pinned by `byte_identity` proptests in this module's
//! test suite across chunk sizes {1, 7, 64}.

use std::collections::HashMap;

use fewner_text::Sentence;
use fewner_util::{Error, FromJson, Json, Result, Rng, ToJson};

use crate::gazetteer::TypeSpec;
use crate::generator::{generate_sentence, Dataset, GenConfig};
use crate::genre::Genre;

/// One contiguous run of generated sentences.
#[derive(Debug, Clone)]
pub struct CorpusChunk {
    /// Chunk index within the stream.
    pub index: usize,
    /// Global index of the first sentence in this chunk.
    pub start: usize,
    /// The chunk's sentences, byte-identical to the same range of a
    /// monolithic [`generate_dataset`](crate::generator::generate_dataset)
    /// run.
    pub sentences: Vec<Sentence>,
    /// Word→cluster entries first observed while generating *this chunk*.
    /// Folding chunk maps in chunk order with first-wins semantics
    /// reproduces the monolithic cluster map.
    pub clusters: HashMap<String, u64>,
}

/// A deterministic sentence stream read in fixed-size chunks.
///
/// Implementations must be *seekable*: `read_chunk(i)` returns the same
/// bytes no matter which chunks were read before, so samplers can resume
/// from a snapshot cursor and sharded replicas stay in lockstep.
pub trait CorpusSource {
    /// Corpus name, e.g. `GENIA`.
    fn name(&self) -> &str;
    /// Surface genre.
    fn genre(&self) -> Genre;
    /// The entity-type inventory (fully known up front; only sentences
    /// stream).
    fn types(&self) -> &[TypeSpec];
    /// Total sentences in one pass of the stream.
    fn total_sentences(&self) -> usize;
    /// Sentences per chunk (the final chunk may be short).
    fn chunk_size(&self) -> usize;
    /// Number of chunks in one pass.
    fn num_chunks(&self) -> usize {
        let (n, c) = (self.total_sentences(), self.chunk_size());
        n.div_ceil(c.max(1))
    }
    /// Generates (or fetches) chunk `index`. Out-of-range indices are an
    /// error.
    fn read_chunk(&mut self, index: usize) -> Result<CorpusChunk>;
}

/// A materialized dataset is the degenerate stream: one chunk holding
/// everything.
impl CorpusSource for Dataset {
    fn name(&self) -> &str {
        &self.name
    }
    fn genre(&self) -> Genre {
        self.genre
    }
    fn types(&self) -> &[TypeSpec] {
        &self.types
    }
    fn total_sentences(&self) -> usize {
        self.sentences.len()
    }
    fn chunk_size(&self) -> usize {
        self.sentences.len().max(1)
    }
    fn read_chunk(&mut self, index: usize) -> Result<CorpusChunk> {
        if index != 0 {
            return Err(Error::InvalidConfig(format!(
                "materialized dataset has one chunk; asked for {index}"
            )));
        }
        Ok(CorpusChunk {
            index: 0,
            start: 0,
            sentences: self.sentences.clone(),
            clusters: self.clusters().clone(),
        })
    }
}

/// Chunked lazy corpus generation with per-boundary RNG state caching.
///
/// Seeking to chunk `i` restores the generator RNG from the nearest cached
/// boundary at or before `i` and replays forward (sentence text is cheap to
/// synthesize; cluster writes during replay are discarded). Boundary states
/// are four `u64`s each, so even a million-sentence corpus at the default
/// chunk size keeps only a few kilobytes of seek state resident.
#[derive(Debug, Clone)]
pub struct StreamingCorpus {
    name: String,
    cfg: GenConfig,
    types: Vec<TypeSpec>,
    scope: Vec<usize>,
    n_sentences: usize,
    chunk_size: usize,
    /// `boundaries[i]` = RNG state at the start of chunk `i`, once known.
    boundaries: Vec<Option<[u64; 4]>>,
    /// Chunks generated so far (including replays), for observability.
    chunks_generated: u64,
}

impl StreamingCorpus {
    /// A chunked stream of `n_sentences` sentences over `types`, seeded
    /// exactly like [`generate_dataset`](crate::generator::generate_dataset)
    /// with the same `seed`.
    pub fn new(
        name: &str,
        types: Vec<TypeSpec>,
        n_sentences: usize,
        cfg: &GenConfig,
        seed: u64,
        chunk_size: usize,
    ) -> Result<StreamingCorpus> {
        if types.is_empty() {
            return Err(Error::InvalidConfig("no types in scope".into()));
        }
        if chunk_size == 0 {
            return Err(Error::InvalidConfig("chunk size must be positive".into()));
        }
        let scope: Vec<usize> = (0..types.len()).collect();
        let n_chunks = n_sentences.div_ceil(chunk_size).max(1);
        let mut boundaries = vec![None; n_chunks + 1];
        boundaries[0] = Some(Rng::new(seed).state());
        Ok(StreamingCorpus {
            name: name.to_string(),
            cfg: *cfg,
            types,
            scope,
            n_sentences,
            chunk_size,
            boundaries,
            chunks_generated: 0,
        })
    }

    /// Chunks generated so far, replays included (monotonic; feeds the
    /// `corpus/chunks_generated` trace counter).
    pub fn chunks_generated(&self) -> u64 {
        self.chunks_generated
    }

    /// Generates chunk `index` from the RNG state `rng`, advancing it past
    /// the chunk. The cluster map is fresh per chunk (see the module-level
    /// determinism contract).
    fn generate_chunk(&mut self, index: usize, rng: &mut Rng) -> Result<CorpusChunk> {
        let start = index * self.chunk_size;
        let len = self.chunk_size.min(self.n_sentences - start);
        let mut clusters = HashMap::new();
        let mut sentences = Vec::with_capacity(len);
        for _ in 0..len {
            sentences.push(generate_sentence(
                &self.types,
                &self.scope,
                &self.cfg,
                &mut clusters,
                rng,
            )?);
        }
        self.chunks_generated += 1;
        Ok(CorpusChunk {
            index,
            start,
            sentences,
            clusters,
        })
    }

    /// The generator RNG positioned at the start of chunk `index`, replaying
    /// forward from the nearest known boundary and caching the boundaries
    /// it crosses.
    fn rng_at(&mut self, index: usize) -> Result<Rng> {
        let known = (0..=index)
            .rev()
            .find(|&i| self.boundaries[i].is_some())
            .expect("boundary 0 is always known");
        let mut rng = Rng::from_state(self.boundaries[known].expect("checked above"));
        for i in known..index {
            // Replay: sentence bytes and cluster writes are discarded; only
            // the RNG advance matters.
            self.generate_chunk(i, &mut rng)?;
            self.boundaries[i + 1] = Some(rng.state());
        }
        Ok(rng)
    }
}

impl CorpusSource for StreamingCorpus {
    fn name(&self) -> &str {
        &self.name
    }
    fn genre(&self) -> Genre {
        self.cfg.genre
    }
    fn types(&self) -> &[TypeSpec] {
        &self.types
    }
    fn total_sentences(&self) -> usize {
        self.n_sentences
    }
    fn chunk_size(&self) -> usize {
        self.chunk_size
    }
    fn read_chunk(&mut self, index: usize) -> Result<CorpusChunk> {
        if index >= self.num_chunks() {
            return Err(Error::InvalidConfig(format!(
                "chunk {index} out of range; stream has {}",
                self.num_chunks()
            )));
        }
        let mut rng = self.rng_at(index)?;
        let chunk = self.generate_chunk(index, &mut rng)?;
        self.boundaries[index + 1] = Some(rng.state());
        Ok(chunk)
    }
}

impl StreamingCorpus {
    /// Materializes the whole stream into a [`Dataset`], byte-identical to
    /// a monolithic [`generate_dataset`](crate::generator::generate_dataset)
    /// run with the same seed regardless of chunk size.
    pub fn materialize(mut self) -> Result<Dataset> {
        let mut sentences = Vec::with_capacity(self.n_sentences);
        let mut clusters: HashMap<String, u64> = HashMap::new();
        for i in 0..self.num_chunks() {
            if self.n_sentences == 0 {
                break;
            }
            let chunk = self.read_chunk(i)?;
            sentences.extend(chunk.sentences);
            for (k, v) in chunk.clusters {
                clusters.entry(k).or_insert(v);
            }
        }
        Ok(Dataset::assemble(
            self.name,
            self.cfg.genre,
            self.types,
            sentences,
            clusters,
        ))
    }
}

/// A resumable position in a corpus stream: the number of raw sentences a
/// consumer has drawn, exposed as chunk index + intra-chunk position so the
/// snapshot names the exact generator chunk to seek to.
///
/// Consumption is monotonic — streams loop over the corpus for multi-epoch
/// runs, so `chunk` keeps counting past `num_chunks` and the generator maps
/// it back modulo the corpus length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamCursor {
    /// Chunk index (monotonic across epochs).
    pub chunk: u64,
    /// Position within the chunk, `0 <= pos < chunk_size`.
    pub pos: u64,
}

impl StreamCursor {
    /// The cursor for `consumed` raw sentences at `chunk_size`.
    pub fn at(consumed: u64, chunk_size: usize) -> StreamCursor {
        let c = (chunk_size as u64).max(1);
        StreamCursor {
            chunk: consumed / c,
            pos: consumed % c,
        }
    }

    /// Total raw sentences consumed at `chunk_size`.
    pub fn consumed(&self, chunk_size: usize) -> u64 {
        self.chunk * (chunk_size as u64).max(1) + self.pos
    }
}

impl ToJson for StreamCursor {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("chunk".to_string(), Json::Num(self.chunk as f64)),
            ("pos".to_string(), Json::Num(self.pos as f64)),
        ])
    }
}

impl FromJson for StreamCursor {
    fn from_json(json: &Json) -> Result<StreamCursor> {
        Ok(StreamCursor {
            chunk: json.field("chunk")?.as_u64()?,
            pos: json.field("pos")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::Family;
    use crate::gazetteer::build_inventory;
    use crate::generator::generate_dataset;

    fn inventory() -> Vec<TypeSpec> {
        build_inventory(6, &Family::NEWSWIRE, 15, 1)
    }

    fn monolithic(n: usize) -> Dataset {
        generate_dataset("s", inventory(), n, &GenConfig::newswire(), 7).unwrap()
    }

    #[test]
    fn chunked_stream_matches_monolithic_for_every_chunk_size() {
        let whole = monolithic(97);
        for chunk in [1usize, 7, 64, 97, 200] {
            let stream =
                StreamingCorpus::new("s", inventory(), 97, &GenConfig::newswire(), 7, chunk)
                    .unwrap();
            let d = stream.materialize().unwrap();
            assert_eq!(d.sentences, whole.sentences, "chunk size {chunk}");
            assert_eq!(d.clusters(), whole.clusters(), "chunk size {chunk}");
        }
    }

    #[test]
    fn chunks_are_seekable_in_any_order() {
        let whole = monolithic(50);
        let mut stream =
            StreamingCorpus::new("s", inventory(), 50, &GenConfig::newswire(), 7, 8).unwrap();
        // Read out of order, with repeats.
        for index in [4usize, 1, 6, 1, 0, 5, 2, 3, 6] {
            let chunk = stream.read_chunk(index).unwrap();
            assert_eq!(chunk.start, index * 8);
            let end = (chunk.start + chunk.sentences.len()).min(50);
            assert_eq!(chunk.sentences.len(), end - chunk.start);
            assert_eq!(
                chunk.sentences,
                whole.sentences[chunk.start..end],
                "chunk {index}"
            );
        }
    }

    #[test]
    fn dataset_is_a_single_chunk_source() {
        let mut d = monolithic(30);
        let whole = d.clone();
        assert_eq!(CorpusSource::num_chunks(&d), 1);
        assert_eq!(CorpusSource::total_sentences(&d), 30);
        let chunk = d.read_chunk(0).unwrap();
        assert_eq!(chunk.sentences, whole.sentences);
        assert_eq!(&chunk.clusters, whole.clusters());
        assert!(d.read_chunk(1).is_err());
    }

    #[test]
    fn boundary_cache_makes_backward_seeks_cheap() {
        let mut stream =
            StreamingCorpus::new("s", inventory(), 100, &GenConfig::newswire(), 7, 10).unwrap();
        stream.read_chunk(9).unwrap(); // replays 0..9, caches all boundaries
        let after_first = stream.chunks_generated();
        stream.read_chunk(3).unwrap(); // boundary cached: exactly one chunk
        assert_eq!(stream.chunks_generated(), after_first + 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(
            StreamingCorpus::new("s", inventory(), 10, &GenConfig::newswire(), 7, 0).is_err(),
            "zero chunk size"
        );
        assert!(
            StreamingCorpus::new("s", vec![], 10, &GenConfig::newswire(), 7, 4).is_err(),
            "empty inventory"
        );
        let mut stream =
            StreamingCorpus::new("s", inventory(), 10, &GenConfig::newswire(), 7, 4).unwrap();
        assert!(stream.read_chunk(3).is_err(), "out of range chunk");
    }

    #[test]
    fn cursor_round_trips_through_json() {
        let cur = StreamCursor::at(1234, 64);
        assert_eq!(cur, StreamCursor { chunk: 19, pos: 18 });
        assert_eq!(cur.consumed(64), 1234);
        let json = Json::parse(&cur.to_json().to_string()).unwrap();
        assert_eq!(StreamCursor::from_json(&json).unwrap(), cur);
    }
}
