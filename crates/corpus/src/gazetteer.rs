//! Concrete entity types and their gazetteers.
//!
//! A dataset profile owns an inventory of [`TypeSpec`]s. Each type belongs
//! to a [`Family`], claims one family suffix as its character-level
//! signature, owns a gazetteer of generated surface forms, and owns a small
//! set of type-specific context trigger words. These are the three features
//! the paper's models can exploit: word identity (embedding clusters),
//! character morphology (char-CNN) and context (BiGRU).

use fewner_text::embed::stable_hash;
use fewner_text::TypeId;
use fewner_util::Rng;

use crate::families::Family;

/// A concrete entity type.
#[derive(Debug, Clone)]
pub struct TypeSpec {
    /// Dataset-unique identifier.
    pub id: TypeId,
    /// Human-readable name, e.g. `Person-03-son`.
    pub name: String,
    /// Semantic family.
    pub family: Family,
    /// Character suffix marking this type's head tokens.
    pub suffix: String,
    /// Known surface forms (token sequences).
    pub gazetteer: Vec<Vec<String>>,
    /// Context words that signal this type.
    pub triggers: Vec<String>,
}

impl TypeSpec {
    /// Samples a surface form: usually from the gazetteer, with probability
    /// `fresh_prob` a newly generated (out-of-gazetteer) name — the source
    /// of out-of-training-vocabulary tokens the char-CNN must handle.
    pub fn sample_name(&self, fresh_prob: f64, rng: &mut Rng) -> Vec<String> {
        if rng.chance(fresh_prob) || self.gazetteer.is_empty() {
            make_name(self.family, &self.suffix, rng)
        } else {
            rng.choose(&self.gazetteer).clone()
        }
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Whether this family's names read as capitalised proper nouns.
fn capitalised(family: Family) -> bool {
    !matches!(
        family,
        Family::BioMolecule
            | Family::Disease
            | Family::Cell
            | Family::Chemical
            | Family::Temporal
            | Family::Quantity
    )
}

/// Generates one surface form for a type with the given family + suffix.
///
/// The *head* (last) token carries the type suffix; preceding tokens are
/// family-syllable compounds, so multiword names still end in the
/// type-identifying morphology.
pub fn make_name(family: Family, suffix: &str, rng: &mut Rng) -> Vec<String> {
    let (lo, hi) = family.name_len();
    let len = rng.range(lo, hi + 1);
    let syl = family.syllables();

    if family == Family::Quantity {
        // "<number> <unit-suffix>"
        let magnitude = 10u64.pow(rng.range(0, 4) as u32);
        let number = (rng.range(1, 1000) as u64 * magnitude).to_string();
        return vec![number, suffix.to_string()];
    }

    let mut tokens = Vec::with_capacity(len);
    for i in 0..len {
        let stem = format!("{}{}", rng.choose(syl), rng.choose(syl));
        let word = if i == len - 1 {
            format!("{stem}{suffix}")
        } else {
            stem
        };
        tokens.push(if capitalised(family) {
            capitalize(&word)
        } else {
            word
        });
    }
    tokens
}

/// Builds an inventory of `n_types` types spread round-robin over
/// `families`, each with a generated gazetteer and trigger set.
///
/// `seed` fully determines the inventory; a type's identity (name, suffix,
/// gazetteer) depends only on its position, so regenerating a profile is
/// stable.
pub fn build_inventory(
    n_types: usize,
    families: &[Family],
    gazetteer_size: usize,
    seed: u64,
) -> Vec<TypeSpec> {
    assert!(!families.is_empty(), "need at least one family");
    let mut out = Vec::with_capacity(n_types);
    let mut per_family_count = vec![0usize; families.len()];
    for t in 0..n_types {
        let fi = t % families.len();
        let family = families[fi];
        let k = per_family_count[fi];
        per_family_count[fi] += 1;

        let suffixes = family.suffixes();
        // Reuse suffixes with a syllabic disambiguator once exhausted so
        // every type keeps a unique character signature.
        let base = suffixes[k % suffixes.len()];
        let suffix = if k < suffixes.len() {
            base.to_string()
        } else {
            let syl = family.syllables();
            format!("{}{}", syl[(k / suffixes.len()) % syl.len()], base)
        };

        let mut rng = Rng::new(seed ^ stable_hash(&format!("{}-{t}-{suffix}", family.name())));
        // The seed nibble makes names dataset-unique: two corpora may share
        // family morphology (that is the transferable signal) but never a
        // concrete type identity.
        let name = format!("{}-{:02x}-{t:03}-{suffix}", family.name(), seed & 0xff);

        let gazetteer: Vec<Vec<String>> = (0..gazetteer_size)
            .map(|_| make_name(family, &suffix, &mut rng))
            .collect();

        // Type-specific triggers: lowercase context words with family
        // syllables, embedded in the family's trigger cluster.
        let triggers: Vec<String> = (0..4)
            .map(|_| {
                let syl = family.syllables();
                format!("{}{}ing", rng.choose(syl), rng.choose(syl))
            })
            .collect();

        out.push(TypeSpec {
            id: TypeId(t as u32),
            name,
            family,
            suffix,
            gazetteer,
            triggers,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_is_deterministic_and_unique() {
        let a = build_inventory(20, &Family::NEWSWIRE, 10, 42);
        let b = build_inventory(20, &Family::NEWSWIRE, 10, 42);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.gazetteer, y.gazetteer);
        }
        // Distinct ids and (family, suffix) signatures.
        let mut sigs: Vec<(String, String)> = a
            .iter()
            .map(|t| (t.family.name().to_string(), t.suffix.clone()))
            .collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 20, "duplicate type signature");
    }

    #[test]
    fn names_carry_type_suffix_on_head_token() {
        let inv = build_inventory(8, &Family::NEWSWIRE, 25, 7);
        for spec in &inv {
            if spec.family == Family::Quantity {
                continue;
            }
            for name in &spec.gazetteer {
                let head = name.last().unwrap().to_lowercase();
                assert!(
                    head.ends_with(&spec.suffix.to_lowercase()),
                    "{head} should end with {}",
                    spec.suffix
                );
            }
        }
    }

    #[test]
    fn quantity_names_start_with_digits() {
        let inv = build_inventory(12, &Family::ALL, 10, 3);
        let quantity = inv.iter().find(|t| t.family == Family::Quantity).unwrap();
        for name in &quantity.gazetteer {
            assert!(name[0].chars().all(|c| c.is_ascii_digit()));
            assert_eq!(name.len(), 2);
        }
    }

    #[test]
    fn capitalisation_follows_family() {
        let mut rng = Rng::new(1);
        let person = make_name(Family::Person, "son", &mut rng);
        assert!(person[0].chars().next().unwrap().is_uppercase());
        let protein = make_name(Family::BioMolecule, "ase", &mut rng);
        assert!(protein[0].chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn fresh_names_are_out_of_gazetteer() {
        let inv = build_inventory(4, &[Family::Person], 30, 11);
        let spec = &inv[0];
        let mut rng = Rng::new(5);
        let mut fresh_hits = 0;
        for _ in 0..50 {
            let name = spec.sample_name(1.0, &mut rng);
            if !spec.gazetteer.contains(&name) {
                fresh_hits += 1;
            }
        }
        assert!(fresh_hits >= 45, "fresh sampling mostly OOV: {fresh_hits}");
        // fresh_prob = 0 should always hit the gazetteer.
        for _ in 0..20 {
            let name = spec.sample_name(0.0, &mut rng);
            assert!(spec.gazetteer.contains(&name));
        }
    }

    #[test]
    fn suffix_reuse_disambiguates_past_pool_size() {
        // 50 types over one family exceeds the 20-suffix pool.
        let inv = build_inventory(50, &[Family::Location], 5, 9);
        let mut suffixes: Vec<&str> = inv.iter().map(|t| t.suffix.as_str()).collect();
        suffixes.sort_unstable();
        suffixes.dedup();
        assert_eq!(suffixes.len(), 50);
    }
}
