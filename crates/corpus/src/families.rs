//! Semantic families of entity types.
//!
//! Real NER type inventories are organised in coarse families — person-like,
//! organisation-like, biomolecule-like, … — and the paper's adaptation
//! experiments work precisely because *novel* types still share family-level
//! lexical and character features with training types (its ablation shows a
//! 15–19 point F1 drop when the character CNN is removed, §4.5.1). Each
//! family therefore defines the two signals the models can transfer:
//!
//! * a **syllable inventory** — the character n-grams names are built from
//!   (word-embedding clusters also live at family level), and
//! * a **suffix pool** — per-*type* morphological markers drawn from
//!   family-characteristic endings, so sibling types look related but
//!   distinguishable at the character level.

/// Coarse semantic family of an entity type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// People and roles: `PER`, `Individual`, `PositionVocation`, …
    Person,
    /// Organisations: `ORG`, `Government`, `Company`, …
    Organization,
    /// Places: `LOC`, `GPE`, `Water-Body`, …
    Location,
    /// Artifacts and products: `Product`, `ProductFood`, `Vehicle`, …
    Product,
    /// Events: `War`, `Conference`, `Disaster`, …
    Event,
    /// Creative works: `Picture`, `Book`, `Film`, …
    Creative,
    /// Proteins, genes and their parts: `Protein`, `Gene`, `ProteinSubunit`, …
    BioMolecule,
    /// Diseases and symptoms: `Cancer`, `Disease`, …
    Disease,
    /// Cells and cell lines: `CellType`, `Cell`, …
    Cell,
    /// Chemicals and drugs: `Chemical`, `Drug`, …
    Chemical,
    /// Temporal expressions: `Time`, `Date`, …
    Temporal,
    /// Quantities, currencies, percentages.
    Quantity,
}

impl Family {
    /// All families, in a stable order.
    pub const ALL: [Family; 12] = [
        Family::Person,
        Family::Organization,
        Family::Location,
        Family::Product,
        Family::Event,
        Family::Creative,
        Family::BioMolecule,
        Family::Disease,
        Family::Cell,
        Family::Chemical,
        Family::Temporal,
        Family::Quantity,
    ];

    /// Families characteristic of general/newswire text.
    pub const NEWSWIRE: [Family; 8] = [
        Family::Person,
        Family::Organization,
        Family::Location,
        Family::Product,
        Family::Event,
        Family::Creative,
        Family::Temporal,
        Family::Quantity,
    ];

    /// Families characteristic of biomedical text.
    pub const MEDICAL: [Family; 6] = [
        Family::BioMolecule,
        Family::Disease,
        Family::Cell,
        Family::Chemical,
        Family::Person,
        Family::Organization,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Person => "Person",
            Family::Organization => "Organization",
            Family::Location => "Location",
            Family::Product => "Product",
            Family::Event => "Event",
            Family::Creative => "Creative",
            Family::BioMolecule => "BioMolecule",
            Family::Disease => "Disease",
            Family::Cell => "Cell",
            Family::Chemical => "Chemical",
            Family::Temporal => "Temporal",
            Family::Quantity => "Quantity",
        }
    }

    /// Syllables names of this family are composed from.
    pub fn syllables(&self) -> &'static [&'static str] {
        match self {
            Family::Person => &[
                "jor", "dan", "mar", "lee", "san", "chen", "kov", "ter", "wil", "ber", "ron", "al",
                "mi", "ka", "pet", "son", "ric", "da", "vi", "lu",
            ],
            Family::Organization => &[
                "glo", "tech", "uni", "fed", "nat", "cor", "dyn", "sys", "tra", "com", "ind",
                "cap", "met", "pro", "gen", "ver", "net", "max", "cen", "axi",
            ],
            Family::Location => &[
                "spring", "river", "north", "east", "lake", "hill", "ston", "brook", "ford",
                "glen", "mont", "bay", "port", "green", "oak", "wood", "fair", "cler", "avon",
                "del",
            ],
            Family::Product => &[
                "zen", "ultra", "neo", "flex", "duo", "core", "air", "lite", "prime", "vol", "tur",
                "nova", "omni", "hyper", "giga", "pix", "sky", "blue", "swift", "aero",
            ],
            Family::Event => &[
                "sum", "grand", "open", "world", "final", "clash", "rally", "storm", "siege",
                "accord", "treaty", "expo", "fest", "cong", "gala", "cup", "games", "strike",
                "march", "vote",
            ],
            Family::Creative => &[
                "night", "dream", "echo", "silent", "golden", "shadow", "winter", "cant", "sona",
                "opus", "ball", "port", "verse", "saga", "hymn", "lumen", "mira", "aria", "fable",
                "muse",
            ],
            Family::BioMolecule => &[
                "kin", "recept", "glob", "trans", "fact", "zym", "pla", "myo", "neur", "lig",
                "pro", "hemo", "cyt", "gen", "mut", "pol", "oxi", "dehydr", "synth", "phos",
            ],
            Family::Disease => &[
                "carcin", "lymph", "neur", "derm", "gastr", "hepat", "card", "arthr", "scler",
                "fibr", "melan", "leuk", "nephr", "pulmon", "enter", "myel", "oste", "angi",
                "retin", "encephal",
            ],
            Family::Cell => &[
                "lympho", "mono", "fibro", "dendr", "epithel", "hepato", "myo", "neuro", "osteo",
                "erythro", "granulo", "macro", "baso", "eosino", "kerato", "melano", "astro",
                "glia", "stem", "blast",
            ],
            Family::Chemical => &[
                "meth", "eth", "prop", "but", "chlor", "fluor", "brom", "sulf", "nitr", "carb",
                "hydro", "oxy", "aceto", "benz", "tolu", "amino", "keto", "cyclo", "poly", "iso",
            ],
            Family::Temporal => &[
                "mon", "tues", "win", "spring", "morn", "even", "week", "year", "dec", "jan",
                "quart", "sea", "night", "noon", "dawn", "eve", "term", "era", "age", "day",
            ],
            Family::Quantity => &[
                "kilo", "mega", "cent", "doll", "eur", "pound", "ton", "mile", "liter", "gram",
                "watt", "volt", "byte", "acre", "knot", "bar", "mol", "hertz", "pix", "unit",
            ],
        }
    }

    /// Per-type suffix pool; each concrete type claims one suffix so its
    /// names carry a type-specific character signature.
    pub fn suffixes(&self) -> &'static [&'static str] {
        match self {
            Family::Person => &[
                "son", "ez", "ov", "ini", "sen", "sky", "ato", "ell", "ard", "man", "dez", "ton",
                "vic", "ura", "ias", "eau", "off", "ану", "oğlu", "ssen",
            ],
            Family::Organization => &[
                "corp", "tech", "sys", "group", "labs", "works", "bank", "media", "soft", "net",
                "global", "air", "motors", "press", "trust", "union", "force", "league", "board",
                "house",
            ],
            Family::Location => &[
                "ville", "burg", "ton", "field", "shire", "land", "stan", "ia", "port", "mouth",
                "dale", "gate", "haven", "cliff", "moor", "marsh", "ridge", "fall", "creek",
                "strand",
            ],
            Family::Product => &[
                "one", "pro", "max", "mini", "plus", "go", "x", "s", "edge", "note", "pad", "book",
                "watch", "cam", "drive", "pod", "link", "hub", "dot", "beam",
            ],
            Family::Event => &[
                "war", "summit", "games", "cup", "fair", "crisis", "accord", "uprising",
                "election", "festival", "strike", "storm", "siege", "treaty", "derby", "marathon",
                "forum", "exile", "raid", "blitz",
            ],
            Family::Creative => &[
                "sonata",
                "symphony",
                "tale",
                "song",
                "portrait",
                "ballad",
                "chronicle",
                "rhapsody",
                "elegy",
                "ode",
                "canvas",
                "mural",
                "anthem",
                "fresco",
                "suite",
                "etude",
                "novel",
                "memoir",
                "opera",
                "lied",
            ],
            Family::BioMolecule => &[
                "ase", "in", "ogen", "or", "erin", "ulin", "actin", "osin", "ein", "amide", "efan",
                "axin", "odin", "ullin", "ectin", "illin", "ysin", "opsin", "erol", "idase",
            ],
            Family::Disease => &[
                "itis", "oma", "osis", "emia", "pathy", "algia", "plegia", "trophy", "rrhea",
                "edema", "iasis", "cele", "penia", "ptysis", "spasm", "stasis", "plasia",
                "oidosis", "angitis", "phagia",
            ],
            Family::Cell => &[
                "cyte", "blast", "phage", "clast", "cell", "oocyte", "somes", "plast", "ocyte",
                "oblast", "iphil", "ocyst", "oderm", "axon", "glion", "oglia", "opore", "osome",
                "ovum", "zoon",
            ],
            Family::Chemical => &[
                "ane", "ene", "yne", "ol", "al", "one", "ide", "ate", "ite", "ium", "acid",
                "amine", "ester", "oxide", "azole", "idine", "osine", "ylate", "onate", "ylene",
            ],
            Family::Temporal => &[
                "day", "week", "month", "year", "time", "hour", "season", "night", "decade",
                "century", "moment", "period", "spell", "term", "span", "shift", "phase", "epoch",
                "dawn", "dusk",
            ],
            Family::Quantity => &[
                "dollars", "euros", "percent", "tons", "miles", "liters", "grams", "watts",
                "points", "shares", "barrels", "ounces", "meters", "acres", "degrees", "units",
                "votes", "seats", "jobs", "heads",
            ],
        }
    }

    /// Trigger words that signal an entity of this family in context.
    pub fn triggers(&self) -> &'static [&'static str] {
        match self {
            Family::Person => &[
                "mr",
                "mrs",
                "dr",
                "president",
                "minister",
                "coach",
                "actor",
                "singer",
                "chairman",
                "judge",
                "officer",
                "player",
            ],
            Family::Organization => &[
                "company",
                "firm",
                "agency",
                "committee",
                "club",
                "party",
                "ministry",
                "startup",
                "team",
                "institute",
                "network",
                "exchange",
            ],
            Family::Location => &[
                "in", "near", "city", "region", "province", "village", "district", "outside",
                "capital", "border", "coast", "valley",
            ],
            Family::Product => &[
                "device", "model", "brand", "released", "launched", "gadget", "version", "sells",
                "ships", "unveiled", "flagship", "edition",
            ],
            Family::Event => &[
                "during",
                "before",
                "after",
                "attended",
                "hosted",
                "celebrated",
                "commemorating",
                "since",
                "annual",
                "upcoming",
                "historic",
                "opening",
            ],
            Family::Creative => &[
                "painting",
                "novel",
                "film",
                "album",
                "wrote",
                "composed",
                "directed",
                "published",
                "exhibition",
                "premiere",
                "masterpiece",
                "bestselling",
            ],
            Family::BioMolecule => &[
                "expression",
                "encoded",
                "binding",
                "activation",
                "phosphorylation",
                "regulates",
                "overexpression",
                "inhibitor",
                "pathway",
                "receptor",
                "transcription",
                "signaling",
            ],
            Family::Disease => &[
                "diagnosed",
                "patients",
                "treatment",
                "symptoms",
                "chronic",
                "acute",
                "suffering",
                "therapy",
                "risk",
                "progression",
                "severe",
                "malignant",
            ],
            Family::Cell => &[
                "cells",
                "cultured",
                "derived",
                "differentiated",
                "isolated",
                "lineage",
                "proliferation",
                "apoptosis",
                "membrane",
                "nucleus",
                "tissue",
                "culture",
            ],
            Family::Chemical => &[
                "compound",
                "dose",
                "mg",
                "solution",
                "treated",
                "synthesized",
                "reagent",
                "dissolved",
                "concentration",
                "toxic",
                "reacted",
                "agent",
            ],
            Family::Temporal => &[
                "last", "next", "early", "late", "since", "until", "around", "by", "during",
                "every", "mid", "past",
            ],
            Family::Quantity => &[
                "about",
                "nearly",
                "over",
                "under",
                "roughly",
                "total",
                "rose",
                "fell",
                "worth",
                "costs",
                "estimated",
                "approximately",
            ],
        }
    }

    /// Typical token length of an entity of this family: `(min, max)`.
    pub fn name_len(&self) -> (usize, usize) {
        match self {
            Family::Person | Family::BioMolecule | Family::Chemical => (1, 2),
            Family::Temporal | Family::Quantity => (1, 2),
            Family::Location | Family::Cell | Family::Disease | Family::Product => (1, 3),
            Family::Organization | Family::Event => (1, 3),
            Family::Creative => (2, 4),
        }
    }

    /// Stable cluster id for word-embedding purposes.
    pub fn cluster(&self) -> u64 {
        fewner_text::embed::stable_hash(self.name())
    }

    /// Cluster id for the family's trigger vocabulary.
    pub fn trigger_cluster(&self) -> u64 {
        fewner_text::embed::stable_hash(self.name()) ^ 0x7716_6e72
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_populated_and_distinct() {
        for f in Family::ALL {
            assert!(f.syllables().len() >= 20, "{f:?} syllables");
            assert!(f.suffixes().len() >= 20, "{f:?} suffixes");
            assert!(f.triggers().len() >= 12, "{f:?} triggers");
            let (lo, hi) = f.name_len();
            assert!(lo >= 1 && hi >= lo && hi <= 4);
        }
        // Families must have distinct clusters (embedding structure).
        let mut clusters: Vec<u64> = Family::ALL.iter().map(Family::cluster).collect();
        clusters.sort_unstable();
        clusters.dedup();
        assert_eq!(clusters.len(), Family::ALL.len());
    }

    #[test]
    fn trigger_cluster_differs_from_name_cluster() {
        for f in Family::ALL {
            assert_ne!(f.cluster(), f.trigger_cluster());
        }
    }

    #[test]
    fn domain_subsets_are_subsets() {
        for f in Family::NEWSWIRE {
            assert!(Family::ALL.contains(&f));
        }
        for f in Family::MEDICAL {
            assert!(Family::ALL.contains(&f));
        }
    }
}
