//! Dataset profiles matching the paper's Table 1.
//!
//! Each profile fixes the type-inventory size, sentence count, mention
//! density, genre and difficulty knobs of one corpus. Generating a profile
//! at `scale = 1.0` reproduces Table 1's statistics (sentence counts
//! exactly, mention counts approximately via the density knob); smaller
//! scales shrink only the sentence count, which is what tests and smoke
//! benchmarks use.
//!
//! | Dataset    | Genre    | #Types | #Sentences | #Mentions |
//! |------------|----------|--------|------------|-----------|
//! | NNE        | Newswire | 114    | 39932      | 185925    |
//! | FG-NER     | Newswire | 200    | 3941       | 7384      |
//! | GENIA      | Medical  | 36     | 18546      | 76625     |
//! | ACE2005    | Various  | 54     | 17399      | 48397     |
//! | OntoNotes  | Various  | 18     | 42224      | 104248    |
//! | BioNLP13CG | Medical  | 16     | 5939       | 21315     |

use fewner_util::Result;

use crate::families::Family;
use crate::gazetteer::{build_inventory, TypeSpec};
use crate::generator::{generate_dataset, Dataset, GenConfig};
use crate::genre::Genre;
use crate::stream::StreamingCorpus;

/// Declarative description of one corpus.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset name as in Table 1.
    pub name: &'static str,
    /// Entity-type inventory size.
    pub n_types: usize,
    /// Sentence count at scale 1.0.
    pub n_sentences: usize,
    /// Families the inventory draws from.
    pub families: Vec<Family>,
    /// Gazetteer entries per type.
    pub gazetteer_size: usize,
    /// Generation knobs (genre, densities, difficulty).
    pub gen: GenConfig,
    /// Base seed; also keys the type inventory.
    pub seed: u64,
}

impl DatasetProfile {
    /// Generates the corpus at the given scale (`1.0` = paper size).
    pub fn generate(&self, scale: f64) -> Result<Dataset> {
        generate_dataset(
            self.name,
            self.inventory(),
            self.scaled_sentences(scale),
            &self.gen,
            self.seed,
        )
    }

    /// Opens the corpus as a chunked stream instead of materializing it —
    /// byte-identical sentences to [`DatasetProfile::generate`] at the same
    /// scale, with only one chunk window resident at a time. `sentences`
    /// overrides the scaled Table-1 count for million-sentence runs.
    pub fn stream(
        &self,
        scale: f64,
        sentences: Option<usize>,
        chunk_size: usize,
    ) -> Result<StreamingCorpus> {
        let n = sentences.unwrap_or_else(|| self.scaled_sentences(scale));
        StreamingCorpus::new(
            self.name,
            self.inventory(),
            n,
            &self.gen,
            self.seed,
            chunk_size,
        )
    }

    /// The sentence count at `scale` (floored at 20, like `generate`).
    pub fn scaled_sentences(&self, scale: f64) -> usize {
        ((self.n_sentences as f64 * scale).round() as usize).max(20)
    }

    /// The (deterministic) type inventory for this profile.
    pub fn inventory(&self) -> Vec<TypeSpec> {
        build_inventory(self.n_types, &self.families, self.gazetteer_size, self.seed)
    }

    /// NNE: fine-grained newswire, 114 types, very dense mentions.
    pub fn nne() -> DatasetProfile {
        DatasetProfile {
            name: "NNE",
            n_types: 114,
            n_sentences: 39_932,
            families: Family::NEWSWIRE.to_vec(),
            gazetteer_size: 40,
            gen: GenConfig {
                genre: Genre::Newswire,
                mention_rate: 4.66,
                trigger_prob: 0.70,
                family_trigger_prob: 0.3,
                homonym_prob: 0.10,
                fresh_prob: 0.15,
                nested_prob: 0.0,
            },
            seed: 0x4E4E_4500, // "NNE"
        }
    }

    /// FG-NER: 200 fine-grained newswire types, few examples per type.
    pub fn fg_ner() -> DatasetProfile {
        DatasetProfile {
            name: "FG-NER",
            n_types: 200,
            n_sentences: 3_941,
            families: Family::NEWSWIRE.to_vec(),
            gazetteer_size: 12,
            gen: GenConfig {
                genre: Genre::Newswire,
                mention_rate: 1.87,
                trigger_prob: 0.72,
                family_trigger_prob: 0.25,
                homonym_prob: 0.08,
                fresh_prob: 0.12,
                nested_prob: 0.0,
            },
            seed: 0x4647_4E45,
        }
    }

    /// GENIA: biomedical, 36 types; sparse triggers and heavy surface
    /// ambiguity make it the hardest intra-domain setting (paper §4.2.2).
    pub fn genia() -> DatasetProfile {
        DatasetProfile {
            name: "GENIA",
            n_types: 36,
            n_sentences: 18_546,
            families: Family::MEDICAL.to_vec(),
            gazetteer_size: 35,
            gen: GenConfig {
                genre: Genre::Medical,
                mention_rate: 4.13,
                trigger_prob: 0.45,
                family_trigger_prob: 0.45,
                homonym_prob: 0.28,
                fresh_prob: 0.25,
                nested_prob: 0.0,
            },
            seed: 0x4745_4E49,
        }
    }

    /// One ACE2005 source domain.
    ///
    /// All six sub-domains share the same 54-type inventory and seed (so the
    /// cross-domain *intra-type* property holds) but differ in genre and
    /// density. ACE is annotated with nested entities; `nested_prob` is
    /// non-zero and generation flattens to the innermost span (§4.3.1).
    pub fn ace2005(domain: AceDomain) -> DatasetProfile {
        let (genre, n_sentences, mention_rate) = match domain {
            AceDomain::Bc => (Genre::BroadcastConversation, 2_600, 2.9),
            AceDomain::Bn => (Genre::BroadcastNews, 3_500, 2.9),
            AceDomain::Cts => (Genre::Telephone, 2_600, 2.6),
            AceDomain::Nw => (Genre::Newswire, 4_500, 2.9),
            AceDomain::Un => (Genre::Usenet, 2_100, 2.6),
            AceDomain::Wl => (Genre::Weblog, 2_099, 2.7),
        };
        DatasetProfile {
            name: domain.name(),
            n_types: 54,
            n_sentences,
            families: Family::NEWSWIRE.to_vec(),
            gazetteer_size: 30,
            gen: GenConfig {
                genre,
                mention_rate,
                trigger_prob: 0.65,
                family_trigger_prob: 0.3,
                homonym_prob: 0.12,
                fresh_prob: 0.18,
                nested_prob: 0.15,
            },
            // Same seed for every domain: identical type inventory.
            seed: 0x4143_4535,
        }
    }

    /// OntoNotes 5.0: 18 coarse types over mixed genres.
    pub fn ontonotes() -> DatasetProfile {
        DatasetProfile {
            name: "OntoNotes",
            n_types: 18,
            n_sentences: 42_224,
            families: Family::NEWSWIRE.to_vec(),
            gazetteer_size: 60,
            gen: GenConfig {
                genre: Genre::Mixed,
                mention_rate: 2.47,
                trigger_prob: 0.68,
                family_trigger_prob: 0.35,
                homonym_prob: 0.10,
                fresh_prob: 0.15,
                nested_prob: 0.0,
            },
            seed: 0x4F4E_544F,
        }
    }

    /// CoNLL-2003-style sanity profile: the classic 4-type newswire setting
    /// (PER/ORG/LOC/MISC-like). Not part of the paper's evaluation; useful
    /// as the simplest possible few-shot NER reference and for demos.
    pub fn conll_like() -> DatasetProfile {
        DatasetProfile {
            name: "CoNLL-like",
            n_types: 4,
            n_sentences: 14_041,
            families: vec![
                Family::Person,
                Family::Organization,
                Family::Location,
                Family::Product,
            ],
            gazetteer_size: 80,
            gen: GenConfig {
                genre: Genre::Newswire,
                mention_rate: 1.7,
                trigger_prob: 0.75,
                family_trigger_prob: 0.3,
                homonym_prob: 0.06,
                fresh_prob: 0.12,
                nested_prob: 0.0,
            },
            seed: 0x434F_4E4C,
        }
    }

    /// Slot filling: the sequence-labeling extension the paper's discussion
    /// proposes (§5) — task-oriented dialogue utterances whose "entities"
    /// are slots (times, places, works, quantities). Not one of the paper's
    /// six corpora; sized like a typical slot-filling benchmark.
    pub fn slot_filling() -> DatasetProfile {
        DatasetProfile {
            name: "SlotFilling",
            n_types: 14,
            n_sentences: 13_084,
            families: vec![
                Family::Temporal,
                Family::Location,
                Family::Creative,
                Family::Quantity,
                Family::Product,
                Family::Organization,
            ],
            gazetteer_size: 40,
            gen: GenConfig {
                genre: Genre::Dialogue,
                mention_rate: 2.2,
                trigger_prob: 0.8,
                family_trigger_prob: 0.35,
                homonym_prob: 0.08,
                fresh_prob: 0.12,
                nested_prob: 0.0,
            },
            seed: 0x534C_4F54,
        }
    }

    /// BioNLP13CG: 16 biomedical types (cancer genetics).
    pub fn bionlp13cg() -> DatasetProfile {
        DatasetProfile {
            name: "BioNLP13CG",
            n_types: 16,
            n_sentences: 5_939,
            families: Family::MEDICAL.to_vec(),
            gazetteer_size: 30,
            gen: GenConfig {
                genre: Genre::Medical,
                mention_rate: 3.59,
                trigger_prob: 0.50,
                family_trigger_prob: 0.4,
                homonym_prob: 0.22,
                fresh_prob: 0.22,
                nested_prob: 0.0,
            },
            seed: 0x4249_4F31,
        }
    }
}

/// The six ACE2005 source domains (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AceDomain {
    /// Broadcast Conversations.
    Bc,
    /// Broadcast News.
    Bn,
    /// Conversational Telephone Speech.
    Cts,
    /// Newswire.
    Nw,
    /// Usenet.
    Un,
    /// Weblog.
    Wl,
}

impl AceDomain {
    /// All six domains.
    pub const ALL: [AceDomain; 6] = [
        AceDomain::Bc,
        AceDomain::Bn,
        AceDomain::Cts,
        AceDomain::Nw,
        AceDomain::Un,
        AceDomain::Wl,
    ];

    /// Paper abbreviation.
    pub fn name(&self) -> &'static str {
        match self {
            AceDomain::Bc => "ACE-BC",
            AceDomain::Bn => "ACE-BN",
            AceDomain::Cts => "ACE-CTS",
            AceDomain::Nw => "ACE-NW",
            AceDomain::Un => "ACE-UN",
            AceDomain::Wl => "ACE-WL",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_statistics_match_table_1_at_small_scale() {
        // Full-scale counts are pinned in the table1 bench; here we check
        // proportions at 2% scale to stay fast.
        let d = DatasetProfile::nne().generate(0.02).unwrap();
        let s = d.stats();
        assert_eq!(s.types, 114);
        assert_eq!(s.sentences, (39_932.0f64 * 0.02).round() as usize);
        let density = s.mentions as f64 / s.sentences as f64;
        assert!(
            (3.9..5.4).contains(&density),
            "NNE density {density}, want ≈ 4.66"
        );
    }

    #[test]
    fn fg_ner_is_sparse() {
        let d = DatasetProfile::fg_ner().generate(0.2).unwrap();
        let s = d.stats();
        assert_eq!(s.types, 200);
        let density = s.mentions as f64 / s.sentences as f64;
        assert!((1.5..2.3).contains(&density), "FG-NER density {density}");
    }

    #[test]
    fn ace_domains_share_one_inventory() {
        let bc = DatasetProfile::ace2005(AceDomain::Bc);
        let un = DatasetProfile::ace2005(AceDomain::Un);
        let inv_bc = bc.inventory();
        let inv_un = un.inventory();
        assert_eq!(inv_bc.len(), 54);
        for (a, b) in inv_bc.iter().zip(&inv_un) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.gazetteer, b.gazetteer);
        }
        // ...but produce different surface text.
        let dbc = bc.generate(0.05).unwrap();
        let dun = un.generate(0.05).unwrap();
        assert_ne!(dbc.sentences[0].tokens, dun.sentences[0].tokens);
    }

    #[test]
    fn medical_profiles_use_medical_families() {
        let genia = DatasetProfile::genia();
        let inv = genia.inventory();
        assert!(inv.iter().all(|t| Family::MEDICAL.contains(&t.family)));
    }

    #[test]
    fn scale_floors_at_twenty_sentences() {
        let d = DatasetProfile::bionlp13cg().generate(0.0001).unwrap();
        assert_eq!(d.stats().sentences, 20);
    }

    #[test]
    fn all_profiles_generate_cleanly() {
        for p in [
            DatasetProfile::nne(),
            DatasetProfile::fg_ner(),
            DatasetProfile::genia(),
            DatasetProfile::ontonotes(),
            DatasetProfile::bionlp13cg(),
            DatasetProfile::slot_filling(),
            DatasetProfile::conll_like(),
            DatasetProfile::ace2005(AceDomain::Cts),
        ] {
            let d = p.generate(0.01).unwrap();
            assert_eq!(d.stats().types, p.n_types);
            assert!(d.stats().mentions > 0);
        }
    }
}
