//! Descriptive statistics over sampled episodes.
//!
//! The greedy-including construction gives support sets whose size is a
//! *consequence* of the data (a sentence may satisfy several shots at
//! once), unlike classification where it is exactly N·K. These statistics
//! characterise that distribution — useful both for sanity-checking a new
//! corpus profile and for the paper's observation that class entanglement
//! is what makes N-way K-shot sequence labeling hard.

use fewner_util::{OnlineStats, Rng};

use crate::sampler::EpisodeSampler;
use crate::task::Task;

/// Aggregate shape of a set of tasks.
#[derive(Debug, Clone)]
pub struct EpisodeStats {
    /// Support sentences per task.
    pub support_sentences: OnlineStats,
    /// Support mentions per slot (over all slots of all tasks).
    pub mentions_per_slot: OnlineStats,
    /// Query sentences per task.
    pub query_sentences: OnlineStats,
    /// Fraction of support mentions *beyond* the K required ones —
    /// "entanglement surplus": 0 would mean classification-style exactness.
    pub surplus_fraction: OnlineStats,
}

impl EpisodeStats {
    /// Measures a set of tasks.
    pub fn measure(tasks: &[Task]) -> EpisodeStats {
        let mut support_sentences = OnlineStats::new();
        let mut mentions_per_slot = OnlineStats::new();
        let mut query_sentences = OnlineStats::new();
        let mut surplus_fraction = OnlineStats::new();
        for t in tasks {
            support_sentences.push(t.support.len() as f64);
            query_sentences.push(t.query.len() as f64);
            let counts = t.support_slot_counts();
            let total: usize = counts.iter().sum();
            let required = t.n_ways * t.k_shots;
            for &c in &counts {
                mentions_per_slot.push(c as f64);
            }
            if total > 0 {
                surplus_fraction.push((total - required.min(total)) as f64 / total as f64);
            }
        }
        EpisodeStats {
            support_sentences,
            mentions_per_slot,
            query_sentences,
            surplus_fraction,
        }
    }

    /// Samples `count` tasks from a sampler and measures them.
    pub fn sample(
        sampler: &EpisodeSampler<'_>,
        count: usize,
        seed: u64,
    ) -> fewner_util::Result<EpisodeStats> {
        let mut rng = Rng::new(seed);
        let tasks: fewner_util::Result<Vec<Task>> =
            (0..count).map(|_| sampler.sample(&mut rng)).collect();
        Ok(EpisodeStats::measure(&tasks?))
    }

    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "support {:.1}±{:.1} sents | {:.1} mentions/slot | query {:.1} sents | surplus {:.0}%",
            self.support_sentences.mean(),
            self.support_sentences.stddev(),
            self.mentions_per_slot.mean(),
            self.query_sentences.mean(),
            self.surplus_fraction.mean() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};

    #[test]
    fn stats_reflect_task_shape() {
        let d = DatasetProfile::genia().generate(0.03).unwrap();
        let split = split_types(&d, (18, 8, 10), 42).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 5, 1, 6).unwrap();
        let stats = EpisodeStats::sample(&sampler, 15, 9).unwrap();

        // 5-way 1-shot needs at least ... 1 sentence can carry several
        // mentions, but never more than `n_ways * k` sentences are needed.
        assert!(stats.support_sentences.mean() >= 1.0);
        assert!(stats.support_sentences.mean() <= 5.0);
        // Every slot has at least K = 1 mention.
        assert!(stats.mentions_per_slot.mean() >= 1.0);
        // GENIA is dense (≈4 mentions/sentence): entanglement surplus must
        // be clearly positive — the paper's core observation.
        assert!(
            stats.surplus_fraction.mean() > 0.1,
            "surplus {:.3}",
            stats.surplus_fraction.mean()
        );
        assert!(stats.render().contains("support"));
    }

    #[test]
    fn five_shot_tasks_have_more_support() {
        let d = DatasetProfile::genia().generate(0.03).unwrap();
        let split = split_types(&d, (18, 8, 10), 42).unwrap();
        let one = EpisodeStats::sample(&EpisodeSampler::new(&split.train, 5, 1, 6).unwrap(), 10, 4)
            .unwrap();
        let five =
            EpisodeStats::sample(&EpisodeSampler::new(&split.train, 5, 5, 6).unwrap(), 10, 4)
                .unwrap();
        assert!(
            five.support_sentences.mean() > one.support_sentences.mean(),
            "5-shot should need more sentences: {} vs {}",
            five.support_sentences.mean(),
            one.support_sentences.mean()
        );
        assert!(five.mentions_per_slot.mean() >= 5.0);
    }
}
