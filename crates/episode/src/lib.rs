//! `fewner-episode` — N-way K-shot task construction for sequence labeling.
//!
//! Implements the paper's problem formulation (§3.1): a task 𝒯ᵢ is a
//! support/query pair over N entity classes with at least K support mentions
//! per class, assembled by the greedy-including procedure, with concrete
//! types shuffled onto abstract slots per task and out-of-task mentions
//! masked to `O`.

#![warn(missing_docs)]

pub mod sampler;
pub mod stats;
pub mod stream;
pub mod task;

pub use sampler::EpisodeSampler;
pub use stats::EpisodeStats;
pub use stream::StreamSampler;
pub use task::{EpisodeSentence, Task};
