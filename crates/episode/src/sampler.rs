//! The paper's greedy-including N-way K-shot task sampler (§3.1).
//!
//! Sequence labeling entangles classes — a sentence brings an unknown number
//! of mentions of unknown types — so tasks cannot be assembled by sampling K
//! instances per class as in image classification. The paper's procedure:
//!
//! 1. start with an empty support set;
//! 2. repeatedly pick a random sentence and **include it iff it brings gain
//!    for "way"** (a new class while fewer than N are selected) **or for
//!    "shot"** (a selected class still below K mentions);
//! 3. stop once N classes each have ≥ K support mentions;
//! 4. the terminating invariant: removing any support sentence drops some
//!    class below K (we enforce it with a final pruning pass, since a later
//!    inclusion can make an earlier one redundant).
//!
//! The query set is drawn from the remaining sentences that mention at
//! least one of the task's N classes; out-of-task mentions are masked to
//! `O` in both sets. Class→slot assignment is shuffled per task so models
//! can only bind slots through the support set.

use std::collections::HashMap;

use fewner_corpus::SplitView;
use fewner_obs::Tracer;
use fewner_text::{TagSet, TypeId};
use fewner_util::{Error, Result, Rng};

use crate::task::{EpisodeSentence, Task};

/// Samples N-way K-shot tasks from a [`SplitView`].
#[derive(Debug, Clone)]
pub struct EpisodeSampler<'a> {
    view: &'a SplitView,
    n_ways: usize,
    k_shots: usize,
    query_size: usize,
    /// Types with at least K mentions in the view — the only ones a task
    /// may select (rare tail types cannot support a K-shot task at all).
    viable: Vec<TypeId>,
}

impl<'a> EpisodeSampler<'a> {
    /// Creates a sampler; validates that the view can possibly support
    /// `n_ways` classes.
    pub fn new(
        view: &'a SplitView,
        n_ways: usize,
        k_shots: usize,
        query_size: usize,
    ) -> Result<EpisodeSampler<'a>> {
        if n_ways == 0 || k_shots == 0 || query_size == 0 {
            return Err(Error::InvalidConfig(
                "n_ways, k_shots and query_size must be positive".into(),
            ));
        }
        if view.types.len() < n_ways {
            return Err(Error::InvalidConfig(format!(
                "{}-way tasks need {} types; split has {}",
                n_ways,
                n_ways,
                view.types.len()
            )));
        }
        if view.sentences.is_empty() {
            return Err(Error::InvalidConfig("empty split view".into()));
        }
        let mut counts: std::collections::HashMap<TypeId, usize> = std::collections::HashMap::new();
        for s in &view.sentences {
            for span in &s.spans {
                *counts.entry(span.type_id).or_insert(0) += 1;
            }
        }
        let viable: Vec<TypeId> = view
            .types
            .iter()
            .copied()
            .filter(|t| counts.get(t).copied().unwrap_or(0) >= k_shots)
            .collect();
        if viable.len() < n_ways {
            return Err(Error::InvalidConfig(format!(
                "only {} of {} types have ≥ {} mentions; cannot build {}-way {}-shot tasks",
                viable.len(),
                view.types.len(),
                k_shots,
                n_ways,
                k_shots
            )));
        }
        Ok(EpisodeSampler {
            view,
            n_ways,
            k_shots,
            query_size,
            viable,
        })
    }

    /// Samples one task. Retries a few shuffles before giving up, then
    /// reports a construction error (e.g. a class-starved split).
    pub fn sample(&self, rng: &mut Rng) -> Result<Task> {
        self.sample_traced(rng, &Tracer::disabled())
    }

    /// [`sample`](Self::sample) with observability: records a
    /// `sampler/sample` span, draw/retry/failure counters and a support-set
    /// size histogram. Tracing never touches `rng`, so a traced draw is
    /// bitwise identical to an untraced one.
    pub fn sample_traced(&self, rng: &mut Rng, tracer: &Tracer) -> Result<Task> {
        const ATTEMPTS: usize = 8;
        let mut span = tracer.span("sampler/sample");
        span.set("ways", self.n_ways);
        span.set("shots", self.k_shots);
        let mut last_err = None;
        for attempt in 0..ATTEMPTS {
            match self.try_sample(rng) {
                Ok(task) => {
                    span.set("attempts", attempt + 1);
                    span.set("support", task.support.len());
                    span.set("query", task.query.len());
                    tracer.incr("sampler/tasks_drawn", 1);
                    tracer.incr("sampler/retries", attempt as u64);
                    tracer.observe("sampler/support_sentences", task.support.len() as f64);
                    return Ok(task);
                }
                Err(e) => last_err = Some(e),
            }
        }
        span.set("attempts", ATTEMPTS);
        span.set("failed", true);
        tracer.incr("sampler/retries", ATTEMPTS as u64);
        tracer.incr("sampler/failures", 1);
        Err(last_err
            .unwrap_or_else(|| Error::EpisodeConstruction("episode sampling failed".into())))
    }

    fn try_sample(&self, rng: &mut Rng) -> Result<Task> {
        let sentences = &self.view.sentences;
        let mut order: Vec<usize> = (0..sentences.len()).collect();
        rng.shuffle(&mut order);

        // Greedy-including pass.
        let mut selected: Vec<TypeId> = Vec::with_capacity(self.n_ways);
        let mut counts: HashMap<TypeId, usize> = HashMap::new();
        let mut support_idx: Vec<usize> = Vec::new();

        let complete = |selected: &Vec<TypeId>, counts: &HashMap<TypeId, usize>| {
            selected.len() == self.n_ways
                && selected
                    .iter()
                    .all(|t| counts.get(t).copied().unwrap_or(0) >= self.k_shots)
        };

        for &si in &order {
            if complete(&selected, &counts) {
                break;
            }
            let s = &sentences[si];
            let mut way_gain = false;
            let mut shot_gain = false;
            for t in s.present_types() {
                if selected.contains(&t) {
                    if counts.get(&t).copied().unwrap_or(0) < self.k_shots {
                        shot_gain = true;
                    }
                } else if selected.len() < self.n_ways && self.viable.contains(&t) {
                    way_gain = true;
                }
            }
            if !way_gain && !shot_gain {
                continue;
            }
            // Include: claim new (viable) classes up to capacity and count
            // mentions of selected classes.
            for t in s.present_types() {
                if !selected.contains(&t)
                    && selected.len() < self.n_ways
                    && self.viable.contains(&t)
                {
                    selected.push(t);
                }
            }
            for span in &s.spans {
                if selected.contains(&span.type_id) {
                    *counts.entry(span.type_id).or_insert(0) += 1;
                }
            }
            support_idx.push(si);
        }

        if !complete(&selected, &counts) {
            return Err(Error::EpisodeConstruction(format!(
                "could not assemble a {}-way {}-shot support set ({} classes reached)",
                self.n_ways,
                self.k_shots,
                selected.len()
            )));
        }

        // Pruning pass: enforce the paper's minimality invariant. Walk in
        // inclusion order and drop any sentence whose removal keeps every
        // selected class at ≥ K mentions.
        let mut kept: Vec<usize> = support_idx.clone();
        let mut i = 0;
        while i < kept.len() {
            let si = kept[i];
            let mut trial = counts.clone();
            for span in &sentences[si].spans {
                if selected.contains(&span.type_id) {
                    *trial.get_mut(&span.type_id).unwrap() -= 1;
                }
            }
            if selected.iter().all(|t| trial[t] >= self.k_shots) {
                counts = trial;
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        let support_idx = kept;

        // Slot assignment: shuffle so slot identity is task-local.
        let mut slot_types = selected.clone();
        rng.shuffle(&mut slot_types);
        let slot_of: HashMap<TypeId, usize> = slot_types
            .iter()
            .enumerate()
            .map(|(slot, &t)| (t, slot))
            .collect();
        let tag_set = TagSet::new(self.n_ways)?;

        // Query set: remaining sentences mentioning any selected class.
        let in_support: Vec<bool> = {
            let mut v = vec![false; sentences.len()];
            for &si in &support_idx {
                v[si] = true;
            }
            v
        };
        let mut query_pool: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&si| {
                !in_support[si]
                    && sentences[si]
                        .present_types()
                        .iter()
                        .any(|t| slot_of.contains_key(t))
            })
            .collect();
        if query_pool.is_empty() {
            return Err(Error::EpisodeConstruction(
                "no query sentences mention the task's classes".into(),
            ));
        }
        query_pool.truncate(self.query_size);

        let support = support_idx
            .iter()
            .map(|&si| EpisodeSentence::project(&sentences[si], &slot_of, &tag_set))
            .collect::<Result<Vec<_>>>()?;
        let query = query_pool
            .iter()
            .map(|&si| EpisodeSentence::project(&sentences[si], &slot_of, &tag_set))
            .collect::<Result<Vec<_>>>()?;

        Ok(Task {
            n_ways: self.n_ways,
            k_shots: self.k_shots,
            slot_types,
            support,
            query,
        })
    }

    /// Samples the paper's fixed evaluation set: `count` tasks derived from
    /// `seed` alone, so every method is scored on the *same* tasks (§4.2.1).
    pub fn eval_set(&self, seed: u64, count: usize) -> Result<Vec<Task>> {
        let mut parent = Rng::new(seed);
        let mut out = Vec::with_capacity(count);
        for episode in 0..count {
            let mut rng = parent.fork(episode as u64);
            out.push(self.sample(&mut rng)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};

    fn view() -> fewner_corpus::TypeSplit {
        let d = DatasetProfile::genia().generate(0.05).unwrap();
        split_types(&d, (18, 8, 10), 42).unwrap()
    }

    #[test]
    fn sampled_tasks_satisfy_all_invariants() {
        let split = view();
        let sampler = EpisodeSampler::new(&split.train, 5, 1, 10).unwrap();
        let mut rng = Rng::new(7);
        for _ in 0..20 {
            let task = sampler.sample(&mut rng).unwrap();
            task.validate().unwrap();
            assert_eq!(task.n_ways, 5);
            assert!(task.query.len() <= 10 && !task.query.is_empty());
            // Slot types must come from the split's type set.
            for t in &task.slot_types {
                assert!(split.train.types.contains(t));
            }
        }
    }

    #[test]
    fn five_shot_tasks_have_at_least_five_mentions_per_slot() {
        let split = view();
        let sampler = EpisodeSampler::new(&split.train, 5, 5, 10).unwrap();
        let mut rng = Rng::new(9);
        let task = sampler.sample(&mut rng).unwrap();
        for c in task.support_slot_counts() {
            assert!(c >= 5);
        }
        task.validate().unwrap();
    }

    #[test]
    fn eval_set_is_deterministic_and_method_independent() {
        let split = view();
        let sampler = EpisodeSampler::new(&split.test, 5, 1, 8).unwrap();
        let a = sampler.eval_set(123, 5).unwrap();
        let b = sampler.eval_set(123, 5).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.slot_types, y.slot_types);
            assert_eq!(x.support.len(), y.support.len());
            assert_eq!(x.query[0].tokens, y.query[0].tokens);
        }
        let c = sampler.eval_set(124, 5).unwrap();
        assert!(
            a.iter().zip(&c).any(
                |(x, y)| x.slot_types != y.slot_types || x.query[0].tokens != y.query[0].tokens
            ),
            "different seeds should differ"
        );
    }

    #[test]
    fn slot_assignment_is_shuffled_across_tasks() {
        let split = view();
        let sampler = EpisodeSampler::new(&split.train, 5, 1, 5).unwrap();
        let mut rng = Rng::new(11);
        let mut orderings = std::collections::HashSet::new();
        for _ in 0..12 {
            let t = sampler.sample(&mut rng).unwrap();
            let mut sorted = t.slot_types.clone();
            sorted.sort();
            if sorted == t.slot_types {
                continue;
            }
            orderings.insert(t.slot_types.clone());
        }
        assert!(!orderings.is_empty(), "slots never shuffled");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let split = view();
        assert!(EpisodeSampler::new(&split.train, 0, 1, 5).is_err());
        assert!(EpisodeSampler::new(&split.train, 5, 0, 5).is_err());
        assert!(EpisodeSampler::new(&split.train, 5, 1, 0).is_err());
        assert!(EpisodeSampler::new(&split.train, 99, 1, 5).is_err());
    }

    #[test]
    fn starved_split_reports_construction_error() {
        // A view with sentences mentioning only 2 of its 5 claimed types.
        let d = DatasetProfile::bionlp13cg().generate(0.005).unwrap();
        let split = split_types(&d, (2, 2, 12), 1).unwrap();
        // Asking for 5 ways from the train view (2 types) must fail fast.
        assert!(EpisodeSampler::new(&split.train, 5, 1, 5).is_err());
    }
}
