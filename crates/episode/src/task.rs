//! Episodic tasks: support/query sets over abstract class slots.

use std::collections::HashMap;

use fewner_text::span::SlotSpan;
use fewner_text::{spans_to_tags, Sentence, Tag, TagSet, TypeId};
use fewner_util::{Error, Result};

/// A sentence prepared for a task: surface tokens plus gold BIO tags over
/// the task's abstract slots (out-of-task entity types are masked to `O`).
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeSentence {
    /// Surface tokens.
    pub tokens: Vec<String>,
    /// Gold tags in the task's slot space.
    pub tags: Vec<Tag>,
    /// The underlying sentence (concrete types preserved, for reporting).
    pub source: Sentence,
}

impl EpisodeSentence {
    /// Projects a sentence into a task's slot space.
    pub fn project(
        sentence: &Sentence,
        slot_of: &HashMap<TypeId, usize>,
        tag_set: &TagSet,
    ) -> Result<EpisodeSentence> {
        let spans: Vec<SlotSpan> = sentence
            .spans
            .iter()
            .filter_map(|s| {
                slot_of.get(&s.type_id).map(|&slot| SlotSpan {
                    start: s.start,
                    end: s.end,
                    slot,
                })
            })
            .collect();
        let tags = spans_to_tags(sentence.len(), &spans, tag_set)?;
        Ok(EpisodeSentence {
            tokens: sentence.tokens.clone(),
            tags,
            source: sentence.clone(),
        })
    }

    /// Sentence length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True for zero-token sentences (never produced by the samplers).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of in-task gold mentions.
    pub fn mention_count(&self) -> usize {
        fewner_text::tags_to_spans(&self.tags).len()
    }
}

/// One N-way K-shot task (𝒯ᵢ in the paper): a support set for adaptation
/// and a query set for evaluation, over N abstract class slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// N.
    pub n_ways: usize,
    /// K.
    pub k_shots: usize,
    /// Concrete type assigned to each slot (shuffled per task).
    pub slot_types: Vec<TypeId>,
    /// 𝒟ˢᵖᵗ.
    pub support: Vec<EpisodeSentence>,
    /// 𝒟^qry (disjoint from the support set).
    pub query: Vec<EpisodeSentence>,
}

impl Task {
    /// The task's tag inventory (`2N + 1` tags).
    pub fn tag_set(&self) -> TagSet {
        TagSet::new(self.n_ways).expect("task has ≥ 1 way")
    }

    /// Validates the N-way K-shot invariants:
    /// support and query are disjoint, every slot has ≥ K support mentions,
    /// and the support set is *minimal* (dropping any sentence starves some
    /// slot below K — the terminating condition of §3.1).
    pub fn validate(&self) -> Result<()> {
        if self.slot_types.len() != self.n_ways {
            return Err(Error::EpisodeConstruction(format!(
                "{} slot types for {} ways",
                self.slot_types.len(),
                self.n_ways
            )));
        }
        let counts = self.support_slot_counts();
        if let Some((slot, &c)) = counts.iter().enumerate().find(|(_, &c)| c < self.k_shots) {
            return Err(Error::EpisodeConstruction(format!(
                "slot {slot} has {c} < K = {} support mentions",
                self.k_shots
            )));
        }
        for (i, _) in self.support.iter().enumerate() {
            let mut without = counts.clone();
            for span in fewner_text::tags_to_spans(&self.support[i].tags) {
                without[span.slot] -= 1;
            }
            if without.iter().all(|&c| c >= self.k_shots) {
                return Err(Error::EpisodeConstruction(format!(
                    "support sentence {i} is redundant; support set not minimal"
                )));
            }
        }
        for q in &self.query {
            if self
                .support
                .iter()
                .any(|s| s.tokens == q.tokens && s.tags == q.tags)
            {
                return Err(Error::EpisodeConstruction(
                    "query sentence also in support".into(),
                ));
            }
        }
        Ok(())
    }

    /// Per-slot mention counts in the support set.
    pub fn support_slot_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_ways];
        for s in &self.support {
            for span in fewner_text::tags_to_spans(&s.tags) {
                counts[span.slot] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_text::EntitySpan;

    fn sentence(words: &[&str], spans: Vec<EntitySpan>) -> Sentence {
        Sentence::new(words.iter().map(|s| s.to_string()).collect(), spans).unwrap()
    }

    #[test]
    fn projection_maps_and_masks() {
        let s = sentence(
            &["a", "b", "c", "d"],
            vec![
                EntitySpan::new(0, 1, TypeId(10)).unwrap(),
                EntitySpan::new(2, 4, TypeId(99)).unwrap(), // out of task
            ],
        );
        let slot_of: HashMap<TypeId, usize> = [(TypeId(10), 1)].into_iter().collect();
        let ts = TagSet::new(2).unwrap();
        let ep = EpisodeSentence::project(&s, &slot_of, &ts).unwrap();
        assert_eq!(ep.tags, vec![Tag::B(1), Tag::O, Tag::O, Tag::O]);
        assert_eq!(ep.mention_count(), 1);
        assert_eq!(ep.source.spans.len(), 2, "source keeps concrete spans");
    }

    fn mini_task() -> Task {
        let ts = TagSet::new(2).unwrap();
        let slot_of: HashMap<TypeId, usize> =
            [(TypeId(0), 0), (TypeId(1), 1)].into_iter().collect();
        let s1 = sentence(
            &["x", "y"],
            vec![
                EntitySpan::new(0, 1, TypeId(0)).unwrap(),
                EntitySpan::new(1, 2, TypeId(1)).unwrap(),
            ],
        );
        let q1 = sentence(&["z", "w"], vec![EntitySpan::new(0, 1, TypeId(0)).unwrap()]);
        Task {
            n_ways: 2,
            k_shots: 1,
            slot_types: vec![TypeId(0), TypeId(1)],
            support: vec![EpisodeSentence::project(&s1, &slot_of, &ts).unwrap()],
            query: vec![EpisodeSentence::project(&q1, &slot_of, &ts).unwrap()],
        }
    }

    #[test]
    fn valid_task_passes_validation() {
        mini_task().validate().unwrap();
    }

    #[test]
    fn starving_a_slot_fails_validation() {
        let mut t = mini_task();
        t.k_shots = 2;
        assert!(matches!(t.validate(), Err(Error::EpisodeConstruction(_))));
    }

    #[test]
    fn redundant_support_fails_minimality() {
        let mut t = mini_task();
        // Duplicate the support sentence: either copy alone satisfies K = 1.
        t.support.push(t.support[0].clone());
        assert!(t.validate().is_err());
    }

    #[test]
    fn query_overlap_fails_validation() {
        let mut t = mini_task();
        t.query.push(t.support[0].clone());
        assert!(t.validate().is_err());
    }
}
