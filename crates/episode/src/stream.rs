//! Window sampling over a streaming corpus.
//!
//! [`EpisodeSampler`](crate::sampler::EpisodeSampler) shuffles the full
//! index range of a materialized split — impossible when the corpus streams
//! in chunks. [`StreamSampler`] keeps a *bounded resident window* of routed
//! sentences over a [`CorpusSource`] and runs the paper's greedy-including
//! procedure inside the window, sliding forward as tasks are drawn.
//!
//! # Determinism and resume
//!
//! Window advancement is **RNG-free and draw-driven**: every
//! [`StreamSampler::sample_traced`] call consumes a fixed number of raw
//! sentences (the initial window fill, then one stride per call, plus one
//! stride per non-viable-window retry — a function of generated content
//! only). The whole sampler state is therefore captured by two values:
//!
//! * the monotonic raw-sentence [`StreamCursor`] (chunk index +
//!   intra-chunk position), and
//! * the caller's sampling [`Rng`] (shuffles within the window).
//!
//! [`StreamSampler::cursor`] / [`StreamSampler::seek`] round-trip that
//! cursor through `TrainingSnapshot`, so a killed-and-resumed run replays
//! the same windows and draws the same tasks bitwise, and sharded replicas
//! advancing in lockstep see identical windows at every iteration.

use std::collections::VecDeque;

use fewner_corpus::{CorpusChunk, CorpusSource, SplitView, StreamCursor, TypePartition};
use fewner_obs::Tracer;
use fewner_text::Sentence;
use fewner_util::{Error, Result, Rng};

use crate::sampler::EpisodeSampler;
use crate::task::Task;

/// Samples N-way K-shot tasks from a bounded window over a sentence stream.
#[derive(Debug)]
pub struct StreamSampler<S: CorpusSource> {
    source: S,
    partition: TypePartition,
    n_ways: usize,
    k_shots: usize,
    query_size: usize,
    /// Raw sentences spanned by the resident window.
    window: usize,
    /// Raw sentences consumed per task draw once the window is full.
    stride: usize,
    /// Raw sentences consumed since the start of the stream (monotonic;
    /// wraps over the corpus modulo its length for multi-epoch runs).
    consumed: u64,
    /// Routed sentences whose raw index is in `[consumed - window, consumed)`,
    /// tagged with that raw index for eviction.
    buffer: VecDeque<(u64, Sentence)>,
    /// Most recently generated chunk (sentences are consumed in order, so
    /// one resident chunk suffices).
    chunk: Option<CorpusChunk>,
    high_water: usize,
}

impl<S: CorpusSource> StreamSampler<S> {
    /// A window sampler drawing `n_ways`-way `k_shots`-shot tasks for
    /// `partition` from `source`.
    ///
    /// `window` is the raw-sentence span of the resident window (the memory
    /// bound); `stride` is how many raw sentences each draw slides it.
    pub fn new(
        source: S,
        partition: TypePartition,
        n_ways: usize,
        k_shots: usize,
        query_size: usize,
        window: usize,
        stride: usize,
    ) -> Result<StreamSampler<S>> {
        if n_ways == 0 || k_shots == 0 || query_size == 0 {
            return Err(Error::InvalidConfig(
                "n_ways, k_shots and query_size must be positive".into(),
            ));
        }
        if window == 0 || stride == 0 {
            return Err(Error::InvalidConfig(
                "stream window and stride must be positive".into(),
            ));
        }
        if source.total_sentences() == 0 {
            return Err(Error::InvalidConfig("empty corpus stream".into()));
        }
        if partition.types.len() < n_ways {
            return Err(Error::InvalidConfig(format!(
                "{}-way tasks need {} types; partition has {}",
                n_ways,
                n_ways,
                partition.types.len()
            )));
        }
        Ok(StreamSampler {
            source,
            partition,
            n_ways,
            k_shots,
            query_size,
            window,
            stride,
            consumed: 0,
            buffer: VecDeque::new(),
            chunk: None,
            high_water: 0,
        })
    }

    /// The resumable stream position. Persist this next to the sampling RNG
    /// and hand both back to [`seek`](Self::seek) + the same RNG state to
    /// continue a run bitwise-identically.
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor::at(self.consumed, self.source.chunk_size())
    }

    /// Restores the sampler to `cursor`: regenerates the bounded raw range
    /// the window spanned at that position and rebuilds the resident buffer,
    /// touching only `window / chunk_size + 1` chunks.
    pub fn seek(&mut self, cursor: StreamCursor, tracer: &Tracer) -> Result<()> {
        let consumed = cursor.consumed(self.source.chunk_size());
        self.buffer.clear();
        self.chunk = None;
        for raw in consumed.saturating_sub(self.window as u64)..consumed {
            self.ingest(raw, tracer)?;
        }
        self.consumed = consumed;
        self.record_residency(tracer);
        Ok(())
    }

    /// Largest number of routed sentences ever resident at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The underlying source (e.g. to read generation statistics).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Generates and routes raw sentence `raw` into the buffer.
    fn ingest(&mut self, raw: u64, tracer: &Tracer) -> Result<()> {
        let total = self.source.total_sentences() as u64;
        let idx = (raw % total) as usize;
        let (ci, pos) = (
            idx / self.source.chunk_size(),
            idx % self.source.chunk_size(),
        );
        if self.chunk.as_ref().map(|c| c.index) != Some(ci) {
            self.chunk = Some(self.source.read_chunk(ci)?);
            tracer.incr("corpus/chunks_generated", 1);
        }
        let s = &self.chunk.as_ref().expect("chunk cached above").sentences[pos];
        if let Some(routed) = self.partition.route(s) {
            self.buffer.push_back((raw, routed));
        }
        Ok(())
    }

    /// Consumes `n` raw sentences and evicts entries that fell out of the
    /// window. RNG-free by construction — this is what keeps sharded
    /// replicas and resumed runs in lockstep.
    fn advance(&mut self, n: u64, tracer: &Tracer) -> Result<()> {
        for _ in 0..n {
            self.ingest(self.consumed, tracer)?;
            self.consumed += 1;
        }
        let min = self.consumed.saturating_sub(self.window as u64);
        while self.buffer.front().is_some_and(|(raw, _)| *raw < min) {
            self.buffer.pop_front();
        }
        self.record_residency(tracer);
        Ok(())
    }

    fn record_residency(&mut self, tracer: &Tracer) {
        self.high_water = self.high_water.max(self.buffer.len());
        tracer.observe("corpus/window_resident", self.buffer.len() as f64);
    }

    /// The current window as a [`SplitView`] for the greedy sampler.
    fn window_view(&self) -> SplitView {
        SplitView {
            types: self.partition.types.clone(),
            sentences: self.buffer.iter().map(|(_, s)| s.clone()).collect(),
        }
    }

    /// Draws one task, sliding the window. Equivalent to
    /// [`sample_traced`](Self::sample_traced) with tracing disabled.
    pub fn sample(&mut self, rng: &mut Rng) -> Result<Task> {
        self.sample_traced(rng, &Tracer::disabled())
    }

    /// Draws one task from the resident window, advancing the stream by one
    /// stride first (the first draw fills the whole window). Windows that
    /// cannot support an N-way K-shot task slide forward and retry a
    /// bounded number of times.
    pub fn sample_traced(&mut self, rng: &mut Rng, tracer: &Tracer) -> Result<Task> {
        const WINDOW_RETRIES: usize = 8;
        let fill = if self.consumed == 0 {
            self.window as u64
        } else {
            self.stride as u64
        };
        self.advance(fill, tracer)?;
        let mut last_err = None;
        for _ in 0..WINDOW_RETRIES {
            let view = self.window_view();
            match EpisodeSampler::new(&view, self.n_ways, self.k_shots, self.query_size)
                .and_then(|s| s.sample_traced(rng, tracer))
            {
                Ok(task) => return Ok(task),
                Err(e) => last_err = Some(e),
            }
            // Slide to fresher sentences; deterministic (no RNG involved).
            self.advance(self.stride as u64, tracer)?;
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{partition_type_ids, DatasetProfile};
    use fewner_text::TypeId;

    fn sampler(window: usize, stride: usize) -> StreamSampler<fewner_corpus::StreamingCorpus> {
        let p = DatasetProfile::genia();
        let source = p.stream(0.05, None, 64).unwrap();
        let ids: Vec<TypeId> = source.types().iter().map(|t| t.id).collect();
        let (train, _, _) = partition_type_ids(ids, (18, 8, 10), 42).unwrap();
        StreamSampler::new(source, train, 5, 1, 10, window, stride).unwrap()
    }

    #[test]
    fn stream_tasks_satisfy_episode_invariants() {
        let mut s = sampler(400, 40);
        let mut rng = Rng::new(7);
        for _ in 0..6 {
            let task = s.sample(&mut rng).unwrap();
            task.validate().unwrap();
            assert_eq!(task.n_ways, 5);
        }
        assert!(s.high_water() > 0);
        assert!(
            s.high_water() <= 400,
            "residency {} exceeds window",
            s.high_water()
        );
    }

    #[test]
    fn snapshot_resume_mid_stream_is_bitwise_identical() {
        let mut straight = sampler(300, 30);
        let mut rng = Rng::new(13);
        let mut tasks = Vec::new();
        for _ in 0..4 {
            tasks.push(straight.sample(&mut rng).unwrap());
        }

        // Replay the first two draws, snapshot, resume in a fresh sampler.
        let mut first = sampler(300, 30);
        let mut rng2 = Rng::new(13);
        for _ in 0..2 {
            first.sample(&mut rng2).unwrap();
        }
        let cursor = first.cursor();
        let rng_state = rng2.state();
        drop(first);

        let mut resumed = sampler(300, 30);
        resumed.seek(cursor, &Tracer::disabled()).unwrap();
        let mut rng3 = Rng::from_state(rng_state);
        for expect in &tasks[2..] {
            let task = resumed.sample(&mut rng3).unwrap();
            assert_eq!(task.slot_types, expect.slot_types);
            assert_eq!(task.support, expect.support);
            assert_eq!(task.query, expect.query);
        }
    }

    #[test]
    fn chunk_size_does_not_change_drawn_tasks() {
        let p = DatasetProfile::genia();
        let ids: Vec<TypeId> = p.inventory().iter().map(|t| t.id).collect();
        let mut drawn: Option<Vec<Task>> = None;
        for chunk in [16usize, 64, 1024] {
            let source = p.stream(0.05, None, chunk).unwrap();
            let (train, _, _) = partition_type_ids(ids.clone(), (18, 8, 10), 42).unwrap();
            let mut s = StreamSampler::new(source, train, 5, 1, 10, 300, 30).unwrap();
            let mut rng = Rng::new(21);
            let tasks: Vec<Task> = (0..3).map(|_| s.sample(&mut rng).unwrap()).collect();
            match &drawn {
                None => drawn = Some(tasks),
                Some(prev) => assert_eq!(prev, &tasks, "chunk size {chunk} diverged"),
            }
        }
    }

    #[test]
    fn stream_wraps_for_multi_epoch_runs() {
        let p = DatasetProfile::genia();
        // Small corpus, large appetite: draws must wrap past the end.
        let source = p.stream(0.02, None, 32).unwrap();
        let total = source.total_sentences();
        let ids: Vec<TypeId> = source.types().iter().map(|t| t.id).collect();
        let (train, _, _) = partition_type_ids(ids, (18, 8, 10), 42).unwrap();
        let mut s = StreamSampler::new(source, train, 5, 1, 6, 200, 50).unwrap();
        let mut rng = Rng::new(3);
        let wanted = 2 + total / 50;
        for _ in 0..wanted {
            s.sample(&mut rng).unwrap();
        }
        assert!(
            s.cursor().consumed(32) > total as u64,
            "stream never wrapped"
        );
    }

    #[test]
    fn invalid_stream_configs_are_rejected() {
        let p = DatasetProfile::genia();
        let ids: Vec<TypeId> = p.inventory().iter().map(|t| t.id).collect();
        let (train, _, _) = partition_type_ids(ids, (18, 8, 10), 42).unwrap();
        let source = p.stream(0.02, None, 32).unwrap();
        assert!(
            StreamSampler::new(source.clone(), train.clone(), 5, 1, 10, 0, 10).is_err(),
            "zero window"
        );
        assert!(
            StreamSampler::new(source.clone(), train.clone(), 5, 1, 10, 100, 0).is_err(),
            "zero stride"
        );
        assert!(
            StreamSampler::new(source, TypePartition::new(vec![]), 5, 1, 10, 100, 10).is_err(),
            "partition smaller than ways"
        );
    }
}
