//! Exact FEWNER meta-gradients via finite-difference Hessian-vector
//! products.
//!
//! The outer objective is `L_qry(θ, φ_K(θ))` where
//! `φ_k = φ_{k−1} − α ∇_φ L_spt(θ, φ_{k−1})` (Eq. 5–6). Its exact θ-gradient
//! is the first-order term `∂L_qry/∂θ` *plus* a correction that
//! back-propagates `v_K = ∂L_qry/∂φ_K` through the unrolled inner loop:
//!
//! ```text
//! for k = K .. 1:
//!     correction −= α · H_θφ(θ, φ_{k−1}) · v_k
//!     v_{k−1}     = v_k − α · H_φφ(θ, φ_{k−1}) · v_k
//! ```
//!
//! Both Hessian-vector products act along the *low-dimensional* φ direction
//! — the paper's observation that FEWNER "does not need the second order
//! gradient computation with respect to θ, but only φ". That makes them
//! cheap to obtain without a higher-order tape: a central difference of the
//! *first-order* gradient along `v̂`,
//!
//! ```text
//! H(θ,φ)·v ≈ ‖v‖ · (∇L(φ + ε·v̂) − ∇L(φ − ε·v̂)) / (2ε)
//! ```
//!
//! costs two extra forward/backward passes per inner step and yields both
//! `H_φφ v` (from the φ-gradient) and `H_θφ v` (from the θ-gradient) at
//! once.

use fewner_models::{Backbone, LabeledSentence};
use fewner_tensor::{Array, Graph, ParamGrads, ParamStore};
use fewner_text::TagSet;
use fewner_util::{Result, Rng};

/// Gradients of the support loss w.r.t. (θ, φ) at a given φ value.
fn grads_at(
    backbone: &Backbone,
    theta: &ParamStore,
    support: &[LabeledSentence],
    tags: &TagSet,
    phi_value: &Array,
) -> Result<(ParamGrads, Array)> {
    let (mut phi_store, phi_id) = backbone.new_context();
    phi_store.set(phi_id, phi_value.clone());
    let g = Graph::eval();
    let phi = g.param(&phi_store, phi_id);
    let mut rng = Rng::new(0); // dropout-free, like the inner loop
    let loss = backbone.batch_loss(&g, theta, Some(phi), support, tags, &mut rng);
    let grads = g.backward(loss)?;
    let theta_grads = grads.for_store(theta);
    let phi_grad = grads
        .for_store(&phi_store)
        .get(phi_id)
        .cloned()
        .unwrap_or_else(|| Array::zeros(phi_value.rows(), phi_value.cols()));
    Ok((theta_grads, phi_grad))
}

/// Computes the exact-meta-gradient correction for θ (to be *added* to the
/// first-order term), given the inner-loop φ trajectory and
/// `v = ∂L_qry/∂φ_K`.
#[allow(clippy::too_many_arguments)]
pub fn theta_correction(
    backbone: &Backbone,
    theta: &ParamStore,
    support: &[LabeledSentence],
    tags: &TagSet,
    trajectory: &[Array],
    query_phi_grad: &Array,
    inner_lr: f32,
    epsilon: f32,
) -> Result<ParamGrads> {
    let mut correction = ParamGrads::zeros_like(theta);
    let mut v = query_phi_grad.clone();

    for phi_prev in trajectory.iter().rev() {
        let norm = v.norm_sq().sqrt();
        if norm < 1e-12 {
            break;
        }
        // Unit direction along v.
        let mut dir = v.clone();
        dir.scale_in_place(1.0 / norm);

        let mut phi_plus = phi_prev.clone();
        phi_plus.axpy(epsilon, &dir);
        let mut phi_minus = phi_prev.clone();
        phi_minus.axpy(-epsilon, &dir);

        let (theta_plus, phi_g_plus) = grads_at(backbone, theta, support, tags, &phi_plus)?;
        let (theta_minus, phi_g_minus) = grads_at(backbone, theta, support, tags, &phi_minus)?;

        let scale = norm / (2.0 * epsilon);

        // correction −= α · H_θφ v
        let mut h_theta = theta_plus;
        h_theta.axpy(-1.0, &theta_minus);
        h_theta.scale(scale);
        correction.axpy(-inner_lr, &h_theta);

        // v ← v − α · H_φφ v
        let mut h_phi = phi_g_plus;
        h_phi.axpy(-1.0, &phi_g_minus);
        h_phi.scale_in_place(scale);
        v.axpy(-inner_lr, &h_phi);
    }
    Ok(correction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};
    use fewner_text::embed::EmbeddingSpec;

    /// On a tiny problem, the FD correction must closely match the exact
    /// correction obtained by differentiating the unrolled inner loop
    /// numerically: d/dθ [L_qry(θ, φ_1(θ))] − ∂L_qry/∂θ |_{φ_1 fixed}.
    #[test]
    fn correction_matches_full_numeric_meta_gradient() {
        let d = fewner_corpus::DatasetProfile::bionlp13cg()
            .generate(0.005)
            .unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 12,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let mut rng = Rng::new(3);
        let mut theta = ParamStore::new();
        let cfg = BackboneConfig {
            word_dim: 12,
            char_dim: 4,
            char_filters: 3,
            char_widths: vec![2],
            hidden: 5,
            phi_dim: 4,
            slot_ctx_dim: 2,
            conditioning: Conditioning::Film,
            dropout: 0.0,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways: 2 },
        };
        let backbone = Backbone::new(cfg, &enc, &mut theta, &mut rng).unwrap();
        let tags = fewner_text::TagSet::new(2).unwrap();

        let sent = enc.encode(&["alpha".into(), "beta".into(), "gamma".into()]);
        let support: Vec<LabeledSentence> = vec![(sent.clone(), vec![0, 1, 2])];
        let query: Vec<LabeledSentence> = vec![(sent, vec![1, 2, 0])];

        let alpha = 0.5f32; // large inner LR so curvature terms matter
        let inner_steps = 1usize;

        // Closure: full objective F(θ) = L_qry(θ, φ_1(θ)).
        let objective = |theta: &ParamStore| -> f32 {
            let (mut phi_store, phi_id) = backbone.new_context();
            let mut sgd = fewner_tensor::Sgd::new(alpha);
            for _ in 0..inner_steps {
                let g = Graph::eval();
                let phi = g.param(&phi_store, phi_id);
                let mut r = Rng::new(0);
                let loss = backbone.batch_loss(&g, theta, Some(phi), &support, &tags, &mut r);
                let grads = g.backward(loss).unwrap().for_store(&phi_store);
                sgd.step(&mut phi_store, &grads).unwrap();
            }
            let g = Graph::eval();
            let phi = g.param(&phi_store, phi_id);
            let mut r = Rng::new(0);
            let loss = backbone.batch_loss(&g, theta, Some(phi), &query, &tags, &mut r);
            g.value(loss).scalar_value()
        };

        // Analytic: first-order term + FD correction.
        let (mut phi_store, phi_id) = backbone.new_context();
        let mut trajectory = Vec::new();
        let mut sgd = fewner_tensor::Sgd::new(alpha);
        for _ in 0..inner_steps {
            trajectory.push((**phi_store.value(phi_id)).clone());
            let g = Graph::eval();
            let phi = g.param(&phi_store, phi_id);
            let mut r = Rng::new(0);
            let loss = backbone.batch_loss(&g, &theta, Some(phi), &support, &tags, &mut r);
            let grads = g.backward(loss).unwrap().for_store(&phi_store);
            sgd.step(&mut phi_store, &grads).unwrap();
        }
        let g = Graph::eval();
        let phi = g.param(&phi_store, phi_id);
        let mut r = Rng::new(0);
        let loss = backbone.batch_loss(&g, &theta, Some(phi), &query, &tags, &mut r);
        let grads = g.backward(loss).unwrap();
        let first_order = grads.for_store(&theta);
        let v = grads.for_store(&phi_store).get(phi_id).cloned().unwrap();
        let correction = theta_correction(
            &backbone,
            &theta,
            &support,
            &tags,
            &trajectory,
            &v,
            alpha,
            5e-3,
        )
        .unwrap();

        // Check a handful of scalar parameters (bias entries are cheap and
        // well-conditioned for FD): film generator weight + GRU bias.
        let check_ids = [
            theta.get("film.w").unwrap(),
            theta.get("bigru.fwd.b").unwrap(),
        ];
        let mut checked = 0;
        for id in check_ids {
            let base = (**theta.value(id)).clone();
            for idx in 0..base.len().min(3) {
                let eps = 2e-2f32;
                let mut tp = theta.clone();
                let mut arr = base.clone();
                arr.data_mut()[idx] += eps;
                tp.set(id, arr);
                let fp = objective(&tp);
                let mut tm = theta.clone();
                let mut arr = base.clone();
                arr.data_mut()[idx] -= eps;
                tm.set(id, arr);
                let fm = objective(&tm);
                let numeric = (fp - fm) / (2.0 * eps);

                let fo = first_order.get(id).map(|a| a.data()[idx]).unwrap_or(0.0);
                let corr = correction.get(id).map(|a| a.data()[idx]).unwrap_or(0.0);
                let analytic = fo + corr;
                let tol = 0.05 + 0.12 * numeric.abs().max(analytic.abs());
                assert!(
                    (analytic - numeric).abs() < tol,
                    "param {idx}: analytic {analytic} (fo {fo} + corr {corr}) vs numeric {numeric}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 4);
    }

    #[test]
    fn zero_query_gradient_gives_zero_correction() {
        let d = fewner_corpus::DatasetProfile::bionlp13cg()
            .generate(0.005)
            .unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 12,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let mut rng = Rng::new(3);
        let mut theta = ParamStore::new();
        let cfg = BackboneConfig {
            word_dim: 12,
            char_dim: 4,
            char_filters: 3,
            char_widths: vec![2],
            hidden: 5,
            phi_dim: 4,
            slot_ctx_dim: 2,
            conditioning: Conditioning::Film,
            dropout: 0.0,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways: 2 },
        };
        let backbone = Backbone::new(cfg, &enc, &mut theta, &mut rng).unwrap();
        let tags = fewner_text::TagSet::new(2).unwrap();
        let sent = enc.encode(&["alpha".into()]);
        let support: Vec<LabeledSentence> = vec![(sent, vec![0])];
        let correction = theta_correction(
            &backbone,
            &theta,
            &support,
            &tags,
            &[Array::zeros(1, 4)],
            &Array::zeros(1, 4),
            0.1,
            1e-2,
        )
        .unwrap();
        assert_eq!(correction.global_norm(), 0.0);
    }
}
