//! The serving surface: adapt once, predict many times.
//!
//! The paper's cost argument (§4.5.2) is that adapting the low-dimensional
//! context parameters φ is cheap *relative to training* — which only pays
//! off operationally if an adapted φ is **reused** across requests instead
//! of recomputed per call. This module makes that reuse structural:
//!
//! * [`Fewner::adapt`] runs the inner loop once and returns an
//!   [`AdaptedCtx`] — a first-class, serialisable handle to the adapted φ.
//! * [`Fewner::predict`] decodes any number of query sentences under a
//!   borrowed [`AdaptedCtx`] on the gradient-free `Infer` executor.
//! * [`ServeOptions`] carries the cross-cutting serving knobs (tracer,
//!   cache policy, micro-batch size) so entry points stay stable as knobs
//!   accrue.
//!
//! The split is the cache boundary the `fewner-serve` daemon builds on: an
//! `AdaptedCtx` can be held in an LRU cache keyed by `(tenant, task)`,
//! persisted through the durable-write layer, and reloaded after a restart
//! bitwise-identically — a reloaded context decodes exactly like the fresh
//! adapt that produced it.

use std::path::{Path, PathBuf};

use fewner_models::LabeledSentence;
use fewner_obs::Tracer;
use fewner_tensor::{Array, ParamId, ParamStore};
use fewner_text::TagSet;
use fewner_util::{Deadline, Error, FromJson, Json, Result, ToJson};

/// Eviction and persistence policy for an adapted-context (φ) cache.
///
/// Plain data: the policy lives here so every layer (core API, serving
/// daemon, CLI flags) speaks the same vocabulary; the cache *mechanism*
/// lives in `fewner-serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePolicy {
    /// Maximum resident contexts before least-recently-used eviction.
    pub capacity: usize,
    /// Time-to-live in nanoseconds; `None` = contexts never expire.
    pub ttl_ns: Option<u64>,
    /// Directory for durable φ persistence; `None` = memory only.
    pub persist_dir: Option<PathBuf>,
}

impl CachePolicy {
    /// An LRU policy holding at most `capacity` contexts (≥ 1 enforced),
    /// with no TTL and no persistence.
    pub fn lru(capacity: usize) -> CachePolicy {
        CachePolicy {
            capacity: capacity.max(1),
            ttl_ns: None,
            persist_dir: None,
        }
    }

    /// Expires contexts `secs` seconds after (re-)insertion.
    pub fn ttl_secs(mut self, secs: u64) -> CachePolicy {
        self.ttl_ns = Some(secs.saturating_mul(1_000_000_000));
        self
    }

    /// Expires contexts `ns` nanoseconds after (re-)insertion (tests drive
    /// this with a manual clock).
    pub fn ttl_ns(mut self, ns: u64) -> CachePolicy {
        self.ttl_ns = Some(ns);
        self
    }

    /// Persists adapted contexts under `dir` so a restarted server can skip
    /// re-adaptation for warm keys.
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> CachePolicy {
        self.persist_dir = Some(dir.into());
        self
    }
}

impl Default for CachePolicy {
    /// 64 resident contexts, no TTL, no persistence.
    fn default() -> CachePolicy {
        CachePolicy::lru(64)
    }
}

/// Builder-style options shared by every serving entry point.
///
/// ```
/// use fewner_core::serve::{CachePolicy, ServeOptions};
/// let opts = ServeOptions::new()
///     .cache(CachePolicy::lru(128).ttl_secs(300))
///     .batch(64);
/// assert_eq!(opts.batch_size(), 64);
/// ```
#[derive(Clone, Default)]
pub struct ServeOptions {
    tracer: Tracer,
    cache: CachePolicy,
    batch: usize,
    deadline: Option<Deadline>,
}

impl ServeOptions {
    /// Defaults: disabled tracer, [`CachePolicy::default`], micro-batches
    /// of up to 32 sentences, no deadline.
    pub fn new() -> ServeOptions {
        ServeOptions {
            tracer: Tracer::disabled(),
            cache: CachePolicy::default(),
            batch: 32,
            deadline: None,
        }
    }

    /// Routes serve spans and counters through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> ServeOptions {
        self.tracer = tracer;
        self
    }

    /// Sets the φ-cache policy.
    pub fn cache(mut self, cache: CachePolicy) -> ServeOptions {
        self.cache = cache;
        self
    }

    /// Caps cross-request micro-batches at `n` sentences (≥ 1 enforced).
    pub fn batch(mut self, n: usize) -> ServeOptions {
        self.batch = n.max(1);
        self
    }

    /// The tracer serving code records through.
    pub fn tracer_ref(&self) -> &Tracer {
        &self.tracer
    }

    /// The φ-cache policy.
    pub fn cache_policy(&self) -> &CachePolicy {
        &self.cache
    }

    /// Maximum sentences per micro-batch.
    pub fn batch_size(&self) -> usize {
        self.batch.max(1)
    }

    /// A per-request copy of these options carrying `deadline`. The daemon
    /// clones its base options per request so the long-lived configuration
    /// stays immutable while the budget travels with the work.
    pub fn with_deadline(&self, deadline: Option<Deadline>) -> ServeOptions {
        let mut opts = self.clone();
        opts.deadline = deadline;
        opts
    }

    /// The active request's time budget, if any.
    pub fn deadline(&self) -> Option<&Deadline> {
        self.deadline.as_ref()
    }
}

/// Format version of persisted adapted contexts. Version 2 added the
/// `revision` counter and the retained support set behind incremental
/// [`Fewner::extend`]; version-1 files still load (empty retained support,
/// revision 1).
///
/// [`Fewner::extend`]: crate::Fewner::extend
pub const ADAPTED_CTX_VERSION: u32 = 2;

/// An adapted task context: the φ produced by the inner loop, packaged as a
/// first-class value.
///
/// This is the unit the serving daemon caches, persists, and shares across
/// requests. It is deliberately *small* — for the paper's configurations φ
/// is a few hundred floats — which is what makes caching millions of task
/// contexts plausible where caching full models is not.
///
/// A context also remembers the (encoded) support set it was adapted on and
/// a monotonically increasing `revision`, so arriving support can be folded
/// in incrementally: [`Fewner::extend`] warm-starts from the current φ over
/// the merged support and returns a successor context with `revision + 1`.
///
/// [`Fewner::extend`]: crate::Fewner::extend
#[derive(Debug, Clone)]
pub struct AdaptedCtx {
    n_ways: usize,
    phi_store: ParamStore,
    phi_id: ParamId,
    revision: u32,
    support: Vec<LabeledSentence>,
}

impl AdaptedCtx {
    /// Packages an adapted φ store (one `"phi"` parameter) with its task
    /// arity, the support it was adapted on, and its revision number.
    pub(crate) fn new(
        n_ways: usize,
        phi_store: ParamStore,
        phi_id: ParamId,
        support: Vec<LabeledSentence>,
        revision: u32,
    ) -> AdaptedCtx {
        AdaptedCtx {
            n_ways,
            phi_store,
            phi_id,
            revision,
            support,
        }
    }

    /// The task's way count (fixes the tag inventory).
    pub fn n_ways(&self) -> usize {
        self.n_ways
    }

    /// How many times this context has been (re-)adapted: `1` for a fresh
    /// adapt, incremented by every [`Fewner::extend`].
    ///
    /// [`Fewner::extend`]: crate::Fewner::extend
    pub fn revision(&self) -> u32 {
        self.revision
    }

    /// The encoded support set the current φ was adapted on (merged across
    /// every extension). Version-1 files reload with this empty — such a
    /// context still predicts bitwise-identically, but an extension starts
    /// its merged support from the new arrivals alone.
    pub fn support(&self) -> &[LabeledSentence] {
        &self.support
    }

    /// The task's BIO tag inventory (`2N + 1` tags).
    pub fn tag_set(&self) -> TagSet {
        TagSet::new(self.n_ways).expect("AdaptedCtx has ≥ 1 way")
    }

    /// The φ parameter binding, in the shape `Backbone::decode_task` takes.
    pub fn phi(&self) -> (&ParamStore, ParamId) {
        (&self.phi_store, self.phi_id)
    }

    /// The raw φ values (tests use this to pin bitwise identity).
    pub fn phi_values(&self) -> &[f32] {
        self.phi_store.value(self.phi_id).data()
    }

    /// Serialises the context (version, way count, revision, φ tensor and
    /// retained support).
    pub fn to_json(&self) -> Json {
        let phi = self.phi_store.value(self.phi_id);
        Json::Obj(vec![
            ("version".into(), Json::from(ADAPTED_CTX_VERSION as u64)),
            ("n_ways".into(), Json::from(self.n_ways)),
            ("revision".into(), Json::from(self.revision as u64)),
            ("phi".into(), phi.to_json()),
            (
                "support".into(),
                Json::Arr(self.support.iter().map(labeled_to_json).collect()),
            ),
        ])
    }

    /// Deserialises a context written by [`AdaptedCtx::to_json`]. The φ
    /// values round-trip bitwise; shape compatibility with a particular
    /// model is checked at [`Fewner::predict`] time, not here. Version-1
    /// files (no revision, no retained support) load as revision 1 with an
    /// empty support set.
    pub fn from_json(json: &Json) -> Result<AdaptedCtx> {
        let version = json.field("version")?.as_u64()? as u32;
        if version == 0 || version > ADAPTED_CTX_VERSION {
            return Err(Error::Serde(format!(
                "unsupported adapted-context version {version} (expected 1..={ADAPTED_CTX_VERSION})"
            )));
        }
        let n_ways = json.field("n_ways")?.as_usize()?;
        if n_ways == 0 {
            return Err(Error::Serde("adapted context with 0 ways".into()));
        }
        let phi = Array::from_json(json.field("phi")?)?;
        let mut phi_store = ParamStore::new();
        let phi_id = phi_store.add("phi", phi);
        let (revision, support) = if version >= 2 {
            let revision = json.field("revision")?.as_u64()? as u32;
            if revision == 0 {
                return Err(Error::Serde("adapted context with revision 0".into()));
            }
            let support = json
                .field("support")?
                .as_arr()?
                .iter()
                .map(labeled_from_json)
                .collect::<Result<Vec<_>>>()?;
            (revision, support)
        } else {
            (1, Vec::new())
        };
        Ok(AdaptedCtx {
            n_ways,
            phi_store,
            phi_id,
            revision,
            support,
        })
    }

    /// Writes the context durably (CRC-framed, atomic rename) so a
    /// restarted server can reload it instead of re-adapting.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        fewner_util::durable::write_atomic(path, self.to_json().to_string().as_bytes())
    }

    /// Reads a context written by [`AdaptedCtx::save`], verifying the frame
    /// before parsing. The reloaded φ is bitwise identical to the saved one.
    pub fn load(path: impl AsRef<Path>) -> Result<AdaptedCtx> {
        let text = fewner_util::durable::read_verified_string(path)?;
        AdaptedCtx::from_json(&Json::parse(&text)?)
    }
}

/// Serialises one encoded support sentence (`word_ids`, `char_ids`, tag
/// indices) — ids, not surface text: the context is only meaningful against
/// the encoder it was adapted under, same as φ itself.
fn labeled_to_json((enc, tags): &LabeledSentence) -> Json {
    let ids = |v: &[usize]| Json::Arr(v.iter().map(|&i| Json::from(i)).collect());
    Json::Obj(vec![
        ("words".into(), ids(&enc.word_ids)),
        (
            "chars".into(),
            Json::Arr(enc.char_ids.iter().map(|c| ids(c)).collect()),
        ),
        ("tags".into(), ids(tags)),
    ])
}

fn labeled_from_json(json: &Json) -> Result<LabeledSentence> {
    fn ids(json: &Json) -> Result<Vec<usize>> {
        json.as_arr()?.iter().map(Json::as_usize).collect()
    }
    let word_ids = ids(json.field("words")?)?;
    let char_ids = json
        .field("chars")?
        .as_arr()?
        .iter()
        .map(ids)
        .collect::<Result<Vec<_>>>()?;
    let tags = ids(json.field("tags")?)?;
    if word_ids.len() != char_ids.len() || word_ids.len() != tags.len() {
        return Err(Error::Serde(format!(
            "retained support sentence has {} words, {} char rows, {} tags",
            word_ids.len(),
            char_ids.len(),
            tags.len()
        )));
    }
    Ok((fewner_models::EncodedSentence { word_ids, char_ids }, tags))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_policy_builder_composes() {
        let p = CachePolicy::lru(8).ttl_secs(2).persist_dir("/tmp/phis");
        assert_eq!(p.capacity, 8);
        assert_eq!(p.ttl_ns, Some(2_000_000_000));
        assert_eq!(p.persist_dir.as_deref(), Some(Path::new("/tmp/phis")));
        assert_eq!(CachePolicy::lru(0).capacity, 1, "capacity floor");
    }

    #[test]
    fn serve_options_enforce_floors() {
        let o = ServeOptions::new().batch(0);
        assert_eq!(o.batch_size(), 1);
        assert!(!o.tracer_ref().enabled());
        assert_eq!(o.cache_policy().capacity, 64);
        assert!(o.deadline().is_none());
    }

    #[test]
    fn with_deadline_is_a_per_request_copy() {
        let base = ServeOptions::new().batch(16);
        let scoped = base.with_deadline(Some(Deadline::from_ms(500)));
        assert!(base.deadline().is_none(), "base options stay deadline-free");
        assert_eq!(scoped.deadline().map(|d| d.budget_ms()), Some(500));
        assert_eq!(scoped.batch_size(), 16, "other knobs carry over");
        assert!(scoped.with_deadline(None).deadline().is_none());
    }

    fn sentence(words: Vec<usize>, tags: Vec<usize>) -> LabeledSentence {
        let char_ids = words.iter().map(|&w| vec![w, w + 1]).collect();
        (
            fewner_models::EncodedSentence {
                word_ids: words,
                char_ids,
            },
            tags,
        )
    }

    #[test]
    fn adapted_ctx_json_round_trip_is_bitwise() {
        let mut store = ParamStore::new();
        let id = store.add(
            "phi",
            Array::from_vec(1, 5, vec![0.1, -2.5e-8, 3.25, f32::MIN_POSITIVE, 0.0]),
        );
        let support = vec![sentence(vec![4, 7], vec![1, 0])];
        let ctx = AdaptedCtx::new(3, store, id, support.clone(), 5);
        let back = AdaptedCtx::from_json(&ctx.to_json()).unwrap();
        assert_eq!(back.n_ways(), 3);
        assert_eq!(back.phi_values(), ctx.phi_values());
        assert_eq!(back.tag_set().len(), 7);
        assert_eq!(back.revision(), 5);
        assert_eq!(back.support(), &support[..]);
    }

    #[test]
    fn version_1_contexts_still_load() {
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let v1 = Json::Obj(vec![
            ("version".into(), Json::from(1u64)),
            ("n_ways".into(), Json::from(2usize)),
            ("phi".into(), store.value(id).to_json()),
        ]);
        let ctx = AdaptedCtx::from_json(&v1).unwrap();
        assert_eq!(ctx.n_ways(), 2);
        assert_eq!(ctx.phi_values(), &[1.0, 2.0, 3.0]);
        assert_eq!(ctx.revision(), 1, "v1 contexts report revision 1");
        assert!(ctx.support().is_empty(), "v1 retained no support");
    }

    #[test]
    fn malformed_retained_support_is_rejected() {
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::zeros(1, 2));
        let ctx = AdaptedCtx::new(2, store, id, vec![sentence(vec![1], vec![0])], 1);
        let mut json = ctx.to_json();
        if let Json::Obj(fields) = &mut json {
            // One tag too many for the single-token sentence.
            fields[4].1 = Json::Arr(vec![Json::Obj(vec![
                ("words".into(), Json::Arr(vec![Json::from(1usize)])),
                (
                    "chars".into(),
                    Json::Arr(vec![Json::Arr(vec![Json::from(1usize)])]),
                ),
                (
                    "tags".into(),
                    Json::Arr(vec![Json::from(0usize), Json::from(0usize)]),
                ),
            ])]);
        }
        assert!(matches!(AdaptedCtx::from_json(&json), Err(Error::Serde(_))));
    }

    #[test]
    fn adapted_ctx_file_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("fewner-actx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ctx.phi");
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let ctx = AdaptedCtx::new(2, store, id, vec![sentence(vec![3], vec![1])], 2);
        ctx.save(&path).unwrap();
        let back = AdaptedCtx::load(&path).unwrap();
        assert_eq!(back.phi_values(), ctx.phi_values());
        assert_eq!((back.revision(), back.support().len()), (2, 1));

        // A flipped byte is caught by the durable frame, not the parser.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(AdaptedCtx::load(&path), Err(Error::Io { .. })));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn wrong_version_and_zero_ways_are_rejected() {
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::zeros(1, 2));
        let ctx = AdaptedCtx::new(1, store, id, Vec::new(), 1);
        let mut json = ctx.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::from(99u64);
        }
        assert!(AdaptedCtx::from_json(&json).is_err());

        let mut json = ctx.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[1].1 = Json::from(0usize);
        }
        assert!(AdaptedCtx::from_json(&json).is_err());
    }
}
