//! The serving surface: adapt once, predict many times.
//!
//! The paper's cost argument (§4.5.2) is that adapting the low-dimensional
//! context parameters φ is cheap *relative to training* — which only pays
//! off operationally if an adapted φ is **reused** across requests instead
//! of recomputed per call. This module makes that reuse structural:
//!
//! * [`Fewner::adapt`] runs the inner loop once and returns an
//!   [`AdaptedCtx`] — a first-class, serialisable handle to the adapted φ.
//! * [`Fewner::predict`] decodes any number of query sentences under a
//!   borrowed [`AdaptedCtx`] on the gradient-free `Infer` executor.
//! * [`ServeOptions`] carries the cross-cutting serving knobs (tracer,
//!   cache policy, micro-batch size) so entry points stay stable as knobs
//!   accrue.
//!
//! The split is the cache boundary the `fewner-serve` daemon builds on: an
//! `AdaptedCtx` can be held in an LRU cache keyed by `(tenant, task)`,
//! persisted through the durable-write layer, and reloaded after a restart
//! bitwise-identically — a reloaded context decodes exactly like the fresh
//! adapt that produced it.

use std::path::{Path, PathBuf};

use fewner_obs::Tracer;
use fewner_tensor::{Array, ParamId, ParamStore};
use fewner_text::TagSet;
use fewner_util::{Deadline, Error, FromJson, Json, Result, ToJson};

/// Eviction and persistence policy for an adapted-context (φ) cache.
///
/// Plain data: the policy lives here so every layer (core API, serving
/// daemon, CLI flags) speaks the same vocabulary; the cache *mechanism*
/// lives in `fewner-serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePolicy {
    /// Maximum resident contexts before least-recently-used eviction.
    pub capacity: usize,
    /// Time-to-live in nanoseconds; `None` = contexts never expire.
    pub ttl_ns: Option<u64>,
    /// Directory for durable φ persistence; `None` = memory only.
    pub persist_dir: Option<PathBuf>,
}

impl CachePolicy {
    /// An LRU policy holding at most `capacity` contexts (≥ 1 enforced),
    /// with no TTL and no persistence.
    pub fn lru(capacity: usize) -> CachePolicy {
        CachePolicy {
            capacity: capacity.max(1),
            ttl_ns: None,
            persist_dir: None,
        }
    }

    /// Expires contexts `secs` seconds after (re-)insertion.
    pub fn ttl_secs(mut self, secs: u64) -> CachePolicy {
        self.ttl_ns = Some(secs.saturating_mul(1_000_000_000));
        self
    }

    /// Expires contexts `ns` nanoseconds after (re-)insertion (tests drive
    /// this with a manual clock).
    pub fn ttl_ns(mut self, ns: u64) -> CachePolicy {
        self.ttl_ns = Some(ns);
        self
    }

    /// Persists adapted contexts under `dir` so a restarted server can skip
    /// re-adaptation for warm keys.
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> CachePolicy {
        self.persist_dir = Some(dir.into());
        self
    }
}

impl Default for CachePolicy {
    /// 64 resident contexts, no TTL, no persistence.
    fn default() -> CachePolicy {
        CachePolicy::lru(64)
    }
}

/// Builder-style options shared by every serving entry point.
///
/// ```
/// use fewner_core::serve::{CachePolicy, ServeOptions};
/// let opts = ServeOptions::new()
///     .cache(CachePolicy::lru(128).ttl_secs(300))
///     .batch(64);
/// assert_eq!(opts.batch_size(), 64);
/// ```
#[derive(Clone, Default)]
pub struct ServeOptions {
    tracer: Tracer,
    cache: CachePolicy,
    batch: usize,
    deadline: Option<Deadline>,
}

impl ServeOptions {
    /// Defaults: disabled tracer, [`CachePolicy::default`], micro-batches
    /// of up to 32 sentences, no deadline.
    pub fn new() -> ServeOptions {
        ServeOptions {
            tracer: Tracer::disabled(),
            cache: CachePolicy::default(),
            batch: 32,
            deadline: None,
        }
    }

    /// Routes serve spans and counters through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> ServeOptions {
        self.tracer = tracer;
        self
    }

    /// Sets the φ-cache policy.
    pub fn cache(mut self, cache: CachePolicy) -> ServeOptions {
        self.cache = cache;
        self
    }

    /// Caps cross-request micro-batches at `n` sentences (≥ 1 enforced).
    pub fn batch(mut self, n: usize) -> ServeOptions {
        self.batch = n.max(1);
        self
    }

    /// The tracer serving code records through.
    pub fn tracer_ref(&self) -> &Tracer {
        &self.tracer
    }

    /// The φ-cache policy.
    pub fn cache_policy(&self) -> &CachePolicy {
        &self.cache
    }

    /// Maximum sentences per micro-batch.
    pub fn batch_size(&self) -> usize {
        self.batch.max(1)
    }

    /// A per-request copy of these options carrying `deadline`. The daemon
    /// clones its base options per request so the long-lived configuration
    /// stays immutable while the budget travels with the work.
    pub fn with_deadline(&self, deadline: Option<Deadline>) -> ServeOptions {
        let mut opts = self.clone();
        opts.deadline = deadline;
        opts
    }

    /// The active request's time budget, if any.
    pub fn deadline(&self) -> Option<&Deadline> {
        self.deadline.as_ref()
    }
}

/// Format version of persisted adapted contexts.
pub const ADAPTED_CTX_VERSION: u32 = 1;

/// An adapted task context: the φ produced by the inner loop, packaged as a
/// first-class value.
///
/// This is the unit the serving daemon caches, persists, and shares across
/// requests. It is deliberately *small* — for the paper's configurations φ
/// is a few hundred floats — which is what makes caching millions of task
/// contexts plausible where caching full models is not.
#[derive(Debug, Clone)]
pub struct AdaptedCtx {
    n_ways: usize,
    phi_store: ParamStore,
    phi_id: ParamId,
}

impl AdaptedCtx {
    /// Packages an adapted φ store (one `"phi"` parameter) with its task
    /// arity.
    pub(crate) fn new(n_ways: usize, phi_store: ParamStore, phi_id: ParamId) -> AdaptedCtx {
        AdaptedCtx {
            n_ways,
            phi_store,
            phi_id,
        }
    }

    /// The task's way count (fixes the tag inventory).
    pub fn n_ways(&self) -> usize {
        self.n_ways
    }

    /// The task's BIO tag inventory (`2N + 1` tags).
    pub fn tag_set(&self) -> TagSet {
        TagSet::new(self.n_ways).expect("AdaptedCtx has ≥ 1 way")
    }

    /// The φ parameter binding, in the shape `Backbone::decode_task` takes.
    pub fn phi(&self) -> (&ParamStore, ParamId) {
        (&self.phi_store, self.phi_id)
    }

    /// The raw φ values (tests use this to pin bitwise identity).
    pub fn phi_values(&self) -> &[f32] {
        self.phi_store.value(self.phi_id).data()
    }

    /// Serialises the context (version, way count, φ tensor).
    pub fn to_json(&self) -> Json {
        let phi = self.phi_store.value(self.phi_id);
        Json::Obj(vec![
            ("version".into(), Json::from(ADAPTED_CTX_VERSION as u64)),
            ("n_ways".into(), Json::from(self.n_ways)),
            ("phi".into(), phi.to_json()),
        ])
    }

    /// Deserialises a context written by [`AdaptedCtx::to_json`]. The φ
    /// values round-trip bitwise; shape compatibility with a particular
    /// model is checked at [`Fewner::predict`] time, not here.
    pub fn from_json(json: &Json) -> Result<AdaptedCtx> {
        let version = json.field("version")?.as_u64()? as u32;
        if version != ADAPTED_CTX_VERSION {
            return Err(Error::Serde(format!(
                "unsupported adapted-context version {version} (expected {ADAPTED_CTX_VERSION})"
            )));
        }
        let n_ways = json.field("n_ways")?.as_usize()?;
        if n_ways == 0 {
            return Err(Error::Serde("adapted context with 0 ways".into()));
        }
        let phi = Array::from_json(json.field("phi")?)?;
        let mut phi_store = ParamStore::new();
        let phi_id = phi_store.add("phi", phi);
        Ok(AdaptedCtx {
            n_ways,
            phi_store,
            phi_id,
        })
    }

    /// Writes the context durably (CRC-framed, atomic rename) so a
    /// restarted server can reload it instead of re-adapting.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        fewner_util::durable::write_atomic(path, self.to_json().to_string().as_bytes())
    }

    /// Reads a context written by [`AdaptedCtx::save`], verifying the frame
    /// before parsing. The reloaded φ is bitwise identical to the saved one.
    pub fn load(path: impl AsRef<Path>) -> Result<AdaptedCtx> {
        let text = fewner_util::durable::read_verified_string(path)?;
        AdaptedCtx::from_json(&Json::parse(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_policy_builder_composes() {
        let p = CachePolicy::lru(8).ttl_secs(2).persist_dir("/tmp/phis");
        assert_eq!(p.capacity, 8);
        assert_eq!(p.ttl_ns, Some(2_000_000_000));
        assert_eq!(p.persist_dir.as_deref(), Some(Path::new("/tmp/phis")));
        assert_eq!(CachePolicy::lru(0).capacity, 1, "capacity floor");
    }

    #[test]
    fn serve_options_enforce_floors() {
        let o = ServeOptions::new().batch(0);
        assert_eq!(o.batch_size(), 1);
        assert!(!o.tracer_ref().enabled());
        assert_eq!(o.cache_policy().capacity, 64);
        assert!(o.deadline().is_none());
    }

    #[test]
    fn with_deadline_is_a_per_request_copy() {
        let base = ServeOptions::new().batch(16);
        let scoped = base.with_deadline(Some(Deadline::from_ms(500)));
        assert!(base.deadline().is_none(), "base options stay deadline-free");
        assert_eq!(scoped.deadline().map(|d| d.budget_ms()), Some(500));
        assert_eq!(scoped.batch_size(), 16, "other knobs carry over");
        assert!(scoped.with_deadline(None).deadline().is_none());
    }

    #[test]
    fn adapted_ctx_json_round_trip_is_bitwise() {
        let mut store = ParamStore::new();
        let id = store.add(
            "phi",
            Array::from_vec(1, 5, vec![0.1, -2.5e-8, 3.25, f32::MIN_POSITIVE, 0.0]),
        );
        let ctx = AdaptedCtx::new(3, store, id);
        let back = AdaptedCtx::from_json(&ctx.to_json()).unwrap();
        assert_eq!(back.n_ways(), 3);
        assert_eq!(back.phi_values(), ctx.phi_values());
        assert_eq!(back.tag_set().len(), 7);
    }

    #[test]
    fn adapted_ctx_file_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("fewner-actx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ctx.phi");
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let ctx = AdaptedCtx::new(2, store, id);
        ctx.save(&path).unwrap();
        let back = AdaptedCtx::load(&path).unwrap();
        assert_eq!(back.phi_values(), ctx.phi_values());

        // A flipped byte is caught by the durable frame, not the parser.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(AdaptedCtx::load(&path), Err(Error::Io { .. })));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn wrong_version_and_zero_ways_are_rejected() {
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::zeros(1, 2));
        let ctx = AdaptedCtx::new(1, store, id);
        let mut json = ctx.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::from(99u64);
        }
        assert!(AdaptedCtx::from_json(&json).is_err());

        let mut json = ctx.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[1].1 = Json::from(0usize);
        }
        assert!(AdaptedCtx::from_json(&json).is_err());
    }
}
