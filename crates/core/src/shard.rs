//! Multi-process sharded meta-training (coordinator + worker sessions).
//!
//! # Topology
//!
//! A sharded run is `S` worker processes and one coordinator. Every worker
//! executes the *full* training loop in lockstep — same sampler RNG, same
//! meta-batches, same learner state — but computes task gradients only for
//! its assigned subtree of the canonical reduce tree
//! ([`GradReduce::shard_ranges`]). Each round:
//!
//! 1. every worker folds its ranges into [`GradPartial`]s and sends them
//!    to the coordinator as FEWNERD1-framed JSON over TCP,
//! 2. the coordinator merges the partials along the remaining top of the
//!    tree ([`GradReduce::merge`]) and broadcasts the reduced
//!    `(loss, gradients)` back,
//! 3. every worker applies the identical broadcast bytes to its replica
//!    of θ.
//!
//! Because f32 values cross the wire bit-exactly (see
//! [`fewner_util::json`]) and the reduction shape is fixed, the final
//! checkpoint is byte-identical to a serial or threaded run of the same
//! schedule.
//!
//! # Fault tolerance
//!
//! A frame that arrives damaged but aligned (CRC mismatch) is retransmitted
//! — either side may send `{"type":"resend"}` and the peer re-writes its
//! last clean frame, bounded by [`MAX_RETRANSMITS`]. A connection that
//! breaks (EOF, truncated or garbled stream, timeout) marks the worker
//! dead: the coordinator reassigns the dead worker's task ranges to the
//! lowest-id surviving worker — first as a `compute` directive for the
//! in-flight round, then permanently via the `reduce` broadcast. The
//! surviving workers' replicas never skipped a round, so a later resume of
//! the dead shard (or a rerun) produces bitwise-identical checkpoints
//! ("elastic resume").
//!
//! Injected faults ([`fewner_util::fault`]: `shard_die`,
//! `shard_conn_drop`, `shard_frame_corrupt`, `shard_frame_torn`, each
//! optionally scoped `@shard`) exercise exactly these paths in tests and
//! CI.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::time::Duration;

use fewner_episode::Task;
use fewner_models::TokenEncoder;
use fewner_obs::Tracer;
use fewner_tensor::ParamGrads;
use fewner_util::{durable, fault, Deadline, Error, FromJson, Json, Result, ToJson, WireFrame};

use crate::learner::EpisodicLearner;
use crate::reduce::{GradPartial, GradReduce};
use crate::snapshot::RunFingerprint;
use crate::trainer::{ParallelTrainer, TrainConfig};

/// Ceiling on one frame's payload (gradients for every parameter of a
/// large run fit comfortably; anything bigger is a garbled length field).
const MAX_PAYLOAD: usize = 1 << 28;

/// How many times one logical frame may be retransmitted before the
/// connection is declared broken.
pub const MAX_RETRANSMITS: usize = 3;

/// Default per-read deadline on shard sockets, overridable with the
/// `FEWNER_SHARD_TIMEOUT_MS` environment variable.
const DEFAULT_TIMEOUT_MS: u64 = 60_000;

/// Budget for the whole rendezvous (bind/connect/hello/start).
const CONNECT_TIMEOUT_MS: u64 = 30_000;

fn round_timeout() -> Duration {
    let ms = std::env::var("FEWNER_SHARD_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_TIMEOUT_MS);
    Duration::from_millis(ms)
}

/// An [`Error::Io`] on the shard wire.
fn wire_io(detail: impl Into<String>) -> Error {
    Error::Io {
        path: "<shard-wire>".into(),
        detail: detail.into(),
    }
}

fn msg_type(msg: &Json) -> Result<&str> {
    msg.field("type")?.as_str()
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ranges_to_json(ranges: &[Range<usize>]) -> Json {
    Json::Arr(
        ranges
            .iter()
            .map(|r| Json::Arr(vec![Json::from(r.start), Json::from(r.end)]))
            .collect(),
    )
}

fn ranges_from_json(json: &Json) -> Result<Vec<Range<usize>>> {
    let mut ranges = Vec::new();
    for pair in json.as_arr()? {
        let pair = pair.as_arr()?;
        if pair.len() != 2 {
            return Err(Error::Serde("task range must be a [lo, hi] pair".into()));
        }
        ranges.push(pair[0].as_usize()?..pair[1].as_usize()?);
    }
    ranges.sort_by_key(|r| r.start);
    Ok(ranges)
}

/// Applies an injected frame fault to clean framed bytes. The header ends
/// at the first newline; damage stays inside the payload so the frame
/// remains *aligned* for `Corrupt`/`Torn` (CRC catches it, retransmit
/// recovers), while `ConnDrop` truncates mid-frame (the peer sees a dead
/// stream).
fn mangle(framed: &[u8], kind: fault::ShardFrameFault) -> Vec<u8> {
    let mut bytes = framed.to_vec();
    let payload_at = bytes
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    match kind {
        fault::ShardFrameFault::Corrupt => {
            if let Some(last) = bytes.last_mut() {
                *last ^= 0x20;
            }
        }
        fault::ShardFrameFault::Torn => {
            let mid = payload_at + (bytes.len() - payload_at) / 2;
            for b in &mut bytes[mid..] {
                *b = 0;
            }
        }
        fault::ShardFrameFault::ConnDrop => {
            let keep = payload_at + (bytes.len() - payload_at) / 2;
            bytes.truncate(keep);
        }
    }
    bytes
}

/// One framed, retransmit-capable connection end.
///
/// `recv` transparently serves incoming `resend` requests (re-writing the
/// last clean frame this end sent) and issues its own on CRC-corrupt
/// frames, so callers only ever see whole, verified messages — or a dead
/// connection.
struct FrameConn {
    stream: TcpStream,
    last_sent: Vec<u8>,
    resends_served: u64,
    resends_requested: u64,
}

impl FrameConn {
    fn new(stream: TcpStream) -> FrameConn {
        let _ = stream.set_nodelay(true);
        FrameConn {
            stream,
            last_sent: Vec::new(),
            resends_served: 0,
            resends_requested: 0,
        }
    }

    fn set_timeout(&self, timeout: Duration) -> Result<()> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| wire_io(format!("set_read_timeout: {e}")))
    }

    /// Writes raw bytes without touching the retransmit buffer.
    fn write_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| wire_io(format!("send: {e}")))
    }

    /// Frames and sends `msg`, retaining the clean frame for retransmits.
    fn send(&mut self, msg: &Json) -> Result<()> {
        let framed = durable::frame(msg.to_string().as_bytes());
        self.write_raw(&framed)?;
        self.last_sent = framed;
        Ok(())
    }

    fn retransmit(&mut self) -> Result<()> {
        if self.last_sent.is_empty() {
            return Err(wire_io("peer requested a resend before any frame"));
        }
        self.resends_served += 1;
        let frame = std::mem::take(&mut self.last_sent);
        let result = self.write_raw(&frame);
        self.last_sent = frame;
        result
    }

    /// Receives the next whole message, handling retransmits both ways.
    fn recv(&mut self) -> Result<Json> {
        let mut corrupt = 0usize;
        loop {
            match durable::read_wire_frame(&mut self.stream, MAX_PAYLOAD)? {
                WireFrame::Frame(payload) => {
                    let text = String::from_utf8(payload)
                        .map_err(|e| Error::Serde(format!("non-UTF-8 shard frame: {e}")))?;
                    let msg = Json::parse(&text)?;
                    if msg_type(&msg)? == "resend" {
                        self.retransmit()?;
                        continue;
                    }
                    return Ok(msg);
                }
                WireFrame::Corrupt(detail) => {
                    corrupt += 1;
                    if corrupt > MAX_RETRANSMITS {
                        return Err(wire_io(format!(
                            "frame still corrupt after {MAX_RETRANSMITS} retransmits: {detail}"
                        )));
                    }
                    self.resends_requested += 1;
                    self.write_raw(&durable::frame(
                        obj(vec![("type", Json::from("resend"))])
                            .to_string()
                            .as_bytes(),
                    ))?;
                }
                WireFrame::Eof => return Err(wire_io("peer closed the connection")),
                WireFrame::Truncated(detail) => {
                    return Err(wire_io(format!("truncated frame: {detail}")))
                }
                WireFrame::Garbled(detail) => {
                    return Err(wire_io(format!("garbled stream: {detail}")))
                }
            }
        }
    }
}

/// What one coordinator run did, for logs and tests.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorReport {
    /// Rounds driven to a broadcast (applied + skipped).
    pub rounds: usize,
    /// Rounds whose reduced gradient was applied.
    pub applied: usize,
    /// Rounds skipped because some shard reported a non-finite batch.
    pub skipped: usize,
    /// Frames retransmitted in either direction, summed over connections.
    pub retransmits: u64,
    /// Workers that died mid-run (connection lost without a `done`).
    pub deaths: usize,
    /// Task-range reassignments performed after deaths.
    pub reassignments: usize,
}

struct WorkerLink {
    shard: usize,
    conn: FrameConn,
    ranges: Vec<Range<usize>>,
    live: bool,
}

/// The reduce hub of a sharded run: accepts one connection per shard,
/// assigns reduce-tree ranges, and drives rounds until every worker is
/// done.
pub struct ShardCoordinator {
    listener: TcpListener,
    shards: usize,
}

impl ShardCoordinator {
    /// Binds the coordinator for a `shards`-worker run. `addr` may use
    /// port 0; read the actual endpoint back with
    /// [`ShardCoordinator::local_addr`].
    pub fn bind(addr: &str, shards: usize) -> Result<ShardCoordinator> {
        if shards < 2 {
            return Err(Error::InvalidConfig(format!(
                "a shard coordinator needs at least 2 shards, got {shards}"
            )));
        }
        let listener = TcpListener::bind(addr).map_err(|e| wire_io(format!("bind {addr}: {e}")))?;
        Ok(ShardCoordinator { listener, shards })
    }

    /// The bound endpoint (pass this to the workers).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| wire_io(format!("local_addr: {e}")))
    }

    /// Runs the rendezvous and then rounds until every worker reports
    /// `done` or dies. Instruments `shard/round` and
    /// `shard/straggler_wait` spans plus `shard/*` counters on `tracer`.
    pub fn run(&self, tracer: &Tracer) -> Result<CoordinatorReport> {
        let mut links = self.rendezvous()?;
        let (plan, mut iteration) = match self.handshake(&mut links) {
            Ok(v) => v,
            Err(e) => {
                let abort = obj(vec![
                    ("type", Json::from("abort")),
                    ("detail", Json::from(e.to_string())),
                ]);
                for link in &mut links {
                    let _ = link.conn.send(&abort);
                }
                return Err(e);
            }
        };
        let base = plan.shard_ranges(links.len())?;
        for (link, range) in links.iter_mut().zip(base) {
            link.ranges = vec![range];
        }
        for link in &mut links {
            let start = obj(vec![
                ("type", Json::from("start")),
                ("iteration", Json::from(iteration)),
                ("ranges", ranges_to_json(&link.ranges)),
            ]);
            link.conn.send(&start)?;
            link.conn.set_timeout(round_timeout())?;
        }

        let mut report = CoordinatorReport::default();
        loop {
            let mut round_span = tracer.span("shard/round");
            round_span.set("iter", iteration);
            // Collect phase: one partial per live worker, in shard order.
            let mut partials: Vec<(usize, bool, Vec<GradPartial>)> = Vec::new();
            let mut straggler_span = None;
            let mut orphaned: Vec<Range<usize>> = Vec::new();
            for link in links.iter_mut().filter(|l| l.live) {
                match Self::recv_partial(&mut link.conn, iteration) {
                    Ok(Some((ok, parts))) => {
                        if straggler_span.is_none() {
                            straggler_span = Some(tracer.span("shard/straggler_wait"));
                        }
                        tracer.incr(
                            &format!("shard/tasks/s{}", link.shard),
                            task_count(&link.ranges),
                        );
                        partials.push((link.shard, ok, parts));
                    }
                    Ok(None) => {
                        // Graceful `done`: the worker finished its schedule
                        // (or bailed after a local, non-wire error).
                        link.live = false;
                        orphaned.append(&mut link.ranges);
                    }
                    Err(_) => {
                        link.live = false;
                        orphaned.append(&mut link.ranges);
                        report.deaths += 1;
                        tracer.incr("shard/deaths", 1);
                    }
                }
            }
            drop(straggler_span);
            if partials.is_empty() {
                // Every worker is done (normal end of schedule) or dead.
                round_span.set("idle", true);
                break;
            }
            // Reassign phase: fold every orphaned range into the lowest-id
            // surviving contributor, for this round and permanently.
            while let Some(range) = orphaned.pop() {
                let Some(target) = links
                    .iter_mut()
                    .filter(|l| l.live && partials.iter().any(|(s, ..)| *s == l.shard))
                    .min_by_key(|l| l.shard)
                else {
                    return Err(wire_io(format!(
                        "all shard workers died during round {iteration}"
                    )));
                };
                let compute = obj(vec![
                    ("type", Json::from("compute")),
                    ("iteration", Json::from(iteration)),
                    ("ranges", ranges_to_json(std::slice::from_ref(&range))),
                ]);
                let outcome = target
                    .conn
                    .send(&compute)
                    .and_then(|()| Self::recv_partial(&mut target.conn, iteration));
                match outcome {
                    Ok(Some((ok, parts))) => {
                        let entry = partials
                            .iter_mut()
                            .find(|(s, ..)| *s == target.shard)
                            .expect("target contributed this round");
                        entry.1 &= ok;
                        entry.2.extend(parts);
                        tracer.incr(
                            &format!("shard/tasks/s{}", target.shard),
                            range.len() as u64,
                        );
                        target.ranges.push(range.clone());
                        target.ranges.sort_by_key(|r| r.start);
                        report.reassignments += 1;
                        tracer.incr("shard/reassigned", 1);
                    }
                    Ok(None) | Err(_) => {
                        // The absorber died too: put both its ranges and
                        // the still-orphaned one back and try the next.
                        let shard = target.shard;
                        target.live = false;
                        orphaned.append(&mut target.ranges);
                        orphaned.push(range);
                        partials.retain(|(s, ..)| *s != shard);
                        report.deaths += 1;
                        tracer.incr("shard/deaths", 1);
                        if partials.is_empty() {
                            return Err(wire_io(format!(
                                "all shard workers died during round {iteration}"
                            )));
                        }
                    }
                }
            }
            // Reduce phase: merge and broadcast (or broadcast a skip).
            let all_finite = partials.iter().all(|(_, ok, _)| *ok);
            let (result, loss, grads_json) = if all_finite {
                let parts: Vec<GradPartial> =
                    partials.into_iter().flat_map(|(_, _, p)| p).collect();
                let (loss, grads) = plan.merge(parts)?;
                ("apply", loss, grads.to_json())
            } else {
                ("skip", 0.0, Json::Null)
            };
            round_span.set("result", result);
            for link in links.iter_mut().filter(|l| l.live) {
                let reduce = obj(vec![
                    ("type", Json::from("reduce")),
                    ("iteration", Json::from(iteration)),
                    ("result", Json::from(result)),
                    ("loss", Json::from(loss)),
                    ("grads", grads_json.clone()),
                    ("ranges", ranges_to_json(&link.ranges)),
                ]);
                if link.conn.send(&reduce).is_err() {
                    // Its partial already folded into this round; the wire
                    // died on the way back. Next round reassigns its ranges.
                    link.live = false;
                    report.deaths += 1;
                    tracer.incr("shard/deaths", 1);
                }
            }
            report.rounds += 1;
            if all_finite {
                report.applied += 1;
            } else {
                report.skipped += 1;
                tracer.incr("shard/skipped_rounds", 1);
            }
            tracer.incr("shard/rounds", 1);
            iteration += 1;
        }
        report.retransmits = links
            .iter()
            .map(|l| l.conn.resends_served + l.conn.resends_requested)
            .sum();
        tracer.incr("shard/retransmits", report.retransmits);
        Ok(report)
    }

    /// Accepts exactly one connection per shard within the rendezvous
    /// budget.
    fn rendezvous(&self) -> Result<Vec<WorkerLink>> {
        let deadline = Deadline::from_ms(CONNECT_TIMEOUT_MS);
        self.listener
            .set_nonblocking(true)
            .map_err(|e| wire_io(format!("set_nonblocking: {e}")))?;
        let mut links = Vec::with_capacity(self.shards);
        while links.len() < self.shards {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| wire_io(format!("set_blocking: {e}")))?;
                    let conn = FrameConn::new(stream);
                    conn.set_timeout(Duration::from_millis(CONNECT_TIMEOUT_MS))?;
                    links.push(WorkerLink {
                        shard: usize::MAX,
                        conn,
                        ranges: Vec::new(),
                        live: true,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    deadline.check("shard rendezvous")?;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(wire_io(format!("accept: {e}"))),
            }
        }
        Ok(links)
    }

    /// Reads and validates every worker's hello; returns the shared reduce
    /// plan and start iteration.
    fn handshake(&self, links: &mut [WorkerLink]) -> Result<(GradReduce, usize)> {
        let mut fingerprint: Option<RunFingerprint> = None;
        let mut start: Option<usize> = None;
        let mut seen = vec![false; self.shards];
        for link in links.iter_mut() {
            let hello = link.conn.recv()?;
            if msg_type(&hello)? != "hello" {
                return Err(Error::Serde("expected a shard hello".into()));
            }
            let shard = hello.field("shard")?.as_usize()?;
            let shards = hello.field("shards")?.as_usize()?;
            if shards != self.shards || shard >= self.shards {
                return Err(Error::InvalidConfig(format!(
                    "worker announced shard {shard}/{shards}, coordinator expects {} shards",
                    self.shards
                )));
            }
            if std::mem::replace(&mut seen[shard], true) {
                return Err(Error::InvalidConfig(format!(
                    "two workers announced shard {shard}"
                )));
            }
            let fp = RunFingerprint::from_json(hello.field("fingerprint")?)?;
            if *fingerprint.get_or_insert_with(|| fp.clone()) != fp {
                return Err(Error::InvalidConfig(
                    "shard workers disagree on the run fingerprint \
                     (learner/schedule/seed/shard layout must match)"
                        .into(),
                ));
            }
            let at = hello.field("start_iteration")?.as_usize()?;
            if *start.get_or_insert(at) != at {
                return Err(Error::InvalidConfig(format!(
                    "shard workers disagree on the start iteration \
                     (resumed from inconsistent snapshots?): {} vs {at}",
                    start.unwrap_or(at)
                )));
            }
            link.shard = shard;
        }
        links.sort_by_key(|l| l.shard);
        let fp = fingerprint.expect("at least two shards");
        if fp.shards != self.shards {
            return Err(Error::InvalidConfig(format!(
                "run fingerprint declares {} shards, coordinator drives {}",
                fp.shards, self.shards
            )));
        }
        Ok((GradReduce::new(fp.meta_batch)?, start.expect("validated")))
    }

    /// Reads one partial-bearing message. `Ok(Some((all_finite, parts)))`
    /// for a partial, `Ok(None)` for a graceful `done`, `Err` for a dead
    /// connection or protocol violation.
    fn recv_partial(
        conn: &mut FrameConn,
        iteration: usize,
    ) -> Result<Option<(bool, Vec<GradPartial>)>> {
        let msg = conn.recv()?;
        match msg_type(&msg)? {
            "done" => Ok(None),
            "partial" => {
                let at = msg.field("iteration")?.as_usize()?;
                if at != iteration {
                    return Err(wire_io(format!(
                        "worker is at round {at}, coordinator at {iteration}"
                    )));
                }
                let ok = match msg.field("status")?.as_str()? {
                    "ok" => true,
                    "non_finite" => false,
                    other => return Err(Error::Serde(format!("unknown partial status `{other}`"))),
                };
                let mut parts = Vec::new();
                for part in msg.field("parts")?.as_arr()? {
                    parts.push(GradPartial::from_json(part)?);
                }
                Ok(Some((ok, parts)))
            }
            other => Err(Error::Serde(format!(
                "expected a shard partial, got `{other}`"
            ))),
        }
    }
}

fn task_count(ranges: &[Range<usize>]) -> u64 {
    ranges.iter().map(|r| r.len() as u64).sum()
}

/// One worker's connection to the coordinator: computes assigned reduce
/// subtrees and applies broadcast gradients, keeping its replica of θ
/// bitwise-identical to every other shard's.
pub struct ShardSession {
    conn: FrameConn,
    shard: usize,
    plan: GradReduce,
    pool: ParallelTrainer,
    ranges: Vec<Range<usize>>,
    iteration: usize,
    store: Option<u64>,
}

impl ShardSession {
    /// Connects to the coordinator named by `cfg`, announces this shard,
    /// and waits for its range assignment. Also scopes this thread's
    /// injected faults to `cfg.shard_id` (see
    /// [`fewner_util::fault::set_thread_shard`]).
    pub fn connect(
        cfg: &TrainConfig,
        fingerprint: &RunFingerprint,
        start_iteration: usize,
    ) -> Result<ShardSession> {
        if cfg.shards < 2 {
            return Err(Error::InvalidConfig(format!(
                "a shard session needs shards ≥ 2, got {}",
                cfg.shards
            )));
        }
        if cfg.shard_id >= cfg.shards {
            return Err(Error::InvalidConfig(format!(
                "shard_id {} out of range for {} shards",
                cfg.shard_id, cfg.shards
            )));
        }
        let addr = cfg.coordinator.as_deref().ok_or_else(|| {
            Error::InvalidConfig("a sharded run needs a coordinator address".into())
        })?;
        let plan = GradReduce::new(fingerprint.meta_batch)?;
        // Fail the impossible split here, before burning the rendezvous.
        plan.shard_ranges(cfg.shards)?;

        let deadline = Deadline::from_ms(CONNECT_TIMEOUT_MS);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(e) => {
                    if deadline.expired() {
                        return Err(wire_io(format!("connect {addr}: {e}")));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        };
        fault::set_thread_shard(Some(cfg.shard_id as u64));
        let mut conn = FrameConn::new(stream);
        conn.set_timeout(Duration::from_millis(CONNECT_TIMEOUT_MS))?;
        conn.send(&obj(vec![
            ("type", Json::from("hello")),
            ("shard", Json::from(cfg.shard_id)),
            ("shards", Json::from(cfg.shards)),
            ("start_iteration", Json::from(start_iteration)),
            ("fingerprint", fingerprint.to_json()),
        ]))?;
        let start = conn.recv()?;
        match msg_type(&start)? {
            "start" => {}
            "abort" => {
                return Err(Error::InvalidConfig(format!(
                    "coordinator refused the rendezvous: {}",
                    start.field("detail")?.as_str()?
                )))
            }
            other => return Err(Error::Serde(format!("expected start, got `{other}`"))),
        }
        let at = start.field("iteration")?.as_usize()?;
        if at != start_iteration {
            return Err(Error::InvalidConfig(format!(
                "coordinator starts at round {at}, this worker at {start_iteration}"
            )));
        }
        conn.set_timeout(round_timeout())?;
        Ok(ShardSession {
            conn,
            shard: cfg.shard_id,
            plan,
            pool: ParallelTrainer::new(cfg.threads),
            ranges: ranges_from_json(start.field("ranges")?)?,
            iteration: start_iteration,
            store: None,
        })
    }

    /// This worker's shard id.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The currently assigned reduce-tree ranges (grows when the
    /// coordinator reassigns a dead shard's subtree here).
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// One sharded meta-iteration: fold the assigned subtrees, exchange
    /// partials with the coordinator, apply the broadcast reduction.
    /// Returns the round's mean loss, or [`Error::NonFinite`] when the
    /// coordinator skipped the round (some shard's batch blew up) — the
    /// training loop's existing skip/divergence accounting handles both
    /// identically to the in-process path.
    pub fn step<L>(
        &mut self,
        learner: &mut L,
        tasks: &[Task],
        enc: &TokenEncoder,
        tracer: &Tracer,
    ) -> Result<f32>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        if tasks.len() != self.plan.n_tasks() {
            return Err(Error::InvalidConfig(format!(
                "sharded batch has {} tasks, reduce plan expects {}",
                tasks.len(),
                self.plan.n_tasks()
            )));
        }
        let step_seed = learner.step_seed();
        let (ok, parts) = self.fold_ranges(learner, tasks, enc, step_seed, &self.ranges.clone())?;
        if fault::shard_die_fault() {
            // A real process death: the CI smoke test arms this on a live
            // worker process and asserts the run survives byte-identically.
            eprintln!("fewner: injected fault: shard {} dies", self.shard);
            std::process::abort();
        }
        self.send_partial(ok, parts)?;

        loop {
            let msg = self.conn.recv()?;
            match msg_type(&msg)? {
                "compute" => {
                    let at = msg.field("iteration")?.as_usize()?;
                    if at != self.iteration {
                        return Err(wire_io(format!(
                            "compute for round {at}, worker at {}",
                            self.iteration
                        )));
                    }
                    let extra = ranges_from_json(msg.field("ranges")?)?;
                    tracer.incr("shard/reassigned_to_me", task_count(&extra));
                    let (ok, parts) = self.fold_ranges(learner, tasks, enc, step_seed, &extra)?;
                    self.send_partial(ok, parts)?;
                }
                "reduce" => {
                    let at = msg.field("iteration")?.as_usize()?;
                    if at != self.iteration {
                        return Err(wire_io(format!(
                            "reduce for round {at}, worker at {}",
                            self.iteration
                        )));
                    }
                    self.ranges = ranges_from_json(msg.field("ranges")?)?;
                    self.iteration += 1;
                    tracer.incr("shard/rounds", 1);
                    match msg.field("result")?.as_str()? {
                        "skip" => {
                            return Err(Error::NonFinite {
                                context: "sharded meta-batch skipped by coordinator".into(),
                            })
                        }
                        "apply" => {
                            let loss = msg.field("loss")?.as_f32()?;
                            let mut grads = ParamGrads::from_json(msg.field("grads")?)?;
                            let store = self.store.ok_or_else(|| {
                                Error::InvalidConfig(
                                    "reduce before any local fold: no parameter store to bind"
                                        .into(),
                                )
                            })?;
                            grads.retag(store);
                            learner.apply_meta_grads(grads, self.plan.n_tasks())?;
                            return Ok(loss);
                        }
                        other => {
                            return Err(Error::Serde(format!("unknown reduce result `{other}`")))
                        }
                    }
                }
                "abort" => {
                    return Err(Error::InvalidConfig(format!(
                        "coordinator aborted the run: {}",
                        msg.field("detail")?.as_str()?
                    )))
                }
                other => {
                    return Err(Error::Serde(format!(
                        "unexpected shard directive `{other}`"
                    )))
                }
            }
        }
    }

    /// Folds the given reduce-tree ranges into partials. A non-finite task
    /// maps to `(false, [])` — the worker still reports in, so the round
    /// stays in lockstep and every shard skips together.
    fn fold_ranges<L>(
        &mut self,
        learner: &L,
        tasks: &[Task],
        enc: &TokenEncoder,
        step_seed: u64,
        ranges: &[Range<usize>],
    ) -> Result<(bool, Vec<GradPartial>)>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        let mut parts = Vec::with_capacity(ranges.len());
        for range in ranges {
            let outcomes = match self.pool.range_outcomes(
                learner,
                tasks,
                enc,
                step_seed,
                std::slice::from_ref(range),
            ) {
                Ok(indexed) => indexed.into_iter().map(|(_, o)| o).collect(),
                Err(Error::NonFinite { .. }) => return Ok((false, Vec::new())),
                Err(e) => return Err(e),
            };
            let part = self.plan.partial(range.start, outcomes)?;
            self.store.get_or_insert(part.grads.store_id());
            parts.push(part);
        }
        Ok((true, parts))
    }

    /// Sends this round's partial, applying any armed frame fault. The
    /// retransmit buffer always holds the *clean* frame, so a requested
    /// resend heals an injected corruption.
    fn send_partial(&mut self, ok: bool, parts: Vec<GradPartial>) -> Result<()> {
        let msg = obj(vec![
            ("type", Json::from("partial")),
            ("iteration", Json::from(self.iteration)),
            ("shard", Json::from(self.shard)),
            ("status", Json::from(if ok { "ok" } else { "non_finite" })),
            (
                "parts",
                Json::Arr(parts.iter().map(|p| p.to_json()).collect()),
            ),
        ]);
        match fault::shard_frame_fault() {
            None => self.conn.send(&msg),
            Some(fault::ShardFrameFault::ConnDrop) => {
                let clean = durable::frame(msg.to_string().as_bytes());
                let half = mangle(&clean, fault::ShardFrameFault::ConnDrop);
                let _ = self.conn.write_raw(&half);
                let _ = self.conn.stream.shutdown(Shutdown::Both);
                Err(wire_io(format!(
                    "injected fault: shard {} drops its connection",
                    self.shard
                )))
            }
            Some(kind) => {
                let clean = durable::frame(msg.to_string().as_bytes());
                self.conn.write_raw(&mangle(&clean, kind))?;
                self.conn.last_sent = clean;
                Ok(())
            }
        }
    }
}

impl Drop for ShardSession {
    fn drop(&mut self) {
        // Best-effort goodbye so the coordinator can tell a finished
        // schedule from a dead worker. On broken connections this is a
        // silent no-op.
        let done = obj(vec![("type", Json::from("done"))]);
        let _ = self
            .conn
            .write_raw(&durable::frame(done.to_string().as_bytes()));
        let _ = self.conn.stream.shutdown(Shutdown::Both);
        fault::set_thread_shard(None);
    }
}
