//! `fewner-core` — the paper's primary contribution: FEWNER, the
//! meta-learning approach for few-shot NER, plus the meta-gradient
//! baselines and the training loop.
//!
//! * [`fewner`] — Algorithm 1: inner loop on the low-dimensional context
//!   parameters φ, outer loop on the task-independent θ, test-time
//!   adaptation that touches only φ.
//! * [`second_order`] — the exact meta-gradient via finite-difference
//!   Hessian-vector products along φ.
//! * [`maml`] — full-network MAML (first-order), same backbone.
//! * [`conventional`] — FineTune, ProtoNet, SNAIL and frozen-LM learners.
//! * [`trainer`] — meta-batch loop with the paper's LR schedule, rolling
//!   training snapshots and crash-safe resumption.
//! * [`reduce`] — the canonical tree-shaped gradient reduction shared by
//!   the serial, threaded and sharded paths.
//! * [`shard`] — multi-process sharded meta-training: coordinator and
//!   worker sessions exchanging partial gradients over framed TCP.
//! * [`checkpoint`] — persist and restore θ_Meta.
//! * [`snapshot`] — full training-state snapshots behind resume.
//! * [`learner`] — the common protocol every method implements.
//! * [`serve`] — the serving surface: [`ServeOptions`], adapt-once /
//!   predict-many via first-class [`AdaptedCtx`] handles.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod conventional;
pub mod fewner;
pub mod learner;
pub mod maml;
pub mod reduce;
pub mod second_order;
pub mod serve;
pub mod shard;
pub mod snapshot;
pub mod trainer;

pub use checkpoint::Checkpoint;
pub use config::{MetaConfig, SecondOrder};
pub use conventional::{FineTuneLearner, FrozenLmLearner, ProtoLearner, SnailLearner};
pub use fewner::Fewner;
pub use learner::{task_rng, EpisodicLearner, TaskOutcome};
pub use maml::Maml;
pub use reduce::{GradPartial, GradReduce};
pub use serve::{AdaptedCtx, CachePolicy, ServeOptions};
pub use shard::{CoordinatorReport, ShardCoordinator, ShardSession};
pub use snapshot::{
    RunFingerprint, ShardScope, SnapshotEntry, StreamFingerprint, TrainingSnapshot,
};
pub use trainer::{ParallelTrainer, StreamSource, TrainConfig, Trainer, TrainingLog};
