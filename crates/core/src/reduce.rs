//! The canonical, transport-agnostic gradient reduction.
//!
//! Every execution topology — the serial default
//! [`EpisodicLearner::meta_step`], the threaded
//! [`ParallelTrainer`](crate::ParallelTrainer), and the multi-process
//! sharded trainer ([`crate::shard`]) — must produce bitwise-identical
//! checkpoints. Floating-point addition is not associative, so "sum the
//! per-task gradients" is only well-defined once the *shape* of the
//! summation is fixed. A left-to-right fold (what a naive serial loop
//! does) cannot be distributed: the sum of per-shard left-folds is a
//! different bracketing than one global left-fold.
//!
//! [`GradReduce`] therefore fixes the reduction as a **binary tree** over
//! task indices: a node covering `len` tasks splits after its first
//! `ceil(len / 2)` tasks, recursively. The tree depends only on the batch
//! size, so
//!
//! * a serial run folds the whole tree on one thread,
//! * a threaded run computes leaves in any order and folds the same tree,
//! * a sharded run assigns each worker a *subtree* ([`GradReduce::
//!   shard_ranges`]), folds it locally into a [`GradPartial`], and the
//!   coordinator folds the remaining top of the tree ([`GradReduce::
//!   merge`]) —
//!
//! and all three perform the identical multiset of f32 additions in the
//! identical bracketing. Losses ride the same tree (as sums, divided by
//! the task count at the root), so reported losses match bitwise too.
//!
//! Elastic resume falls out of the same property: when a shard dies, its
//! subtree is reassigned to a surviving worker, which folds it with the
//! same code over the same leaves — the merged result cannot differ.
//!
//! [`EpisodicLearner::meta_step`]: crate::EpisodicLearner::meta_step

use std::ops::Range;

use fewner_tensor::ParamGrads;
use fewner_util::{Error, FromJson, Json, Result, ToJson};

use crate::learner::TaskOutcome;

/// One shard's fold of a reduce-tree node: the gradient and loss sums over
/// tasks `lo..hi` of a meta-batch. Serialisable, so it can cross a process
/// boundary as a FEWNERD1-framed payload (f32 values survive bit-exactly,
/// see [`fewner_util::json`]).
#[derive(Debug, Clone)]
pub struct GradPartial {
    /// First task index covered (inclusive).
    pub lo: usize,
    /// One past the last task index covered.
    pub hi: usize,
    /// Tree-folded sum of the covered tasks' losses.
    pub loss_sum: f32,
    /// Tree-folded sum of the covered tasks' gradients.
    pub grads: ParamGrads,
}

impl ToJson for GradPartial {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lo".into(), Json::from(self.lo)),
            ("hi".into(), Json::from(self.hi)),
            ("loss_sum".into(), Json::from(self.loss_sum)),
            ("grads".into(), self.grads.to_json()),
        ])
    }
}

impl FromJson for GradPartial {
    fn from_json(json: &Json) -> Result<GradPartial> {
        Ok(GradPartial {
            lo: json.field("lo")?.as_usize()?,
            hi: json.field("hi")?.as_usize()?,
            loss_sum: json.field("loss_sum")?.as_f32()?,
            grads: ParamGrads::from_json(json.field("grads")?)?,
        })
    }
}

/// The fixed reduce plan for one meta-batch of `n_tasks` tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradReduce {
    n_tasks: usize,
}

/// Length of the left child of a tree node covering `len` tasks.
fn left_len(len: usize) -> usize {
    len.div_ceil(2)
}

impl GradReduce {
    /// A reduce plan over task indices `0..n_tasks`.
    pub fn new(n_tasks: usize) -> Result<GradReduce> {
        if n_tasks == 0 {
            return Err(Error::InvalidConfig("empty meta batch".into()));
        }
        Ok(GradReduce { n_tasks })
    }

    /// The batch size this plan reduces.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// True when `lo..hi` is a node of the reduce tree (and can therefore
    /// be folded independently and merged back in).
    pub fn is_node(&self, lo: usize, hi: usize) -> bool {
        let (mut a, mut b) = (0, self.n_tasks);
        loop {
            if (a, b) == (lo, hi) {
                return true;
            }
            if b - a <= 1 {
                return false;
            }
            let mid = a + left_len(b - a);
            if hi <= mid {
                b = mid;
            } else if lo >= mid {
                a = mid;
            } else {
                return false;
            }
        }
    }

    /// Partitions the batch into `shards` contiguous ranges, every one a
    /// node of the reduce tree, by repeatedly splitting the widest range
    /// at its canonical point (ties broken toward the lowest index, so the
    /// partition is a pure function of `(n_tasks, shards)`).
    ///
    /// Fails when `shards` exceeds the batch size — a shard with no tasks
    /// would never touch the learner and could not stay in lockstep.
    pub fn shard_ranges(&self, shards: usize) -> Result<Vec<Range<usize>>> {
        if shards == 0 || shards > self.n_tasks {
            return Err(Error::InvalidConfig(format!(
                "cannot split a {}-task meta-batch across {shards} shards \
                 (need 1 ≤ shards ≤ batch size)",
                self.n_tasks
            )));
        }
        // One root node covering the whole batch (a single-element Vec of
        // Range is exactly what we mean here).
        #[allow(clippy::single_range_in_vec_init)]
        let mut ranges = vec![0..self.n_tasks];
        while ranges.len() < shards {
            let mut widest = 0;
            for (i, r) in ranges.iter().enumerate() {
                if r.len() > ranges[widest].len() {
                    widest = i;
                }
            }
            let Range { start, end } = ranges[widest];
            let mid = start + left_len(end - start);
            ranges[widest] = start..mid;
            ranges.insert(widest + 1, mid..end);
        }
        Ok(ranges)
    }

    /// Folds the outcomes of the tree node starting at `lo` (covering
    /// `lo..lo + outcomes.len()`) into a [`GradPartial`].
    pub fn partial(&self, lo: usize, outcomes: Vec<TaskOutcome>) -> Result<GradPartial> {
        let hi = lo + outcomes.len();
        if !self.is_node(lo, hi) {
            return Err(Error::InvalidConfig(format!(
                "{lo}..{hi} is not a node of the {}-task reduce tree",
                self.n_tasks
            )));
        }
        let mut slots: Vec<Option<TaskOutcome>> = outcomes.into_iter().map(Some).collect();
        let (loss_sum, grads) = fold(&mut slots);
        Ok(GradPartial {
            lo,
            hi,
            loss_sum,
            grads,
        })
    }

    /// Folds a full batch: tree-summed gradients plus the mean task loss.
    /// This *is* the canonical reduction — every other entry point
    /// decomposes into [`GradReduce::partial`] + [`GradReduce::merge`]
    /// folds of the same tree.
    pub fn reduce(&self, outcomes: Vec<TaskOutcome>) -> Result<(f32, ParamGrads)> {
        if outcomes.len() != self.n_tasks {
            return Err(Error::InvalidConfig(format!(
                "reduce plan covers {} tasks, got {} outcomes",
                self.n_tasks,
                outcomes.len()
            )));
        }
        let root = self.partial(0, outcomes)?;
        Ok((root.loss_sum / self.n_tasks as f32, root.grads))
    }

    /// Folds per-shard partials (any arrival order) up the remaining tree
    /// levels and returns the mean loss plus the gradient sum — bitwise
    /// identical to [`GradReduce::reduce`] over the same outcomes.
    ///
    /// The partials must tile `0..n_tasks` exactly, each covering a tree
    /// node; gaps, overlaps, or off-tree ranges are an error, never a
    /// silently wrong sum.
    pub fn merge(&self, mut partials: Vec<GradPartial>) -> Result<(f32, ParamGrads)> {
        partials.sort_by_key(|p| p.lo);
        let mut expect = 0;
        for p in &partials {
            if p.lo != expect || p.hi <= p.lo {
                return Err(Error::InvalidConfig(format!(
                    "shard partials leave a gap or overlap at task {expect}"
                )));
            }
            if !self.is_node(p.lo, p.hi) {
                return Err(Error::InvalidConfig(format!(
                    "{}..{} is not a node of the {}-task reduce tree",
                    p.lo, p.hi, self.n_tasks
                )));
            }
            expect = p.hi;
        }
        if expect != self.n_tasks {
            return Err(Error::InvalidConfig(format!(
                "shard partials cover 0..{expect}, batch has {} tasks",
                self.n_tasks
            )));
        }
        // Fold sibling pairs bottom-up. The additions performed are exactly
        // the internal tree nodes above the partial boundaries, each as
        // left + right, so the discovery order cannot change the bits.
        while partials.len() > 1 {
            let mut merged_any = false;
            let mut i = 0;
            while i + 1 < partials.len() {
                if self.is_node(partials[i].lo, partials[i + 1].hi) {
                    let right = partials.remove(i + 1);
                    let left = &mut partials[i];
                    left.loss_sum += right.loss_sum;
                    left.grads.add_assign(&right.grads);
                    left.hi = right.hi;
                    merged_any = true;
                } else {
                    i += 1;
                }
            }
            debug_assert!(merged_any, "a node tiling always admits a sibling merge");
            if !merged_any {
                return Err(Error::InvalidConfig(
                    "shard partials do not tile the reduce tree".into(),
                ));
            }
        }
        let root = partials.pop().expect("validated non-empty cover");
        Ok((root.loss_sum / self.n_tasks as f32, root.grads))
    }
}

/// Tree-folds `slots` (all `Some`, length ≥ 1) into `(loss_sum, grads)`.
fn fold(slots: &mut [Option<TaskOutcome>]) -> (f32, ParamGrads) {
    if slots.len() == 1 {
        let o = slots[0].take().expect("each slot folded once");
        return (o.loss, o.grads);
    }
    let (l, r) = slots.split_at_mut(left_len(slots.len()));
    let (l_loss, mut l_grads) = fold(l);
    let (r_loss, r_grads) = fold(r);
    l_grads.add_assign(&r_grads);
    (l_loss + r_loss, l_grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_tensor::{Array, ParamStore};

    fn outcome(store: &ParamStore, seed: u64) -> TaskOutcome {
        let mut rng = fewner_util::Rng::new(seed);
        let mut grads = ParamGrads::zeros_like(store);
        let g = Array::from_vec(1, 3, (0..3).map(|_| rng.normal()).collect());
        grads.accumulate(0, &g);
        TaskOutcome {
            loss: rng.normal(),
            grads,
        }
    }

    fn batch(store: &ParamStore, n: usize) -> Vec<TaskOutcome> {
        (0..n).map(|i| outcome(store, 1000 + i as u64)).collect()
    }

    fn bits(grads: &ParamGrads) -> Vec<u32> {
        grads
            .get_at(0)
            .unwrap()
            .data()
            .iter()
            .map(|x| x.to_bits())
            .collect()
    }

    #[test]
    fn shard_ranges_tile_the_tree() {
        for n in 1..=12usize {
            let plan = GradReduce::new(n).unwrap();
            for shards in 1..=n {
                let ranges = plan.shard_ranges(shards).unwrap();
                assert_eq!(ranges.len(), shards, "n={n} shards={shards}");
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "contiguous cover");
                    assert!(plan.is_node(r.start, r.end), "{r:?} not a node, n={n}");
                    expect = r.end;
                }
                assert_eq!(expect, n);
            }
            assert!(plan.shard_ranges(0).is_err());
            assert!(plan.shard_ranges(n + 1).is_err());
        }
        // Pinned examples: the partition is part of the wire contract.
        let plan = GradReduce::new(6).unwrap();
        assert_eq!(plan.shard_ranges(2).unwrap(), vec![0..3, 3..6]);
        assert_eq!(plan.shard_ranges(4).unwrap(), vec![0..2, 2..3, 3..5, 5..6]);
    }

    #[test]
    fn sharded_merge_is_bitwise_identical_to_full_reduce() {
        let mut store = ParamStore::new();
        store.add("w", Array::zeros(1, 3));
        for n in [1usize, 2, 3, 4, 6, 7, 8, 11] {
            let plan = GradReduce::new(n).unwrap();
            let (loss_ref, grads_ref) = plan.reduce(batch(&store, n)).unwrap();
            for shards in 1..=n.min(5) {
                let outcomes = batch(&store, n);
                let mut slots: Vec<Option<TaskOutcome>> = outcomes.into_iter().map(Some).collect();
                let mut partials: Vec<GradPartial> = plan
                    .shard_ranges(shards)
                    .unwrap()
                    .into_iter()
                    .map(|r| {
                        let outs: Vec<TaskOutcome> = slots[r.clone()]
                            .iter_mut()
                            .map(|s| s.take().unwrap())
                            .collect();
                        plan.partial(r.start, outs).unwrap()
                    })
                    .collect();
                // Arrival order must not matter.
                partials.reverse();
                let (loss, grads) = plan.merge(partials).unwrap();
                assert_eq!(loss.to_bits(), loss_ref.to_bits(), "n={n} shards={shards}");
                assert_eq!(bits(&grads), bits(&grads_ref), "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn partial_survives_json_bit_exactly() {
        let mut store = ParamStore::new();
        store.add("w", Array::zeros(1, 3));
        let plan = GradReduce::new(4).unwrap();
        let p = plan.partial(2, batch(&store, 2)).unwrap();
        let text = p.to_json().to_string();
        let mut back = GradPartial::from_json(&Json::parse(&text).unwrap()).unwrap();
        back.grads.retag(p.grads.store_id());
        assert_eq!((back.lo, back.hi), (p.lo, p.hi));
        assert_eq!(back.loss_sum.to_bits(), p.loss_sum.to_bits());
        assert_eq!(bits(&back.grads), bits(&p.grads));
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_off_tree_ranges() {
        let mut store = ParamStore::new();
        store.add("w", Array::zeros(1, 3));
        let plan = GradReduce::new(4).unwrap();
        let part = |lo: usize, len: usize| plan.partial(lo, batch(&store, len)).unwrap();

        // Gap: 0..2 plus 3..4 misses task 2.
        let err = plan.merge(vec![part(0, 2), part(3, 1)]);
        assert!(err.is_err());
        // Off-tree: 1..3 straddles the root split of a 4-task batch.
        assert!(plan.partial(1, batch(&store, 2)).is_err());
        // Incomplete cover.
        assert!(plan.merge(vec![part(0, 2)]).is_err());
        // Overlap.
        let err = plan.merge(vec![part(0, 2), part(0, 2), part(2, 2)]);
        assert!(err.is_err());
    }
}
