//! Checkpointing: persist a meta-trained θ_Meta together with the
//! configurations needed to rebuild the exact same model.
//!
//! Algorithm 1 separates *training* (producing θ_Meta) from *adapting*
//! (consuming it); a real deployment trains once and adapts everywhere, so
//! θ_Meta must round-trip through storage byte-exactly. The checkpoint is a
//! single JSON document: backbone hyper-parameters, meta hyper-parameters,
//! and the named parameter tensors.

use std::path::Path;

use fewner_models::{BackboneConfig, Conditioning, EncoderKind, HeadKind, TokenEncoder};
use fewner_tensor::{QuantizedParams, SavedParams, WeightFormat};
use fewner_util::{Error, FromJson, Json, Result, ToJson};

use crate::config::MetaConfig;
use crate::fewner::Fewner;

/// Serialisable mirror of [`BackboneConfig`] (the model crate stays
/// serialisation-free; the mapping lives here with the checkpoint format).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedBackboneConfig {
    /// See [`BackboneConfig::word_dim`].
    pub word_dim: usize,
    /// See [`BackboneConfig::char_dim`].
    pub char_dim: usize,
    /// See [`BackboneConfig::char_filters`].
    pub char_filters: usize,
    /// See [`BackboneConfig::char_widths`].
    pub char_widths: Vec<usize>,
    /// See [`BackboneConfig::hidden`].
    pub hidden: usize,
    /// See [`BackboneConfig::phi_dim`].
    pub phi_dim: usize,
    /// See [`BackboneConfig::slot_ctx_dim`].
    pub slot_ctx_dim: usize,
    /// `"none" | "film" | "concat"`.
    pub conditioning: String,
    /// `"bigru" | "bilstm"`.
    pub encoder: String,
    /// See [`BackboneConfig::dropout`].
    pub dropout: f32,
    /// See [`BackboneConfig::use_char_cnn`].
    pub use_char_cnn: bool,
    /// `("dense", n_ways)` or `("slot_shared", slot_dim, max_slots)`.
    pub head: (String, usize, usize),
}

impl From<&BackboneConfig> for SavedBackboneConfig {
    fn from(c: &BackboneConfig) -> Self {
        SavedBackboneConfig {
            word_dim: c.word_dim,
            char_dim: c.char_dim,
            char_filters: c.char_filters,
            char_widths: c.char_widths.clone(),
            hidden: c.hidden,
            phi_dim: c.phi_dim,
            slot_ctx_dim: c.slot_ctx_dim,
            conditioning: match c.conditioning {
                Conditioning::None => "none",
                Conditioning::Film => "film",
                Conditioning::ConcatInput => "concat",
            }
            .to_string(),
            encoder: match c.encoder {
                EncoderKind::BiGru => "bigru",
                EncoderKind::BiLstm => "bilstm",
            }
            .to_string(),
            dropout: c.dropout,
            use_char_cnn: c.use_char_cnn,
            head: match c.head {
                HeadKind::Dense { n_ways } => ("dense".to_string(), n_ways, 0),
                HeadKind::SlotShared {
                    slot_dim,
                    max_slots,
                } => ("slot_shared".to_string(), slot_dim, max_slots),
            },
        }
    }
}

impl SavedBackboneConfig {
    /// Rebuilds the runtime configuration.
    pub fn to_config(&self) -> Result<BackboneConfig> {
        let conditioning = match self.conditioning.as_str() {
            "none" => Conditioning::None,
            "film" => Conditioning::Film,
            "concat" => Conditioning::ConcatInput,
            other => {
                return Err(Error::Serde(format!("unknown conditioning `{other}`")));
            }
        };
        let encoder = match self.encoder.as_str() {
            "bigru" => EncoderKind::BiGru,
            "bilstm" => EncoderKind::BiLstm,
            other => return Err(Error::Serde(format!("unknown encoder `{other}`"))),
        };
        let head = match self.head.0.as_str() {
            "dense" => HeadKind::Dense {
                n_ways: self.head.1,
            },
            "slot_shared" => HeadKind::SlotShared {
                slot_dim: self.head.1,
                max_slots: self.head.2,
            },
            other => return Err(Error::Serde(format!("unknown head `{other}`"))),
        };
        Ok(BackboneConfig {
            word_dim: self.word_dim,
            char_dim: self.char_dim,
            char_filters: self.char_filters,
            char_widths: self.char_widths.clone(),
            hidden: self.hidden,
            phi_dim: self.phi_dim,
            slot_ctx_dim: self.slot_ctx_dim,
            conditioning,
            dropout: self.dropout,
            use_char_cnn: self.use_char_cnn,
            encoder,
            head,
        })
    }
}

impl ToJson for SavedBackboneConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("word_dim".into(), Json::from(self.word_dim)),
            ("char_dim".into(), Json::from(self.char_dim)),
            ("char_filters".into(), Json::from(self.char_filters)),
            (
                "char_widths".into(),
                Json::Arr(self.char_widths.iter().map(|&w| Json::from(w)).collect()),
            ),
            ("hidden".into(), Json::from(self.hidden)),
            ("phi_dim".into(), Json::from(self.phi_dim)),
            ("slot_ctx_dim".into(), Json::from(self.slot_ctx_dim)),
            (
                "conditioning".into(),
                Json::from(self.conditioning.as_str()),
            ),
            ("encoder".into(), Json::from(self.encoder.as_str())),
            ("dropout".into(), Json::from(self.dropout)),
            ("use_char_cnn".into(), Json::from(self.use_char_cnn)),
            (
                "head".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::from(self.head.0.as_str())),
                    ("a".into(), Json::from(self.head.1)),
                    ("b".into(), Json::from(self.head.2)),
                ]),
            ),
        ])
    }
}

impl FromJson for SavedBackboneConfig {
    fn from_json(json: &Json) -> Result<SavedBackboneConfig> {
        let head = json.field("head")?;
        Ok(SavedBackboneConfig {
            word_dim: json.field("word_dim")?.as_usize()?,
            char_dim: json.field("char_dim")?.as_usize()?,
            char_filters: json.field("char_filters")?.as_usize()?,
            char_widths: json
                .field("char_widths")?
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect::<Result<Vec<_>>>()?,
            hidden: json.field("hidden")?.as_usize()?,
            phi_dim: json.field("phi_dim")?.as_usize()?,
            slot_ctx_dim: json.field("slot_ctx_dim")?.as_usize()?,
            conditioning: json.field("conditioning")?.as_str()?.to_string(),
            encoder: json.field("encoder")?.as_str()?.to_string(),
            dropout: json.field("dropout")?.as_f32()?,
            use_char_cnn: json.field("use_char_cnn")?.as_bool()?,
            head: (
                head.field("kind")?.as_str()?.to_string(),
                head.field("a")?.as_usize()?,
                head.field("b")?.as_usize()?,
            ),
        })
    }
}

/// A complete FEWNER checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Backbone hyper-parameters.
    pub backbone: SavedBackboneConfig,
    /// Meta-learning hyper-parameters.
    pub meta: MetaConfig,
    /// θ_Meta tensors (always held dequantized in memory).
    pub theta: SavedParams,
    /// The format θ is serialised in (`F32` = plain `"theta"` tensors;
    /// `F16`/`I8` write a compressed `"theta_q"` payload instead). The
    /// layout is self-describing, so the version number is unchanged.
    pub weights: WeightFormat,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl Checkpoint {
    /// Captures a trained learner.
    pub fn capture(learner: &Fewner) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            backbone: SavedBackboneConfig::from(learner.backbone.config()),
            meta: learner.config().clone(),
            theta: learner.theta.to_saved(),
            weights: WeightFormat::F32,
        }
    }

    /// Switches the checkpoint to a quantized weight format.
    ///
    /// θ is rounded through the format *immediately* (encode → decode), so
    /// [`Checkpoint::restore`] after this call behaves identically to
    /// saving and re-loading: there is one quantized θ, not an in-memory /
    /// on-disk pair that silently disagrees. Quantization is idempotent, so
    /// re-saving a loaded quantized checkpoint is lossless.
    pub fn quantize_weights(&mut self, format: WeightFormat) {
        self.weights = format;
        if format != WeightFormat::F32 {
            self.theta = QuantizedParams::quantize(&self.theta, format).dequantize();
        }
    }

    /// Restores a learner; the encoder must be the one the model was
    /// trained with (vocabulary sizes are validated through θ's shapes).
    pub fn restore(&self, enc: &TokenEncoder) -> Result<Fewner> {
        if self.version != CHECKPOINT_VERSION {
            return Err(Error::Serde(format!(
                "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
                self.version
            )));
        }
        let mut learner = Fewner::new(self.backbone.to_config()?, enc, self.meta.clone())?;
        learner.theta.load_saved(&self.theta)?;
        Ok(learner)
    }

    /// Writes the checkpoint durably: the JSON payload is framed with a
    /// versioned header and CRC-32, written to a temp file, fsynced, and
    /// atomically renamed into place ([`fewner_util::durable`]). A reader
    /// can never observe a torn checkpoint, and filesystem failures surface
    /// as [`Error::Io`] with the offending path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let json = self.to_json().to_string();
        fewner_util::durable::write_atomic(path, json.as_bytes())
    }

    /// [`Checkpoint::save`] in an explicit weight format (the CLI's
    /// `--weights` flag): quantizes a copy and writes it durably.
    pub fn save_with_weights(&self, path: impl AsRef<Path>, format: WeightFormat) -> Result<()> {
        let mut copy = self.clone();
        copy.quantize_weights(format);
        copy.save(path)
    }

    /// Reads a checkpoint file, verifying the header and CRC before
    /// parsing: a truncated or bit-flipped file is rejected with a precise
    /// [`Error::Io`] instead of a confusing JSON parse error (or silently
    /// wrong parameters).
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint> {
        let json = fewner_util::durable::read_verified_string(path)?;
        Checkpoint::from_json(&Json::parse(&json)?)
    }
}

impl ToJson for Checkpoint {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::from(self.version as u64)),
            ("backbone".into(), self.backbone.to_json()),
            ("meta".into(), self.meta.to_json()),
        ];
        if self.weights == WeightFormat::F32 {
            fields.push(("theta".into(), self.theta.to_json()));
        } else {
            fields.push(("weights".into(), Json::from(self.weights.name())));
            fields.push((
                "theta_q".into(),
                QuantizedParams::quantize(&self.theta, self.weights).to_json(),
            ));
        }
        Json::Obj(fields)
    }
}

impl FromJson for Checkpoint {
    fn from_json(json: &Json) -> Result<Checkpoint> {
        let (theta, weights) = match json.get("theta_q") {
            Some(q) => {
                let q = QuantizedParams::from_json(q)?;
                (q.dequantize(), q.format)
            }
            None => (
                SavedParams::from_json(json.field("theta")?)?,
                WeightFormat::F32,
            ),
        };
        Ok(Checkpoint {
            version: json.field("version")?.as_u64()? as u32,
            backbone: SavedBackboneConfig::from_json(json.field("backbone")?)?,
            meta: MetaConfig::from_json(json.field("meta")?)?,
            theta,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::DatasetProfile;
    use fewner_models::TokenEncoder;
    use fewner_text::embed::EmbeddingSpec;

    fn setup() -> (TokenEncoder, Fewner) {
        let d = DatasetProfile::bionlp13cg().generate(0.01).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 16,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let bb = BackboneConfig {
            word_dim: 16,
            hidden: 8,
            phi_dim: 6,
            slot_ctx_dim: 2,
            ..BackboneConfig::default_for(3)
        };
        let learner = Fewner::new(bb, &enc, MetaConfig::default()).unwrap();
        (enc, learner)
    }

    #[test]
    fn capture_restore_round_trip_preserves_theta() {
        let (enc, learner) = setup();
        let ckpt = Checkpoint::capture(&learner);
        let restored = ckpt.restore(&enc).unwrap();
        assert_eq!(learner.theta.snapshot(), restored.theta.snapshot());
        assert_eq!(
            learner.backbone.config().phi_total(),
            restored.backbone.config().phi_total()
        );
    }

    #[test]
    fn file_round_trip() {
        let (enc, learner) = setup();
        let dir = std::env::temp_dir().join("fewner-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        Checkpoint::capture(&learner).save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        let restored = loaded.restore(&enc).unwrap();
        assert_eq!(learner.theta.snapshot(), restored.theta.snapshot());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quantized_file_round_trip_is_stable() {
        let (enc, learner) = setup();
        let dir = std::env::temp_dir().join(format!("fewner-ckpt-quant-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = Checkpoint::capture(&learner);
        for format in [WeightFormat::F16, WeightFormat::I8] {
            let path = dir.join(format!("model.{}.json", format.name()));
            ckpt.save_with_weights(&path, format).unwrap();
            let loaded = Checkpoint::load(&path).unwrap();
            assert_eq!(loaded.weights, format);
            let restored = loaded.restore(&enc).unwrap();
            // Quantized θ differs from the original but only boundedly so.
            let orig = learner.theta.to_saved();
            for ((n1, a), (n2, b)) in orig.entries.iter().zip(&loaded.theta.entries) {
                assert_eq!(n1, n2);
                let worst = a
                    .data()
                    .iter()
                    .zip(b.data())
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(
                    worst < 0.05,
                    "`{n1}` drifted {worst} under {}",
                    format.name()
                );
            }
            // Re-saving the loaded checkpoint is lossless (idempotence).
            let path2 = dir.join(format!("model2.{}.json", format.name()));
            loaded.save(&path2).unwrap();
            let again = Checkpoint::load(&path2).unwrap();
            assert_eq!(
                again.theta.to_json().to_string(),
                loaded.theta.to_json().to_string()
            );
            // Loading + restoring equals in-memory quantize_all.
            let mut in_mem = learner.theta.clone();
            in_mem.quantize_all(format);
            assert_eq!(in_mem.snapshot(), restored.theta.snapshot());
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn quantized_payload_is_smaller_than_f32() {
        let (_, learner) = setup();
        let ckpt = Checkpoint::capture(&learner);
        let f32_len = ckpt.to_json().to_string().len();
        for format in [WeightFormat::F16, WeightFormat::I8] {
            let mut q = ckpt.clone();
            q.quantize_weights(format);
            let q_len = q.to_json().to_string().len();
            assert!(
                q_len < f32_len / 2,
                "{}: {q_len} bytes vs {f32_len} f32 bytes",
                format.name()
            );
        }
    }

    #[test]
    fn truncated_and_bit_flipped_files_are_rejected_with_io_errors() {
        let (_, learner) = setup();
        let dir = std::env::temp_dir().join(format!("fewner-ckpt-bits-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        Checkpoint::capture(&learner).save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Truncation (a crash without atomic rename).
        std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert!(matches!(Checkpoint::load(&path), Err(Error::Io { .. })));

        // A single flipped payload bit (silent disk corruption).
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x08;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(Checkpoint::load(&path), Err(Error::Io { .. })));

        // The pristine bytes still load.
        std::fs::write(&path, &pristine).unwrap();
        Checkpoint::load(&path).unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error_with_the_path() {
        match Checkpoint::load("/nonexistent/fewner/model.json") {
            Err(Error::Io { path, .. }) => assert!(path.contains("model.json")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (enc, learner) = setup();
        let mut ckpt = Checkpoint::capture(&learner);
        ckpt.version = 99;
        assert!(ckpt.restore(&enc).is_err());
    }

    #[test]
    fn config_mapping_round_trips_all_variants() {
        for cond in [
            Conditioning::None,
            Conditioning::Film,
            Conditioning::ConcatInput,
        ] {
            for head in [
                HeadKind::Dense { n_ways: 5 },
                HeadKind::SlotShared {
                    slot_dim: 8,
                    max_slots: 16,
                },
            ] {
                let cfg = BackboneConfig {
                    conditioning: cond,
                    head,
                    phi_dim: if cond == Conditioning::None { 0 } else { 8 },
                    slot_ctx_dim: if cond == Conditioning::None { 0 } else { 4 },
                    ..BackboneConfig::default_for(5)
                };
                let saved = SavedBackboneConfig::from(&cfg);
                let back = saved.to_config().unwrap();
                assert_eq!(back.conditioning, cond);
                assert_eq!(back.head, head);
            }
        }
    }

    #[test]
    fn malformed_strings_are_rejected() {
        let (_, learner) = setup();
        let mut saved = SavedBackboneConfig::from(learner.backbone.config());
        saved.conditioning = "quantum".into();
        assert!(saved.to_config().is_err());
        let mut saved = SavedBackboneConfig::from(learner.backbone.config());
        saved.head.0 = "hydra".into();
        assert!(saved.to_config().is_err());
    }
}
