//! The common interface every method implements.
//!
//! The paper compares ten methods under one protocol: train on episodes
//! from the source split, then for each held-out task adapt on its support
//! set and predict its query set. [`EpisodicLearner`] captures exactly that
//! protocol so the trainer, the evaluation harness and every table binary
//! treat FEWNER and all nine baselines uniformly.

use fewner_episode::Task;
use fewner_models::TokenEncoder;
use fewner_util::Result;

/// A method that learns from episodes and adapts to new tasks.
pub trait EpisodicLearner {
    /// Method name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// One meta-iteration over a batch of training tasks; returns the
    /// iteration's (mean) training loss.
    fn meta_step(&mut self, tasks: &[Task], enc: &TokenEncoder) -> Result<f32>;

    /// Adapts to a held-out task on its support set and predicts tag
    /// indices for every query sentence.
    ///
    /// Must not mutate the learner: test-time adaptation happens on copies
    /// (or, for FEWNER, on the throwaway context parameters φ).
    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>>;

    /// Learning-rate decay hook (×`factor`), driven by the trainer.
    fn decay_lr(&mut self, _factor: f32) {}
}
