//! The common interface every method implements.
//!
//! The paper compares ten methods under one protocol: train on episodes
//! from the source split, then for each held-out task adapt on its support
//! set and predict its query set. [`EpisodicLearner`] captures exactly that
//! protocol so the trainer, the evaluation harness and every table binary
//! treat FEWNER and all nine baselines uniformly.
//!
//! # The task-gradient API
//!
//! A meta-iteration decomposes into three phases:
//!
//! 1. [`EpisodicLearner::step_seed`] — the only serial, mutating prologue:
//!    learners that use dropout advance their RNG once per step here.
//! 2. [`EpisodicLearner::task_grad`] — the per-task compute: loss plus
//!    meta-gradients for **one** task, through `&self` with all randomness
//!    coming from the caller-provided [`Rng`]. Because it never mutates the
//!    learner, tasks of one meta-batch can run on any number of threads.
//! 3. [`EpisodicLearner::apply_meta_grads`] — the serial epilogue: the
//!    summed per-task gradients are averaged and fed to the optimizer.
//!
//! The provided [`EpisodicLearner::meta_step`] composes the three phases
//! serially; the parallel trainer (`fewner_core::ParallelTrainer`) fans
//! `task_grad` across scoped threads and reduces with the identical
//! fixed-order code, so both paths are bitwise-identical for a fixed seed.

use fewner_episode::Task;
use fewner_models::TokenEncoder;
use fewner_tensor::ParamGrads;
use fewner_util::{Error, Json, Result, Rng};

/// What one task contributes to a meta-iteration: its query (or support)
/// loss and the unweighted meta-gradients of that loss.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// The task's scalar loss.
    pub loss: f32,
    /// Unweighted gradients w.r.t. the learner's meta-parameters.
    pub grads: ParamGrads,
}

impl TaskOutcome {
    /// Reduces a batch of outcomes along the canonical task-index tree:
    /// mean loss and the gradient sum (unscaled —
    /// [`EpisodicLearner::apply_meta_grads`] divides by the task count).
    ///
    /// The serial default [`EpisodicLearner::meta_step`], the threaded
    /// trainer, and the sharded trainer all reduce through the one fixed
    /// plan in [`crate::reduce`]. Floating-point addition is not
    /// associative, so the shared fixed-shape reduction is precisely what
    /// makes every execution topology bitwise-identical.
    pub fn reduce(outcomes: Vec<TaskOutcome>) -> Result<(f32, ParamGrads)> {
        crate::reduce::GradReduce::new(outcomes.len())?.reduce(outcomes)
    }
}

/// The dropout/sampling RNG for task `index` of a meta-batch drawn with
/// `step_seed`.
///
/// A pure function of `(step_seed, index)`: every task gets an independent
/// stream regardless of which thread computes it or in which order, which
/// is one half of the serial/parallel bitwise-identity guarantee (the other
/// half is [`TaskOutcome::reduce`]'s fixed-order summation).
pub fn task_rng(step_seed: u64, index: usize) -> Rng {
    Rng::new(step_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A method that learns from episodes and adapts to new tasks.
pub trait EpisodicLearner {
    /// Method name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Draws the base seed for one meta-iteration's task RNGs.
    ///
    /// Called exactly once per meta-step, serially, before any task work.
    /// Learners with an internal RNG override this with `rng.next_u64()` so
    /// consecutive steps see fresh dropout; the default suits learners
    /// whose `task_grad` is deterministic.
    fn step_seed(&mut self) -> u64 {
        0
    }

    /// Computes one task's loss and meta-gradients.
    ///
    /// Must not mutate the learner — all randomness comes from `rng`
    /// (derive it with [`task_rng`]), so the same `(θ, task, rng)` triple
    /// always produces the same outcome on any thread.
    fn task_grad(&self, task: &Task, enc: &TokenEncoder, rng: &mut Rng) -> Result<TaskOutcome>;

    /// Applies the summed per-task gradients of an `n_tasks`-task batch:
    /// scales by `1 / n_tasks` and takes one optimizer step.
    fn apply_meta_grads(&mut self, grads: ParamGrads, n_tasks: usize) -> Result<()>;

    /// One meta-iteration over a batch of training tasks; returns the
    /// iteration's mean task loss.
    ///
    /// The provided implementation composes [`EpisodicLearner::step_seed`],
    /// [`EpisodicLearner::task_grad`] and
    /// [`EpisodicLearner::apply_meta_grads`] serially. Override only for
    /// methods whose outer loop is not a per-task gradient average.
    fn meta_step(&mut self, tasks: &[Task], enc: &TokenEncoder) -> Result<f32> {
        if tasks.is_empty() {
            return Err(Error::InvalidConfig("empty meta batch".into()));
        }
        let step_seed = self.step_seed();
        let mut outcomes = Vec::with_capacity(tasks.len());
        for (index, task) in tasks.iter().enumerate() {
            let mut rng = task_rng(step_seed, index);
            outcomes.push(self.task_grad(task, enc, &mut rng)?);
        }
        let (loss, grads) = TaskOutcome::reduce(outcomes)?;
        self.apply_meta_grads(grads, tasks.len())?;
        Ok(loss)
    }

    /// Adapts to a held-out task on its support set and predicts tag
    /// indices for every query sentence.
    ///
    /// Must not mutate the learner: test-time adaptation happens on copies
    /// (or, for FEWNER, on the throwaway context parameters φ).
    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>>;

    /// Learning-rate decay hook (×`factor`), driven by the trainer.
    fn decay_lr(&mut self, _factor: f32) {}

    /// Captures everything mutable the learner owns — parameters,
    /// optimizer moments, internal RNG position — as one JSON document, so
    /// a training snapshot can restore the learner mid-run. `None` (the
    /// default) marks the learner as not checkpointable; `train` with
    /// `checkpoint_every` set will refuse it up front.
    fn export_state(&self) -> Option<Json> {
        None
    }

    /// Restores state captured by [`EpisodicLearner::export_state`] into a
    /// freshly constructed learner of the *same architecture and
    /// configuration*. The default rejects the import (matching the
    /// default `export_state`).
    fn import_state(&mut self, _state: &Json) -> Result<()> {
        Err(Error::InvalidConfig(format!(
            "{} does not support training-state import",
            self.name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_rng_is_pure_and_per_index() {
        let a = task_rng(42, 0).next_u64();
        let b = task_rng(42, 0).next_u64();
        assert_eq!(a, b, "same (seed, index) must give the same stream");
        let c = task_rng(42, 1).next_u64();
        assert_ne!(a, c, "different indices must give different streams");
        let d = task_rng(43, 0).next_u64();
        assert_ne!(a, d, "different step seeds must give different streams");
    }

    #[test]
    fn reduce_rejects_empty_batches_and_averages_losses() {
        assert!(TaskOutcome::reduce(Vec::new()).is_err());
        let store = fewner_tensor::ParamStore::new();
        let outcomes = vec![
            TaskOutcome {
                loss: 1.0,
                grads: ParamGrads::zeros_like(&store),
            },
            TaskOutcome {
                loss: 3.0,
                grads: ParamGrads::zeros_like(&store),
            },
        ];
        let (loss, _) = TaskOutcome::reduce(outcomes).unwrap();
        assert_eq!(loss, 2.0);
    }
}
