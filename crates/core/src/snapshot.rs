//! Full training-state snapshots and the rolling snapshot directory.
//!
//! A [`crate::Checkpoint`] holds θ_Meta — enough to *use* a trained model,
//! but not enough to *continue* training it: bitwise-identical resumption
//! also needs the optimizer moments, the task-sampler RNG position, the
//! learner's internal RNG, the iteration counter and the LR-decay schedule
//! position. [`TrainingSnapshot`] captures all of it, and the trainer
//! writes snapshots as a *rolling pair* (`snap-<iteration>.fsnap`, newest
//! two kept): even if a crash lands mid-write and tears the newest file,
//! the verified predecessor is still on disk, so a run is never
//! unresumable.
//!
//! Every snapshot file goes through [`fewner_util::durable`]
//! (versioned header, CRC-32, write-temp/fsync/rename), and
//! [`latest_valid`] walks the directory newest-first, skipping any file
//! that fails verification.

use std::path::{Path, PathBuf};

use fewner_util::{durable, Error, FromJson, Json, Result, Rng, ToJson};

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File extension of training snapshots.
pub const SNAPSHOT_EXT: &str = "fsnap";

/// How many snapshots [`save_rolling`] keeps on disk.
pub const SNAPSHOTS_KEPT: usize = 2;

/// Identity of a training run; a snapshot refuses to resume under a
/// different schedule (except for the total iteration count, which may
/// legitimately be extended).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFingerprint {
    /// [`crate::EpisodicLearner::name`] of the learner being trained.
    pub learner: String,
    /// N.
    pub n_ways: usize,
    /// K.
    pub k_shots: usize,
    /// Query sentences per training task.
    pub query_size: usize,
    /// Task-sampling seed.
    pub seed: u64,
    /// Meta-batch size.
    pub meta_batch: usize,
}

impl ToJson for RunFingerprint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("learner".into(), Json::from(self.learner.as_str())),
            ("n_ways".into(), Json::from(self.n_ways)),
            ("k_shots".into(), Json::from(self.k_shots)),
            ("query_size".into(), Json::from(self.query_size)),
            // Hex: seeds are full u64s, beyond JSON's exact-integer range.
            ("seed".into(), Json::Str(format!("{:016x}", self.seed))),
            ("meta_batch".into(), Json::from(self.meta_batch)),
        ])
    }
}

impl FromJson for RunFingerprint {
    fn from_json(json: &Json) -> Result<RunFingerprint> {
        Ok(RunFingerprint {
            learner: json.field("learner")?.as_str()?.to_string(),
            n_ways: json.field("n_ways")?.as_usize()?,
            k_shots: json.field("k_shots")?.as_usize()?,
            query_size: json.field("query_size")?.as_usize()?,
            seed: u64::from_str_radix(json.field("seed")?.as_str()?, 16)
                .map_err(|_| Error::Serde("bad fingerprint seed".into()))?,
            meta_batch: json.field("meta_batch")?.as_usize()?,
        })
    }
}

/// The complete state of a meta-training run after some number of
/// completed iterations.
#[derive(Debug, Clone)]
pub struct TrainingSnapshot {
    /// Format version.
    pub version: u32,
    /// Completed meta-iterations (the loop resumes at this index).
    pub iteration: usize,
    /// Task-sampler stream position after iteration `iteration`.
    pub sampler_rng: Rng,
    /// Mean meta-batch loss per completed (non-skipped) iteration so far.
    pub losses: Vec<f32>,
    /// Tasks consumed so far.
    pub tasks_seen: usize,
    /// Iterations skipped for non-finite losses/gradients so far.
    pub skipped: usize,
    /// Consecutive skips at snapshot time (divergence-guard state).
    pub consecutive_skips: usize,
    /// Next `tasks_seen` threshold at which the LR decays.
    pub next_decay: usize,
    /// Wall-clock seconds accumulated before the snapshot (informational;
    /// the only non-deterministic field, and not part of the model).
    pub wall_secs: f64,
    /// The run identity this snapshot belongs to.
    pub fingerprint: RunFingerprint,
    /// The learner's exported state
    /// ([`crate::EpisodicLearner::export_state`]): parameters, optimizer
    /// moments, internal RNG.
    pub learner: Json,
}

impl ToJson for TrainingSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::from(self.version as u64)),
            ("iteration".into(), Json::from(self.iteration)),
            ("sampler_rng".into(), self.sampler_rng.to_json()),
            (
                "losses".into(),
                Json::Arr(self.losses.iter().map(|&l| Json::from(l)).collect()),
            ),
            ("tasks_seen".into(), Json::from(self.tasks_seen)),
            ("skipped".into(), Json::from(self.skipped)),
            (
                "consecutive_skips".into(),
                Json::from(self.consecutive_skips),
            ),
            ("next_decay".into(), Json::from(self.next_decay)),
            ("wall_secs".into(), Json::from(self.wall_secs)),
            ("fingerprint".into(), self.fingerprint.to_json()),
            ("learner".into(), self.learner.clone()),
        ])
    }
}

impl FromJson for TrainingSnapshot {
    fn from_json(json: &Json) -> Result<TrainingSnapshot> {
        Ok(TrainingSnapshot {
            version: json.field("version")?.as_u64()? as u32,
            iteration: json.field("iteration")?.as_usize()?,
            sampler_rng: Rng::from_json(json.field("sampler_rng")?)?,
            losses: json
                .field("losses")?
                .as_arr()?
                .iter()
                .map(Json::as_f32)
                .collect::<Result<Vec<_>>>()?,
            tasks_seen: json.field("tasks_seen")?.as_usize()?,
            skipped: json.field("skipped")?.as_usize()?,
            consecutive_skips: json.field("consecutive_skips")?.as_usize()?,
            next_decay: json.field("next_decay")?.as_usize()?,
            wall_secs: json.field("wall_secs")?.as_f64()?,
            fingerprint: RunFingerprint::from_json(json.field("fingerprint")?)?,
            learner: json.field("learner")?.clone(),
        })
    }
}

impl TrainingSnapshot {
    /// Loads and verifies one snapshot file (header, CRC, format version).
    pub fn load(path: impl AsRef<Path>) -> Result<TrainingSnapshot> {
        let path = path.as_ref();
        let json = durable::read_verified_string(path)?;
        let snap = TrainingSnapshot::from_json(&Json::parse(&json)?)?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(Error::Serde(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        Ok(snap)
    }

    /// Writes this snapshot durably to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        durable::write_atomic(path, self.to_json().to_string().as_bytes())
    }
}

/// The snapshot file name for a given completed-iteration count.
pub fn snapshot_path(dir: impl AsRef<Path>, iteration: usize) -> PathBuf {
    dir.as_ref()
        .join(format!("snap-{iteration:08}.{SNAPSHOT_EXT}"))
}

/// All snapshot files in `dir`, as `(iteration, path)` sorted ascending.
pub fn list_snapshots(dir: impl AsRef<Path>) -> Result<Vec<(usize, PathBuf)>> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io {
        path: dir.display().to_string(),
        detail: e.to_string(),
    })?;
    let mut found = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(&format!(".{SNAPSHOT_EXT}")))
        else {
            continue;
        };
        if let Ok(iteration) = stem.parse::<usize>() {
            found.push((iteration, path));
        }
    }
    found.sort();
    Ok(found)
}

/// Writes `snap` into `dir` and prunes old snapshots, keeping the newest
/// [`SNAPSHOTS_KEPT`]. The write is atomic and the prune runs only after
/// it succeeds, so a crash at any point leaves at least one valid,
/// most-recent-possible snapshot behind.
pub fn save_rolling(dir: impl AsRef<Path>, snap: &TrainingSnapshot) -> Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|e| Error::Io {
        path: dir.display().to_string(),
        detail: e.to_string(),
    })?;
    let path = snapshot_path(dir, snap.iteration);
    snap.save(&path)?;
    let all = list_snapshots(dir)?;
    if all.len() > SNAPSHOTS_KEPT {
        for (_, old) in &all[..all.len() - SNAPSHOTS_KEPT] {
            // Best effort: a stale extra snapshot is harmless.
            std::fs::remove_file(old).ok();
        }
    }
    Ok(path)
}

/// The newest snapshot in `dir` that passes verification, walking
/// newest-first past any truncated or corrupted files. `Ok(None)` when the
/// directory holds no snapshot files at all; an error when snapshots exist
/// but none is loadable.
pub fn latest_valid(dir: impl AsRef<Path>) -> Result<Option<(TrainingSnapshot, PathBuf)>> {
    let mut all = list_snapshots(dir)?;
    if all.is_empty() {
        return Ok(None);
    }
    let mut last_err = None;
    while let Some((_, path)) = all.pop() {
        match TrainingSnapshot::load(&path) {
            Ok(snap) => return Ok(Some((snap, path))),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("non-empty snapshot list"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iteration: usize) -> TrainingSnapshot {
        TrainingSnapshot {
            version: SNAPSHOT_VERSION,
            iteration,
            sampler_rng: Rng::new(7),
            losses: vec![1.5, 0.75, 0.5],
            tasks_seen: iteration * 4,
            skipped: 1,
            consecutive_skips: 0,
            next_decay: 5000,
            wall_secs: 12.25,
            fingerprint: RunFingerprint {
                learner: "FewNER".into(),
                n_ways: 5,
                k_shots: 1,
                query_size: 6,
                seed: 0xDEAD_BEEF_DEAD_BEEF,
                meta_batch: 8,
            },
            learner: Json::Obj(vec![("theta".into(), Json::Arr(vec![]))]),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fewner-snap-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn json_round_trip_preserves_all_fields() {
        let snap = sample(12);
        let json = snap.to_json().to_string();
        let back = TrainingSnapshot::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.iteration, 12);
        assert_eq!(back.sampler_rng, snap.sampler_rng);
        assert_eq!(back.losses, snap.losses);
        assert_eq!(back.fingerprint, snap.fingerprint);
        assert_eq!(back.next_decay, 5000);
        assert_eq!(back.wall_secs, 12.25);
    }

    #[test]
    fn rolling_save_keeps_the_newest_two() {
        let dir = tmp_dir("rolling");
        for it in [3, 6, 9, 12] {
            save_rolling(&dir, &sample(it)).unwrap();
        }
        let kept: Vec<usize> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept, vec![9, 12]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn latest_valid_skips_a_corrupted_newest_file() {
        let dir = tmp_dir("fallback");
        save_rolling(&dir, &sample(6)).unwrap();
        save_rolling(&dir, &sample(9)).unwrap();
        // Tear the newest file in half.
        let newest = snapshot_path(&dir, 9);
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            TrainingSnapshot::load(&newest),
            Err(Error::Io { .. })
        ));
        let (snap, path) = latest_valid(&dir).unwrap().expect("predecessor survives");
        assert_eq!(snap.iteration, 6);
        assert_eq!(path, snapshot_path(&dir, 6));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_dir_is_none_and_all_corrupt_is_an_error() {
        let dir = tmp_dir("empty");
        assert!(latest_valid(&dir).unwrap().is_none());
        save_rolling(&dir, &sample(3)).unwrap();
        let path = snapshot_path(&dir, 3);
        std::fs::write(&path, b"FEWNERD1 deadbeef 4\njunk-extra").unwrap();
        assert!(latest_valid(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
