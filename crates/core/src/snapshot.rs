//! Full training-state snapshots and the rolling snapshot directory.
//!
//! A [`crate::Checkpoint`] holds θ_Meta — enough to *use* a trained model,
//! but not enough to *continue* training it: bitwise-identical resumption
//! also needs the optimizer moments, the task-sampler RNG position, the
//! learner's internal RNG, the iteration counter and the LR-decay schedule
//! position. [`TrainingSnapshot`] captures all of it, and the trainer
//! writes snapshots as a *rolling pair* (`snap-<iteration>.fsnap`, newest
//! two kept): even if a crash lands mid-write and tears the newest file,
//! the verified predecessor is still on disk, so a run is never
//! unresumable.
//!
//! Every snapshot file goes through [`fewner_util::durable`]
//! (versioned header, CRC-32, write-temp/fsync/rename), and
//! [`latest_valid`] walks the directory newest-first, skipping any file
//! that fails verification.

use std::path::{Path, PathBuf};

use fewner_corpus::StreamCursor;
use fewner_util::{durable, Error, FromJson, Json, Result, Rng, ToJson};

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File extension of training snapshots.
pub const SNAPSHOT_EXT: &str = "fsnap";

/// How many snapshots [`save_rolling`] keeps on disk.
pub const SNAPSHOTS_KEPT: usize = 2;

/// Identity of a training run; a snapshot refuses to resume under a
/// different schedule (except for the total iteration count, which may
/// legitimately be extended).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFingerprint {
    /// [`crate::EpisodicLearner::name`] of the learner being trained.
    pub learner: String,
    /// N.
    pub n_ways: usize,
    /// K.
    pub k_shots: usize,
    /// Query sentences per training task.
    pub query_size: usize,
    /// Task-sampling seed.
    pub seed: u64,
    /// Meta-batch size.
    pub meta_batch: usize,
    /// Shard topology the run was started with (1 = unsharded). Although
    /// the reduce tree makes any shard count bitwise-equivalent, a resume
    /// under a *different* layout would silently re-home task ranges and
    /// snapshot files mid-run, so it is rejected like any other schedule
    /// change.
    pub shards: usize,
    /// Streaming-corpus geometry of the run (`None` for materialized-corpus
    /// runs). The stream cursor only addresses the same sentence under the
    /// same chunking, so a resume with different geometry is rejected like
    /// any other schedule change.
    pub stream: Option<StreamFingerprint>,
}

/// The streaming-corpus geometry a run was started with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFingerprint {
    /// Total sentences in one pass of the stream.
    pub sentences: usize,
    /// Generator chunk size.
    pub chunk_size: usize,
    /// Resident-window span in raw sentences.
    pub window: usize,
    /// Raw sentences consumed per task draw.
    pub stride: usize,
}

impl ToJson for StreamFingerprint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sentences".into(), Json::from(self.sentences)),
            ("chunk_size".into(), Json::from(self.chunk_size)),
            ("window".into(), Json::from(self.window)),
            ("stride".into(), Json::from(self.stride)),
        ])
    }
}

impl FromJson for StreamFingerprint {
    fn from_json(json: &Json) -> Result<StreamFingerprint> {
        Ok(StreamFingerprint {
            sentences: json.field("sentences")?.as_usize()?,
            chunk_size: json.field("chunk_size")?.as_usize()?,
            window: json.field("window")?.as_usize()?,
            stride: json.field("stride")?.as_usize()?,
        })
    }
}

impl ToJson for RunFingerprint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("learner".into(), Json::from(self.learner.as_str())),
            ("n_ways".into(), Json::from(self.n_ways)),
            ("k_shots".into(), Json::from(self.k_shots)),
            ("query_size".into(), Json::from(self.query_size)),
            // Hex: seeds are full u64s, beyond JSON's exact-integer range.
            ("seed".into(), Json::Str(format!("{:016x}", self.seed))),
            ("meta_batch".into(), Json::from(self.meta_batch)),
            ("shards".into(), Json::from(self.shards)),
            (
                "stream".into(),
                match &self.stream {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for RunFingerprint {
    fn from_json(json: &Json) -> Result<RunFingerprint> {
        Ok(RunFingerprint {
            learner: json.field("learner")?.as_str()?.to_string(),
            n_ways: json.field("n_ways")?.as_usize()?,
            k_shots: json.field("k_shots")?.as_usize()?,
            query_size: json.field("query_size")?.as_usize()?,
            seed: u64::from_str_radix(json.field("seed")?.as_str()?, 16)
                .map_err(|_| Error::Serde("bad fingerprint seed".into()))?,
            meta_batch: json.field("meta_batch")?.as_usize()?,
            // Absent in pre-sharding snapshots, which were all written by
            // single-process runs.
            shards: match json.field("shards") {
                Ok(v) => v.as_usize()?,
                Err(_) => 1,
            },
            // Absent in pre-streaming snapshots (all materialized-corpus).
            stream: match json.field("stream") {
                Ok(Json::Null) | Err(_) => None,
                Ok(v) => Some(StreamFingerprint::from_json(v)?),
            },
        })
    }
}

/// The complete state of a meta-training run after some number of
/// completed iterations.
#[derive(Debug, Clone)]
pub struct TrainingSnapshot {
    /// Format version.
    pub version: u32,
    /// Completed meta-iterations (the loop resumes at this index).
    pub iteration: usize,
    /// Task-sampler stream position after iteration `iteration`.
    pub sampler_rng: Rng,
    /// Mean meta-batch loss per completed (non-skipped) iteration so far.
    pub losses: Vec<f32>,
    /// Tasks consumed so far.
    pub tasks_seen: usize,
    /// Iterations skipped for non-finite losses/gradients so far.
    pub skipped: usize,
    /// Consecutive skips at snapshot time (divergence-guard state).
    pub consecutive_skips: usize,
    /// Next `tasks_seen` threshold at which the LR decays.
    pub next_decay: usize,
    /// Wall-clock seconds accumulated before the snapshot (informational;
    /// the only non-deterministic field, and not part of the model).
    pub wall_secs: f64,
    /// Which shard wrote this snapshot (`None` for unsharded runs). Purely
    /// a file-naming concern: θ is replicated, so any shard's snapshot can
    /// seed any worker's resume.
    pub shard: Option<usize>,
    /// Stream position of the window sampler after iteration `iteration`
    /// (`None` for materialized-corpus runs). Together with `sampler_rng`
    /// this makes a streaming resume bitwise-identical: the cursor replays
    /// the window, the RNG replays the draws.
    pub stream_cursor: Option<StreamCursor>,
    /// The run identity this snapshot belongs to.
    pub fingerprint: RunFingerprint,
    /// The learner's exported state
    /// ([`crate::EpisodicLearner::export_state`]): parameters, optimizer
    /// moments, internal RNG.
    pub learner: Json,
}

impl ToJson for TrainingSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::from(self.version as u64)),
            ("iteration".into(), Json::from(self.iteration)),
            ("sampler_rng".into(), self.sampler_rng.to_json()),
            (
                "losses".into(),
                Json::Arr(self.losses.iter().map(|&l| Json::from(l)).collect()),
            ),
            ("tasks_seen".into(), Json::from(self.tasks_seen)),
            ("skipped".into(), Json::from(self.skipped)),
            (
                "consecutive_skips".into(),
                Json::from(self.consecutive_skips),
            ),
            ("next_decay".into(), Json::from(self.next_decay)),
            ("wall_secs".into(), Json::from(self.wall_secs)),
            (
                "shard".into(),
                match self.shard {
                    Some(s) => Json::from(s),
                    None => Json::Null,
                },
            ),
            (
                "stream_cursor".into(),
                match &self.stream_cursor {
                    Some(c) => c.to_json(),
                    None => Json::Null,
                },
            ),
            ("fingerprint".into(), self.fingerprint.to_json()),
            ("learner".into(), self.learner.clone()),
        ])
    }
}

impl FromJson for TrainingSnapshot {
    fn from_json(json: &Json) -> Result<TrainingSnapshot> {
        Ok(TrainingSnapshot {
            version: json.field("version")?.as_u64()? as u32,
            iteration: json.field("iteration")?.as_usize()?,
            sampler_rng: Rng::from_json(json.field("sampler_rng")?)?,
            losses: json
                .field("losses")?
                .as_arr()?
                .iter()
                .map(Json::as_f32)
                .collect::<Result<Vec<_>>>()?,
            tasks_seen: json.field("tasks_seen")?.as_usize()?,
            skipped: json.field("skipped")?.as_usize()?,
            consecutive_skips: json.field("consecutive_skips")?.as_usize()?,
            next_decay: json.field("next_decay")?.as_usize()?,
            wall_secs: json.field("wall_secs")?.as_f64()?,
            shard: match json.field("shard") {
                Ok(Json::Null) | Err(_) => None,
                Ok(v) => Some(v.as_usize()?),
            },
            stream_cursor: match json.field("stream_cursor") {
                Ok(Json::Null) | Err(_) => None,
                Ok(v) => Some(StreamCursor::from_json(v)?),
            },
            fingerprint: RunFingerprint::from_json(json.field("fingerprint")?)?,
            learner: json.field("learner")?.clone(),
        })
    }
}

impl TrainingSnapshot {
    /// Loads and verifies one snapshot file (header, CRC, format version).
    pub fn load(path: impl AsRef<Path>) -> Result<TrainingSnapshot> {
        let path = path.as_ref();
        let json = durable::read_verified_string(path)?;
        let snap = TrainingSnapshot::from_json(&Json::parse(&json)?)?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(Error::Serde(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        Ok(snap)
    }

    /// Writes this snapshot durably to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        durable::write_atomic(path, self.to_json().to_string().as_bytes())
    }
}

/// Which snapshot files of a shared checkpoint directory an operation
/// addresses. Sharded runs keep one rolling pair *per shard* under one
/// directory; pruning must only touch the writer's own pair, while resume
/// may pick any shard's snapshot (θ is replicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardScope {
    /// Files written by an unsharded run (`snap-<iteration>`).
    Unsharded,
    /// Files written by one shard (`snap-s<shard>-<iteration>`).
    Shard(usize),
    /// Every snapshot file in the directory.
    Any,
}

/// One snapshot file of a checkpoint directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The shard that wrote it (`None` for unsharded runs).
    pub shard: Option<usize>,
    /// Completed-iteration count in the file name.
    pub iteration: usize,
    /// Full path.
    pub path: PathBuf,
}

/// The snapshot file name for a given completed-iteration count. `shard`
/// selects between the unsharded (`None`) and per-shard (`Some`) naming.
pub fn snapshot_path(dir: impl AsRef<Path>, shard: Option<usize>, iteration: usize) -> PathBuf {
    let name = match shard {
        None => format!("snap-{iteration:08}.{SNAPSHOT_EXT}"),
        Some(s) => format!("snap-s{s:02}-{iteration:08}.{SNAPSHOT_EXT}"),
    };
    dir.as_ref().join(name)
}

/// Snapshot files in `dir` within `scope`, sorted by `(iteration, shard)`
/// ascending.
pub fn list_snapshots(dir: impl AsRef<Path>, scope: ShardScope) -> Result<Vec<SnapshotEntry>> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io {
        path: dir.display().to_string(),
        detail: e.to_string(),
    })?;
    let mut found = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(&format!(".{SNAPSHOT_EXT}")))
        else {
            continue;
        };
        let (shard, iter_part) = match stem.strip_prefix('s') {
            Some(rest) => match rest.split_once('-') {
                Some((s, iter)) => match s.parse::<usize>() {
                    Ok(s) => (Some(s), iter),
                    Err(_) => continue,
                },
                None => continue,
            },
            None => (None, stem),
        };
        let Ok(iteration) = iter_part.parse::<usize>() else {
            continue;
        };
        let in_scope = match scope {
            ShardScope::Any => true,
            ShardScope::Unsharded => shard.is_none(),
            ShardScope::Shard(s) => shard == Some(s),
        };
        if in_scope {
            found.push(SnapshotEntry {
                shard,
                iteration,
                path,
            });
        }
    }
    found.sort_by_key(|e| (e.iteration, e.shard));
    Ok(found)
}

/// Writes `snap` into `dir` (named by `snap.shard` + `snap.iteration`) and
/// prunes old snapshots *of the same shard*, keeping its newest
/// [`SNAPSHOTS_KEPT`]. The write is atomic and the prune runs only after
/// it succeeds, so a crash at any point leaves at least one valid,
/// most-recent-possible snapshot behind — per shard, since each shard of a
/// run rolls its own pair under the shared directory.
pub fn save_rolling(dir: impl AsRef<Path>, snap: &TrainingSnapshot) -> Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|e| Error::Io {
        path: dir.display().to_string(),
        detail: e.to_string(),
    })?;
    let path = snapshot_path(dir, snap.shard, snap.iteration);
    snap.save(&path)?;
    let scope = match snap.shard {
        Some(s) => ShardScope::Shard(s),
        None => ShardScope::Unsharded,
    };
    let own = list_snapshots(dir, scope)?;
    if own.len() > SNAPSHOTS_KEPT {
        for old in &own[..own.len() - SNAPSHOTS_KEPT] {
            // Best effort: a stale extra snapshot is harmless.
            std::fs::remove_file(&old.path).ok();
        }
    }
    Ok(path)
}

/// The newest snapshot in `dir` that passes verification — and, when
/// `expected` is given, whose [`RunFingerprint`] matches it — walking
/// newest-first past any truncated, corrupted, or foreign-run files (a
/// stale snapshot from another schedule must not shadow a valid older one
/// of *this* run). All shards' files are considered: θ is replicated, so
/// any shard's snapshot resumes any worker.
///
/// `Ok(None)` when the directory holds no snapshot files at all. When
/// snapshots exist but none qualifies: [`Error::InvalidConfig`] if at
/// least one loaded cleanly (they are all foreign runs), otherwise the
/// last load error.
pub fn latest_valid(
    dir: impl AsRef<Path>,
    expected: Option<&RunFingerprint>,
) -> Result<Option<(TrainingSnapshot, PathBuf)>> {
    let mut all = list_snapshots(dir, ShardScope::Any)?;
    if all.is_empty() {
        return Ok(None);
    }
    let mut last_err = None;
    let mut mismatched = 0usize;
    while let Some(entry) = all.pop() {
        match TrainingSnapshot::load(&entry.path) {
            Ok(snap) => match expected {
                Some(fp) if snap.fingerprint != *fp => mismatched += 1,
                _ => return Ok(Some((snap, entry.path))),
            },
            Err(e) => last_err = Some(e),
        }
    }
    if mismatched > 0 {
        return Err(Error::InvalidConfig(format!(
            "checkpoint dir holds {mismatched} snapshot(s) from a different run \
             configuration (learner/schedule/seed/shard layout must match to resume)"
        )));
    }
    Err(last_err.expect("non-empty snapshot list"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iteration: usize) -> TrainingSnapshot {
        TrainingSnapshot {
            version: SNAPSHOT_VERSION,
            iteration,
            sampler_rng: Rng::new(7),
            losses: vec![1.5, 0.75, 0.5],
            tasks_seen: iteration * 4,
            skipped: 1,
            consecutive_skips: 0,
            next_decay: 5000,
            wall_secs: 12.25,
            shard: None,
            stream_cursor: None,
            fingerprint: RunFingerprint {
                learner: "FewNER".into(),
                n_ways: 5,
                k_shots: 1,
                query_size: 6,
                seed: 0xDEAD_BEEF_DEAD_BEEF,
                meta_batch: 8,
                shards: 1,
                stream: None,
            },
            learner: Json::Obj(vec![("theta".into(), Json::Arr(vec![]))]),
        }
    }

    fn sharded_sample(shard: usize, iteration: usize) -> TrainingSnapshot {
        let mut snap = sample(iteration);
        snap.shard = Some(shard);
        snap.fingerprint.shards = 2;
        snap
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fewner-snap-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn json_round_trip_preserves_all_fields() {
        let snap = sample(12);
        let json = snap.to_json().to_string();
        let back = TrainingSnapshot::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.iteration, 12);
        assert_eq!(back.sampler_rng, snap.sampler_rng);
        assert_eq!(back.losses, snap.losses);
        assert_eq!(back.fingerprint, snap.fingerprint);
        assert_eq!(back.next_decay, 5000);
        assert_eq!(back.wall_secs, 12.25);
    }

    #[test]
    fn rolling_save_keeps_the_newest_two() {
        let dir = tmp_dir("rolling");
        for it in [3, 6, 9, 12] {
            save_rolling(&dir, &sample(it)).unwrap();
        }
        let kept: Vec<usize> = list_snapshots(&dir, ShardScope::Unsharded)
            .unwrap()
            .into_iter()
            .map(|e| e.iteration)
            .collect();
        assert_eq!(kept, vec![9, 12]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn each_shard_rolls_its_own_pair_under_one_dir() {
        let dir = tmp_dir("sharded-rolling");
        for it in [3, 6, 9] {
            save_rolling(&dir, &sharded_sample(0, it)).unwrap();
            save_rolling(&dir, &sharded_sample(1, it)).unwrap();
        }
        // Pruning shard 1 must not touch shard 0's files (and vice versa).
        for shard in [0, 1] {
            let kept: Vec<usize> = list_snapshots(&dir, ShardScope::Shard(shard))
                .unwrap()
                .into_iter()
                .map(|e| e.iteration)
                .collect();
            assert_eq!(kept, vec![6, 9], "shard {shard}");
        }
        let all = list_snapshots(&dir, ShardScope::Any).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].shard, Some(0));
        assert_eq!(
            all[0].path,
            snapshot_path(&dir, Some(0), 6),
            "per-shard naming is part of the on-disk contract"
        );
        assert!(list_snapshots(&dir, ShardScope::Unsharded)
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn latest_valid_skips_a_corrupted_newest_file() {
        let dir = tmp_dir("fallback");
        save_rolling(&dir, &sample(6)).unwrap();
        save_rolling(&dir, &sample(9)).unwrap();
        // Tear the newest file in half.
        let newest = snapshot_path(&dir, None, 9);
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            TrainingSnapshot::load(&newest),
            Err(Error::Io { .. })
        ));
        let (snap, path) = latest_valid(&dir, None)
            .unwrap()
            .expect("predecessor survives");
        assert_eq!(snap.iteration, 6);
        assert_eq!(path, snapshot_path(&dir, None, 6));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn latest_valid_skips_a_newer_snapshot_from_a_foreign_run() {
        let dir = tmp_dir("foreign");
        save_rolling(&dir, &sample(6)).unwrap();
        let mut foreign = sample(9);
        foreign.fingerprint.seed ^= 1;
        save_rolling(&dir, &foreign).unwrap();

        // A stale newer snapshot from another schedule must not shadow the
        // valid older one of this run…
        let fp = sample(0).fingerprint;
        let (snap, _) = latest_valid(&dir, Some(&fp))
            .unwrap()
            .expect("own run found");
        assert_eq!(snap.iteration, 6);

        // …but when *nothing* matches, that is a config error, not a
        // silent fresh start.
        let mut other = fp.clone();
        other.seed ^= 2;
        assert!(matches!(
            latest_valid(&dir, Some(&other)),
            Err(Error::InvalidConfig(_))
        ));

        // Without an expected fingerprint the newest valid file wins.
        let (snap, _) = latest_valid(&dir, None).unwrap().unwrap();
        assert_eq!(snap.iteration, 9);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_dir_is_none_and_all_corrupt_is_an_error() {
        let dir = tmp_dir("empty");
        assert!(latest_valid(&dir, None).unwrap().is_none());
        save_rolling(&dir, &sample(3)).unwrap();
        let path = snapshot_path(&dir, None, 3);
        std::fs::write(&path, b"FEWNERD1 deadbeef 4\njunk-extra").unwrap();
        assert!(latest_valid(&dir, None).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fingerprint_shard_topology_round_trips_and_defaults_to_one() {
        let snap = sharded_sample(1, 4);
        let json = snap.to_json().to_string();
        let back = TrainingSnapshot::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.shard, Some(1));
        assert_eq!(back.fingerprint.shards, 2);

        // Pre-sharding snapshots carry neither field.
        let mut legacy = sample(4).to_json();
        if let Json::Obj(fields) = &mut legacy {
            fields.retain(|(k, _)| k != "shard");
            for (k, v) in fields.iter_mut() {
                if k == "fingerprint" {
                    if let Json::Obj(fp) = v {
                        fp.retain(|(k, _)| k != "shards");
                    }
                }
            }
        }
        let back = TrainingSnapshot::from_json(&legacy).unwrap();
        assert_eq!(back.shard, None);
        assert_eq!(back.fingerprint.shards, 1);
    }

    #[test]
    fn stream_cursor_and_geometry_round_trip_and_default_to_none() {
        let mut snap = sample(4);
        snap.stream_cursor = Some(StreamCursor { chunk: 17, pos: 3 });
        snap.fingerprint.stream = Some(StreamFingerprint {
            sentences: 1_000_000,
            chunk_size: 4096,
            window: 8192,
            stride: 64,
        });
        let json = snap.to_json().to_string();
        let back = TrainingSnapshot::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.stream_cursor, snap.stream_cursor);
        assert_eq!(back.fingerprint.stream, snap.fingerprint.stream);
        assert_ne!(back.fingerprint, sample(4).fingerprint);

        // Pre-streaming snapshots carry neither field.
        let mut legacy = sample(4).to_json();
        if let Json::Obj(fields) = &mut legacy {
            fields.retain(|(k, _)| k != "stream_cursor");
            for (k, v) in fields.iter_mut() {
                if k == "fingerprint" {
                    if let Json::Obj(fp) = v {
                        fp.retain(|(k, _)| k != "stream");
                    }
                }
            }
        }
        let back = TrainingSnapshot::from_json(&legacy).unwrap();
        assert_eq!(back.stream_cursor, None);
        assert_eq!(back.fingerprint.stream, None);
    }
}
