//! MAML baseline (paper §4.1.2; Finn et al.).
//!
//! Identical protocol to FEWNER but with *no* θ/φ split: the inner loop
//! adapts a copy of the **entire network** on the support set, and test-time
//! adaptation does the same — the paper's argument for why MAML both
//! overfits on K-shot support sets and costs more per adaptation. We use
//! the standard first-order approximation (query gradients evaluated at the
//! adapted parameters are applied to the initialisation), which is also
//! what makes the cost comparison in §4.5.2 fair.
//!
//! A cloned [`ParamStore`] keeps its identity, so gradients computed
//! against the adapted copy can be applied to the original directly.

use fewner_episode::Task;
use fewner_models::{encode_task, Backbone, BackboneConfig, LabeledSentence, TokenEncoder};
use fewner_tensor::{Adam, Graph, ParamStore, SavedAdam, SavedParams, Sgd};
use fewner_text::TagSet;
use fewner_util::{Error, FromJson, Json, Result, Rng, ToJson};

use crate::config::MetaConfig;
use crate::learner::{EpisodicLearner, TaskOutcome};

/// The MAML meta-learner over the same CNN-BiGRU-CRF backbone.
pub struct Maml {
    /// The backbone (built with `Conditioning::None`).
    pub backbone: Backbone,
    /// Meta-initialisation θ.
    pub theta: ParamStore,
    cfg: MetaConfig,
    opt: Adam,
    rng: Rng,
}

impl Maml {
    /// Builds the learner; the backbone must be conditioning-free.
    pub fn new(bb_cfg: BackboneConfig, enc: &TokenEncoder, cfg: MetaConfig) -> Result<Maml> {
        cfg.validate()?;
        if bb_cfg.conditioning != fewner_models::Conditioning::None {
            return Err(Error::InvalidConfig(
                "MAML adapts the whole network; use Conditioning::None".into(),
            ));
        }
        let mut rng = Rng::new(cfg.seed ^ 0x4D41_4D4C);
        let mut theta = ParamStore::new();
        let backbone = Backbone::new(bb_cfg, enc, &mut theta, &mut rng)?;
        let opt = Adam::new(cfg.meta_lr)
            .with_clip(cfg.clip)
            .with_weight_decay(cfg.l2);
        Ok(Maml {
            backbone,
            theta,
            cfg,
            opt,
            rng,
        })
    }

    /// Inner loop: SGD on a *copy* of the full parameter set.
    fn adapt_full(
        &self,
        support: &[LabeledSentence],
        tags: &TagSet,
        steps: usize,
    ) -> Result<ParamStore> {
        let mut adapted = self.theta.clone();
        let mut sgd = Sgd::new(self.cfg.inner_lr);
        let mut rng = Rng::new(0);
        for _ in 0..steps {
            let g = Graph::eval(); // inner loop: dropout off, gradients on
            let loss = self
                .backbone
                .batch_loss(&g, &adapted, None, support, tags, &mut rng);
            let grads = g.backward(loss)?.for_store(&adapted);
            sgd.step(&mut adapted, &grads)?;
        }
        Ok(adapted)
    }
}

impl EpisodicLearner for Maml {
    fn name(&self) -> &'static str {
        "MAML"
    }

    fn step_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn task_grad(&self, task: &Task, enc: &TokenEncoder, rng: &mut Rng) -> Result<TaskOutcome> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        let adapted = self.adapt_full(&support, &tags, self.cfg.inner_steps_train)?;
        let g = Graph::new(); // training mode: dropout active
        let loss = self
            .backbone
            .batch_loss(&g, &adapted, None, &query, &tags, rng);
        let loss_value = g.value(loss).scalar_value();
        // First-order MAML: gradients at θ′ applied to θ (same store id).
        Ok(TaskOutcome {
            loss: loss_value,
            grads: g.backward(loss)?.for_store(&adapted),
        })
    }

    fn apply_meta_grads(
        &mut self,
        mut grads: fewner_tensor::ParamGrads,
        n_tasks: usize,
    ) -> Result<()> {
        grads.scale(1.0 / n_tasks.max(1) as f32);
        self.opt.step(&mut self.theta, &grads)
    }

    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        let adapted = self.adapt_full(&support, &tags, self.cfg.inner_steps_test)?;
        Ok(self
            .backbone
            .decode_task(&adapted, None, query.iter().map(|(sent, _)| sent), &tags))
    }

    fn decay_lr(&mut self, factor: f32) {
        self.opt.decay_lr(factor);
    }

    fn export_state(&self) -> Option<Json> {
        Some(Json::Obj(vec![
            ("theta".into(), self.theta.to_saved().to_json()),
            ("opt".into(), self.opt.to_saved().to_json()),
            ("rng".into(), self.rng.to_json()),
        ]))
    }

    fn import_state(&mut self, state: &Json) -> Result<()> {
        self.theta
            .load_saved(&SavedParams::from_json(state.field("theta")?)?)?;
        self.opt
            .load_saved(&SavedAdam::from_json(state.field("opt")?)?);
        self.rng = Rng::from_json(state.field("rng")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_models::Conditioning;
    use fewner_text::embed::EmbeddingSpec;

    fn setup() -> (TokenEncoder, Vec<Task>, Maml) {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let mut rng = Rng::new(5);
        let tasks: Vec<Task> = (0..2).map(|_| sampler.sample(&mut rng).unwrap()).collect();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let bb_cfg = BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: 0,
            slot_ctx_dim: 0,
            conditioning: Conditioning::None,
            dropout: 0.1,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: fewner_models::HeadKind::Dense { n_ways: 3 },
        };
        let maml = Maml::new(bb_cfg, &enc, MetaConfig::default()).unwrap();
        (enc, tasks, maml)
    }

    #[test]
    fn meta_step_updates_theta() {
        let (enc, tasks, mut maml) = setup();
        let before = maml.theta.snapshot();
        let loss = maml.meta_step(&tasks, &enc).unwrap();
        assert!(loss.is_finite());
        assert!(before
            .iter()
            .zip(&maml.theta.snapshot())
            .any(|(a, b)| a != b));
    }

    #[test]
    fn test_adaptation_does_not_mutate_the_initialisation() {
        let (enc, tasks, maml) = setup();
        let before = maml.theta.snapshot();
        let preds = maml.adapt_and_predict(&tasks[0], &enc).unwrap();
        assert_eq!(before, maml.theta.snapshot());
        assert_eq!(preds.len(), tasks[0].query.len());
    }

    #[test]
    fn conditioned_backbone_is_rejected() {
        let (enc, _, _) = setup();
        let bb_cfg = BackboneConfig {
            word_dim: 20,
            conditioning: Conditioning::Film,
            ..BackboneConfig::default_for(3)
        };
        assert!(Maml::new(bb_cfg, &enc, MetaConfig::default()).is_err());
    }

    #[test]
    fn inner_adaptation_moves_the_copy() {
        let (enc, tasks, maml) = setup();
        let tags = tasks[0].tag_set();
        let (support, _) = encode_task(&enc, &tasks[0]);
        let adapted = maml.adapt_full(&support, &tags, 2).unwrap();
        let orig = maml.theta.snapshot();
        let new = adapted.snapshot();
        assert!(orig.iter().zip(&new).any(|(a, b)| a != b));
    }
}
