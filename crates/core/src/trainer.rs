//! The meta-training loop (Algorithm 1, training procedure).
//!
//! Samples meta-batches of N-way K-shot tasks from a training split, drives
//! any [`EpisodicLearner`] through them, and applies the paper's
//! learning-rate schedule (×0.9 every 5000 tasks, §4.1.3). Also records the
//! per-phase timings behind the §4.5.2 analysis.

use std::time::Instant;

use fewner_corpus::SplitView;
use fewner_episode::EpisodeSampler;
use fewner_models::TokenEncoder;
use fewner_util::{Result, Rng};

use crate::config::MetaConfig;
use crate::learner::EpisodicLearner;

/// Outer-loop training schedule.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of meta-iterations (each sees `meta_batch` tasks).
    pub iterations: usize,
    /// N.
    pub n_ways: usize,
    /// K.
    pub k_shots: usize,
    /// Query sentences per training task.
    pub query_size: usize,
    /// Task-sampling seed (distinct from the evaluation seed).
    pub seed: u64,
}

impl TrainConfig {
    /// A small default schedule used by tests and smoke benchmarks.
    pub fn smoke(n_ways: usize, k_shots: usize) -> TrainConfig {
        TrainConfig {
            iterations: 30,
            n_ways,
            k_shots,
            query_size: 8,
            seed: 0x7E57,
        }
    }
}

/// What happened during training.
#[derive(Debug, Clone)]
pub struct TrainingLog {
    /// Mean meta-batch loss per iteration.
    pub losses: Vec<f32>,
    /// Total tasks consumed.
    pub tasks_seen: usize,
    /// Wall-clock seconds for the whole loop.
    pub wall_secs: f64,
    /// Mean wall-clock seconds per meta-iteration (the §4.5.2 "outer
    /// loops" figure).
    pub secs_per_iteration: f64,
}

impl TrainingLog {
    /// Mean of the last `n` losses (convergence diagnostics).
    pub fn tail_loss(&self, n: usize) -> f32 {
        let tail = &self.losses[self.losses.len().saturating_sub(n)..];
        if tail.is_empty() {
            return f32::NAN;
        }
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// Meta-trains `learner` on tasks sampled from `view`.
pub fn train(
    learner: &mut dyn EpisodicLearner,
    view: &SplitView,
    enc: &TokenEncoder,
    meta: &MetaConfig,
    cfg: &TrainConfig,
) -> Result<TrainingLog> {
    meta.validate()?;
    let sampler = EpisodeSampler::new(view, cfg.n_ways, cfg.k_shots, cfg.query_size)?;
    let mut rng = Rng::new(cfg.seed);
    let mut losses = Vec::with_capacity(cfg.iterations);
    let mut tasks_seen = 0usize;
    let mut next_decay = meta.decay_every_tasks;
    let start = Instant::now();

    for _ in 0..cfg.iterations {
        // A rare unconstructible task (possible on sparse splits) is
        // skipped rather than aborting a long run; a batch with no tasks at
        // all is a genuine configuration problem.
        let mut batch = Vec::with_capacity(meta.meta_batch);
        let mut last_err = None;
        for _ in 0..meta.meta_batch {
            match sampler.sample(&mut rng) {
                Ok(task) => batch.push(task),
                Err(e) => last_err = Some(e),
            }
        }
        if batch.is_empty() {
            return Err(last_err.expect("meta_batch > 0"));
        }
        // Likewise a transient numerical failure skips the batch (the
        // optimizer refuses non-finite gradients, so state stays clean).
        let loss = match learner.meta_step(&batch, enc) {
            Ok(loss) => loss,
            Err(fewner_util::Error::NonFinite { .. }) => {
                losses.push(f32::NAN);
                continue;
            }
            Err(e) => return Err(e),
        };
        losses.push(loss);
        tasks_seen += batch.len();
        while tasks_seen >= next_decay {
            learner.decay_lr(meta.decay);
            next_decay += meta.decay_every_tasks;
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    Ok(TrainingLog {
        secs_per_iteration: wall_secs / cfg.iterations.max(1) as f64,
        losses,
        tasks_seen,
        wall_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::ProtoLearner;
    use crate::fewner::Fewner;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_models::{BackboneConfig, Conditioning, HeadKind};
    use fewner_text::embed::EmbeddingSpec;

    fn bb_cfg(cond: Conditioning, phi: usize) -> BackboneConfig {
        BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: phi,
            slot_ctx_dim: if phi == 0 { 0 } else { 4 },
            conditioning: cond,
            dropout: 0.1,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways: 3 },
        }
    }

    #[test]
    fn training_loop_runs_and_logs() {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let meta = MetaConfig {
            meta_batch: 2,
            inner_steps_train: 1,
            ..MetaConfig::default()
        };
        let mut learner = Fewner::new(bb_cfg(Conditioning::Film, 8), &enc, meta.clone()).unwrap();
        let cfg = TrainConfig {
            iterations: 3,
            n_ways: 3,
            k_shots: 1,
            query_size: 4,
            seed: 9,
        };
        let log = train(&mut learner, &split.train, &enc, &meta, &cfg).unwrap();
        assert_eq!(log.losses.len(), 3);
        assert_eq!(log.tasks_seen, 6);
        assert!(log.losses.iter().all(|l| l.is_finite()));
        assert!(log.secs_per_iteration > 0.0);
        assert!(log.tail_loss(2).is_finite());
    }

    #[test]
    fn decay_fires_on_task_schedule() {
        // With decay_every_tasks = 4 and meta_batch = 2, the decay hook
        // must fire after iterations 2 and 4.
        struct Probe {
            decays: usize,
        }
        impl EpisodicLearner for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn meta_step(
                &mut self,
                _tasks: &[fewner_episode::Task],
                _enc: &TokenEncoder,
            ) -> Result<f32> {
                Ok(0.0)
            }
            fn adapt_and_predict(
                &self,
                _task: &fewner_episode::Task,
                _enc: &TokenEncoder,
            ) -> Result<Vec<Vec<usize>>> {
                Ok(vec![])
            }
            fn decay_lr(&mut self, _f: f32) {
                self.decays += 1;
            }
        }
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let meta = MetaConfig {
            meta_batch: 2,
            decay_every_tasks: 4,
            ..MetaConfig::default()
        };
        let mut probe = Probe { decays: 0 };
        let cfg = TrainConfig {
            iterations: 4,
            n_ways: 3,
            k_shots: 1,
            query_size: 4,
            seed: 9,
        };
        train(&mut probe, &split.train, &enc, &meta, &cfg).unwrap();
        assert_eq!(probe.decays, 2);
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_probe_episode() {
        // Per-iteration losses are noisy across sampled tasks; measure
        // improvement on one *fixed* probe episode before vs after training.
        let d = DatasetProfile::bionlp13cg().generate(0.08).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let sampler = fewner_episode::EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let probe = sampler.sample(&mut Rng::new(777)).unwrap();

        let meta = MetaConfig {
            meta_batch: 2,
            meta_lr: 5e-3,
            ..MetaConfig::default()
        };
        let mut learner =
            ProtoLearner::new(bb_cfg(Conditioning::None, 0), &enc, meta.clone()).unwrap();

        let probe_loss = |l: &mut ProtoLearner| -> f32 {
            // meta_step on a frozen copy would mutate; instead evaluate the
            // episode loss directly through the public learner API by
            // running a step on a clone of the parameters.
            let snapshot = l.theta.snapshot();
            let loss = l.meta_step(std::slice::from_ref(&probe), &enc).unwrap();
            l.theta.restore(&snapshot);
            loss
        };
        let before = probe_loss(&mut learner);
        let cfg = TrainConfig {
            iterations: 24,
            n_ways: 3,
            k_shots: 1,
            query_size: 4,
            seed: 10,
        };
        train(&mut learner, &split.train, &enc, &meta, &cfg).unwrap();
        let after = probe_loss(&mut learner);
        assert!(
            after < before,
            "probe loss should improve: {before} -> {after}"
        );
    }
}
