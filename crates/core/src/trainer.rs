//! The meta-training loop (Algorithm 1, training procedure).
//!
//! Samples meta-batches of N-way K-shot tasks from a training split, drives
//! any [`EpisodicLearner`] through them, and applies the paper's
//! learning-rate schedule (×0.9 every 5000 tasks, §4.1.3). Also records the
//! per-phase timings behind the §4.5.2 analysis.
//!
//! # Threading and sharding
//!
//! The tasks of one meta-batch are independent given θ, so
//! [`ParallelTrainer`] fans [`EpisodicLearner::task_grad`] across scoped
//! worker threads and reduces the per-task gradients on one thread along
//! the canonical task-index tree ([`crate::reduce::GradReduce`]).
//! Randomness is pinned per task by [`crate::task_rng`], so the parallel
//! loop is bitwise-identical to the serial one for a fixed seed, at any
//! thread count. Configure with [`TrainConfig::threads`] or the
//! `FEWNER_THREADS` environment variable.
//!
//! The same plan scales past one process: with [`TrainConfig::shards`]
//! ≥ 2 every worker process runs this loop in lockstep, computes only its
//! assigned subtree of each batch, and applies the coordinator-reduced
//! gradients (see [`crate::shard`]) — still bitwise-identical to the
//! serial run.
//!
//! # Crash safety
//!
//! With [`TrainConfig::checkpoint_every`] set, the loop writes a full
//! [`TrainingSnapshot`] (θ, optimizer moments, both RNG streams, counters,
//! decay position) into [`TrainConfig::checkpoint_dir`] every n completed
//! iterations, as a rolling pair of durable files (per shard, when
//! sharded). [`Trainer::resume`] restarts
//! from the newest valid snapshot and — because every source of
//! randomness is part of the snapshot — produces the bitwise-identical
//! model a straight-through run would have, at any thread count.
//!
//! Non-finite meta-batches are skipped, and
//! [`MetaConfig::max_consecutive_skips`] bounds how many may be skipped
//! *in a row* before the loop aborts with [`Error::Diverged`] instead of
//! burning the rest of the schedule on a ruined θ.

use std::path::{Path, PathBuf};
use std::time::Instant;

use fewner_corpus::{SplitView, StreamCursor, StreamingCorpus, TypePartition};
use fewner_episode::{EpisodeSampler, StreamSampler, Task};
use fewner_models::TokenEncoder;
use fewner_obs::Tracer;
use fewner_util::{fault, Error, Json, Result, Rng};

use crate::config::MetaConfig;
use crate::learner::{task_rng, EpisodicLearner, TaskOutcome};
use crate::snapshot::{
    self, RunFingerprint, StreamFingerprint, TrainingSnapshot, SNAPSHOT_VERSION,
};

/// How many trailing finite losses [`Error::Diverged`] carries.
const DIVERGED_TAIL: usize = 8;

/// Thread count read from the `FEWNER_THREADS` environment variable, if
/// set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var("FEWNER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Outer-loop training schedule.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of meta-iterations (each sees `meta_batch` tasks).
    pub iterations: usize,
    /// N.
    pub n_ways: usize,
    /// K.
    pub k_shots: usize,
    /// Query sentences per training task.
    pub query_size: usize,
    /// Task-sampling seed (distinct from the evaluation seed).
    pub seed: u64,
    /// Worker threads for the per-task meta-gradient fan-out: `1` trains
    /// serially (the default), `0` uses the machine's available
    /// parallelism, `n > 1` uses exactly `n` threads. The `FEWNER_THREADS`
    /// environment variable overrides this at run time.
    pub threads: usize,
    /// Write a [`TrainingSnapshot`] after every this-many completed
    /// iterations (`0`, the default, disables checkpointing). Requires
    /// `checkpoint_dir` and a learner that implements
    /// [`EpisodicLearner::export_state`].
    pub checkpoint_every: usize,
    /// Directory for rolling training snapshots (the newest
    /// [`snapshot::SNAPSHOTS_KEPT`] are kept).
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a structured trace (spans, events, metric snapshots) to this
    /// JSONL file. `None` (the default) traces nothing and costs nothing.
    /// Tracing never changes the numbers: checkpoints are bitwise
    /// identical with tracing on or off, at any thread count.
    pub trace_path: Option<PathBuf>,
    /// Total worker processes of a sharded run (`1`, the default, trains
    /// in-process). With `shards > 1` this process computes only its
    /// subtree of each meta-batch and exchanges gradients through the
    /// coordinator at [`TrainConfig::coordinator`].
    pub shards: usize,
    /// This worker's shard id, `0 ≤ shard_id < shards`.
    pub shard_id: usize,
    /// `host:port` of the shard coordinator (required when `shards > 1`).
    pub coordinator: Option<String>,
}

impl TrainConfig {
    /// A schedule for N-way K-shot training with library defaults
    /// (100 iterations, query size 8, seed `0x7E57`, serial, no
    /// checkpoints). Refine with the builder methods.
    pub fn new(n_ways: usize, k_shots: usize) -> TrainConfig {
        TrainConfig {
            iterations: 100,
            n_ways,
            k_shots,
            query_size: 8,
            seed: 0x7E57,
            threads: 1,
            checkpoint_every: 0,
            checkpoint_dir: None,
            trace_path: None,
            shards: 1,
            shard_id: 0,
            coordinator: None,
        }
    }

    /// A small default schedule used by tests and smoke benchmarks.
    pub fn smoke(n_ways: usize, k_shots: usize) -> TrainConfig {
        TrainConfig::new(n_ways, k_shots).iterations(30)
    }

    /// Sets the number of meta-iterations.
    pub fn iterations(mut self, iterations: usize) -> TrainConfig {
        self.iterations = iterations;
        self
    }

    /// Sets the query sentences per training task.
    pub fn query_size(mut self, query_size: usize) -> TrainConfig {
        self.query_size = query_size;
        self
    }

    /// Sets the task-sampling seed.
    pub fn seed(mut self, seed: u64) -> TrainConfig {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (see the `threads` field).
    pub fn threads(mut self, threads: usize) -> TrainConfig {
        self.threads = threads;
        self
    }

    /// Sets the snapshot cadence (`0` disables checkpointing).
    pub fn checkpoint_every(mut self, every: usize) -> TrainConfig {
        self.checkpoint_every = every;
        self
    }

    /// Sets the rolling-snapshot directory.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> TrainConfig {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Enables structured tracing to a durable JSONL file (see the
    /// `trace_path` field).
    pub fn trace(mut self, path: impl Into<PathBuf>) -> TrainConfig {
        self.trace_path = Some(path.into());
        self
    }

    /// Sets the shard topology (total worker processes; `1` = unsharded).
    pub fn shards(mut self, shards: usize) -> TrainConfig {
        self.shards = shards;
        self
    }

    /// Sets this worker's shard id.
    pub fn shard_id(mut self, shard_id: usize) -> TrainConfig {
        self.shard_id = shard_id;
        self
    }

    /// Sets the shard coordinator address (`host:port`).
    pub fn coordinator(mut self, addr: impl Into<String>) -> TrainConfig {
        self.coordinator = Some(addr.into());
        self
    }

    /// The tracer this schedule asks for: a JSONL tracer when
    /// `trace_path` is set, the free no-op tracer otherwise.
    pub fn tracer(&self) -> Tracer {
        match &self.trace_path {
            Some(path) => Tracer::jsonl(path),
            None => Tracer::disabled(),
        }
    }

    /// The effective thread count: the `FEWNER_THREADS` environment
    /// variable if set, else the `threads` field, with `0` resolved to the
    /// machine's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        let requested = env_threads().unwrap_or(self.threads);
        if requested == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            requested
        }
    }
}

/// What happened during training.
#[derive(Debug, Clone)]
pub struct TrainingLog {
    /// Mean meta-batch loss per completed iteration.
    pub losses: Vec<f32>,
    /// Total tasks consumed.
    pub tasks_seen: usize,
    /// Iterations skipped because the meta-batch produced a non-finite
    /// loss or gradient (the optimizer refuses them, so θ stays clean).
    pub skipped: usize,
    /// Wall-clock seconds for the whole loop (across all resumed legs).
    pub wall_secs: f64,
    /// Mean wall-clock seconds per meta-iteration (the §4.5.2 "outer
    /// loops" figure).
    pub secs_per_iteration: f64,
}

impl TrainingLog {
    /// Mean of the last `n` losses (convergence diagnostics), or `None`
    /// when no iteration completed — e.g. every batch was skipped.
    pub fn tail_loss(&self, n: usize) -> Option<f32> {
        let tail = &self.losses[self.losses.len().saturating_sub(n)..];
        if tail.is_empty() {
            return None;
        }
        Some(tail.iter().sum::<f32>() / tail.len() as f32)
    }
}

/// Maps an injected task-gradient fault to its observable behaviour:
/// `Error` mimics a numerical blow-up (the trainer's skip path), `Panic`
/// mimics a crash (a worker panic, or process death on the serial path).
fn check_task_fault() -> Result<()> {
    match fault::task_grad_fault() {
        None => Ok(()),
        Some(fault::TaskFault::Error) => Err(Error::NonFinite {
            context: "injected fault: task_grad".into(),
        }),
        Some(fault::TaskFault::Panic) => panic!("injected fault: task_grad panic"),
    }
}

/// Fans [`EpisodicLearner::task_grad`] over scoped worker threads.
///
/// Work is split into contiguous per-thread chunks of task indices; every
/// worker returns its outcomes keyed by those indices, and the reduction
/// ([`TaskOutcome::reduce`]) runs on the calling thread in task-index
/// order. The result is bitwise-identical to the serial
/// [`EpisodicLearner::meta_step`] for any thread count.
#[derive(Debug, Clone, Copy)]
pub struct ParallelTrainer {
    threads: usize,
}

impl ParallelTrainer {
    /// A trainer over `threads` workers (`0` = available parallelism; both
    /// overridden by `FEWNER_THREADS`).
    pub fn new(threads: usize) -> ParallelTrainer {
        let requested = env_threads().unwrap_or(threads);
        let threads = if requested == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            requested
        };
        ParallelTrainer { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// One meta-iteration with the per-task work fanned across workers.
    ///
    /// Falls back to the learner's own (serial) `meta_step` for one thread
    /// or one task. A panicking worker surfaces as
    /// [`fewner_util::Error::WorkerPanic`].
    ///
    /// When a [`fault::FaultPlan`] is armed the serial fall-back runs the
    /// same decomposed loop as the parallel path so per-task fault hooks
    /// fire on it too — there, an injected panic unwinds the calling
    /// thread (i.e. kills the process), which is exactly the crash the CI
    /// kill-and-resume smoke test wants.
    pub fn meta_step<L>(&self, learner: &mut L, tasks: &[Task], enc: &TokenEncoder) -> Result<f32>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        self.meta_step_traced(learner, tasks, enc, &Tracer::disabled())
    }

    /// [`ParallelTrainer::meta_step`] with per-task losses and the
    /// meta-gradient norm recorded into `tracer`.
    ///
    /// An enabled tracer forces the decomposed task-gradient loop even on
    /// the serial path — the same already-bitwise-identical code the
    /// parallel and fault-armed paths use — so the per-task outcomes are
    /// observable without asking learners to instrument their own
    /// `meta_step` overrides.
    pub fn meta_step_traced<L>(
        &self,
        learner: &mut L,
        tasks: &[Task],
        enc: &TokenEncoder,
        tracer: &Tracer,
    ) -> Result<f32>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        if tasks.is_empty() {
            return Err(Error::InvalidConfig("empty meta batch".into()));
        }
        let faults_armed = fault::active().is_some();
        if (self.threads <= 1 || tasks.len() < 2) && !faults_armed && !tracer.enabled() {
            return learner.meta_step(tasks, enc);
        }
        let step_seed = learner.step_seed();
        // The whole batch as one reduce-tree root range (a one-element
        // slice of Range, not a collected index list).
        #[allow(clippy::single_range_in_vec_init)]
        let full = [0..tasks.len()];
        let outcomes: Vec<TaskOutcome> = self
            .range_outcomes(learner, tasks, enc, step_seed, &full)?
            .into_iter()
            .map(|(_, outcome)| outcome)
            .collect();
        if tracer.enabled() {
            for outcome in &outcomes {
                tracer.observe("train/task_loss", f64::from(outcome.loss));
            }
            tracer.incr("train/tasks", outcomes.len() as u64);
        }
        let (loss, grads) = TaskOutcome::reduce(outcomes)?;
        if tracer.enabled() {
            // Read-only over the reduced gradients; never touches an RNG.
            tracer.observe("train/grad_norm", f64::from(grads.global_norm()));
        }
        learner.apply_meta_grads(grads, tasks.len())?;
        Ok(loss)
    }

    /// Computes [`EpisodicLearner::task_grad`] for exactly the task indices
    /// in `ranges`, fanned over this trainer's workers, returning
    /// `(index, outcome)` pairs in ascending index order.
    ///
    /// This is the transport-agnostic compute kernel shared by the whole
    /// training stack: [`ParallelTrainer::meta_step`] calls it with the
    /// full range `[0..tasks.len()]`, while a shard worker
    /// ([`crate::shard::ShardSession`]) calls it with its assigned subtree
    /// ranges of the meta-batch. Task randomness depends only on
    /// `(step_seed, index)` and the reduction shape only on the index
    /// bracketing ([`crate::reduce::GradReduce`]), so *where* an index is
    /// computed — which thread, which process — cannot change a single bit
    /// of the reduced gradient.
    pub fn range_outcomes<L>(
        &self,
        learner: &L,
        tasks: &[Task],
        enc: &TokenEncoder,
        step_seed: u64,
        ranges: &[std::ops::Range<usize>],
    ) -> Result<Vec<(usize, TaskOutcome)>>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        let mut indexed: Vec<(usize, &Task)> = Vec::new();
        for range in ranges {
            if range.end > tasks.len() || range.start >= range.end {
                return Err(Error::InvalidConfig(format!(
                    "task range {}..{} out of bounds for a {}-task batch",
                    range.start,
                    range.end,
                    tasks.len()
                )));
            }
            indexed.extend(range.clone().map(|i| (i, &tasks[i])));
        }
        if indexed.is_empty() {
            return Err(Error::InvalidConfig("empty task range set".into()));
        }
        if self.threads <= 1 || indexed.len() < 2 {
            return indexed
                .into_iter()
                .map(|(index, task)| {
                    check_task_fault()?;
                    let mut rng = task_rng(step_seed, index);
                    Ok((index, learner.task_grad(task, enc, &mut rng)?))
                })
                .collect();
        }
        let chunk = indexed.len().div_ceil(self.threads);
        let per_worker: Vec<Result<Vec<(usize, TaskOutcome)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = indexed
                .chunks(chunk)
                .map(|pairs| {
                    scope.spawn(move || {
                        pairs
                            .iter()
                            .map(|&(index, task)| {
                                check_task_fault()?;
                                let mut rng = task_rng(step_seed, index);
                                Ok((index, learner.task_grad(task, enc, &mut rng)?))
                            })
                            .collect::<Result<Vec<(usize, TaskOutcome)>>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(Error::WorkerPanic {
                            context: "parallel meta step".into(),
                        })
                    })
                })
                .collect()
        });
        // Workers hold contiguous chunks of the ascending index list, so
        // flattening in worker order restores index order independent of
        // thread timing.
        let mut outcomes = Vec::with_capacity(indexed.len());
        for worker_outcomes in per_worker {
            outcomes.extend(worker_outcomes?);
        }
        Ok(outcomes)
    }
}

/// A streaming training source: the chunked corpus wrapped in a window
/// sampler, plus the geometry recorded into (and checked against) snapshot
/// fingerprints. Build one with [`StreamSource::open`] and hand it to
/// [`Trainer::train_stream`] / [`Trainer::resume_stream`].
pub struct StreamSource {
    sampler: StreamSampler<StreamingCorpus>,
    geometry: StreamFingerprint,
}

impl StreamSource {
    /// Opens a streaming source drawing `cfg`'s N-way K-shot tasks for
    /// `partition` over `corpus`. `window` is the resident raw-sentence
    /// span (the memory bound); `stride` how far each draw slides it.
    pub fn open(
        corpus: StreamingCorpus,
        partition: TypePartition,
        cfg: &TrainConfig,
        window: usize,
        stride: usize,
    ) -> Result<StreamSource> {
        use fewner_corpus::CorpusSource;
        let geometry = StreamFingerprint {
            sentences: corpus.total_sentences(),
            chunk_size: corpus.chunk_size(),
            window,
            stride,
        };
        let sampler = StreamSampler::new(
            corpus,
            partition,
            cfg.n_ways,
            cfg.k_shots,
            cfg.query_size,
            window,
            stride,
        )?;
        Ok(StreamSource { sampler, geometry })
    }

    /// The window sampler (e.g. to read residency statistics after a run).
    pub fn sampler(&self) -> &StreamSampler<StreamingCorpus> {
        &self.sampler
    }
}

/// Where the loop draws its tasks from. Window advancement on the stream
/// side is RNG-free, so both variants leave `LoopState::rng` as the single
/// sampling-randomness stream the snapshot needs.
enum TaskFeed<'a> {
    View(EpisodeSampler<'a>),
    Stream(&'a mut StreamSampler<StreamingCorpus>),
}

impl TaskFeed<'_> {
    fn sample(&mut self, rng: &mut Rng, tracer: &Tracer) -> Result<Task> {
        match self {
            TaskFeed::View(sampler) => sampler.sample_traced(rng, tracer),
            TaskFeed::Stream(sampler) => sampler.sample_traced(rng, tracer),
        }
    }

    /// The stream position to persist (`None` for materialized views).
    fn cursor(&self) -> Option<StreamCursor> {
        match self {
            TaskFeed::View(_) => None,
            TaskFeed::Stream(sampler) => Some(sampler.cursor()),
        }
    }
}

/// Everything the loop mutates between iterations: restoring this struct
/// plus the learner's own state *is* resumption.
struct LoopState {
    iteration: usize,
    rng: Rng,
    losses: Vec<f32>,
    tasks_seen: usize,
    skipped: usize,
    consecutive_skips: usize,
    next_decay: usize,
    prior_wall_secs: f64,
}

impl LoopState {
    fn fresh(meta: &MetaConfig, cfg: &TrainConfig) -> LoopState {
        LoopState {
            iteration: 0,
            rng: Rng::new(cfg.seed),
            losses: Vec::with_capacity(cfg.iterations),
            tasks_seen: 0,
            skipped: 0,
            consecutive_skips: 0,
            next_decay: meta.decay_every_tasks,
            prior_wall_secs: 0.0,
        }
    }

    fn from_snapshot(snap: &TrainingSnapshot) -> LoopState {
        LoopState {
            iteration: snap.iteration,
            rng: snap.sampler_rng.clone(),
            losses: snap.losses.clone(),
            tasks_seen: snap.tasks_seen,
            skipped: snap.skipped,
            consecutive_skips: snap.consecutive_skips,
            next_decay: snap.next_decay,
            prior_wall_secs: snap.wall_secs,
        }
    }
}

/// The run identity recorded into (and checked against) snapshots.
fn fingerprint_of(
    name: &str,
    meta: &MetaConfig,
    cfg: &TrainConfig,
    stream: Option<StreamFingerprint>,
) -> RunFingerprint {
    RunFingerprint {
        learner: name.to_string(),
        n_ways: cfg.n_ways,
        k_shots: cfg.k_shots,
        query_size: cfg.query_size,
        seed: cfg.seed,
        meta_batch: meta.meta_batch,
        shards: cfg.shards.max(1),
        stream,
    }
}

/// The engine a run steps through: in-process (serial or threaded), or one
/// shard of a multi-process run. Both drive the identical canonical
/// reduction, so the choice never shows up in the numbers.
enum Engine {
    Local(ParallelTrainer),
    Sharded(crate::shard::ShardSession),
}

impl Engine {
    /// Builds the engine `cfg` asks for. A sharded config connects to the
    /// coordinator here — announcing `start_iteration` so every worker of
    /// the round-lockstep run provably starts from the same place.
    fn open(
        name: &str,
        meta: &MetaConfig,
        cfg: &TrainConfig,
        stream: Option<StreamFingerprint>,
        start_iteration: usize,
    ) -> Result<Engine> {
        if cfg.shards <= 1 {
            return Ok(Engine::Local(ParallelTrainer::new(cfg.threads)));
        }
        let fingerprint = fingerprint_of(name, meta, cfg, stream);
        let session = crate::shard::ShardSession::connect(cfg, &fingerprint, start_iteration)?;
        Ok(Engine::Sharded(session))
    }

    fn step<L>(
        &mut self,
        learner: &mut L,
        batch: &[Task],
        enc: &TokenEncoder,
        tracer: &Tracer,
    ) -> Result<f32>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        match self {
            Engine::Local(pool) => pool.meta_step_traced(learner, batch, enc, tracer),
            Engine::Sharded(session) => session.step(learner, batch, enc, tracer),
        }
    }
}

/// The one training entry point: fresh runs and checkpointed resumption,
/// local or sharded, traced or silent.
///
/// A default `Trainer` derives its tracer from the schedule
/// ([`TrainConfig::trace_path`]); [`Trainer::with_tracer`] overrides that
/// with an explicit instrument (tests inject a manual clock and an
/// in-memory sink this way). The tracer is flushed when a run ends —
/// normally *or* with [`Error::Diverged`] — so traces survive diverged
/// runs. Tracing never changes the numbers.
#[derive(Clone, Default)]
pub struct Trainer {
    tracer: Option<Tracer>,
}

impl Trainer {
    /// A trainer that traces wherever [`TrainConfig::trace_path`] points
    /// (or nowhere).
    pub fn new() -> Trainer {
        Trainer { tracer: None }
    }

    /// A trainer bound to an explicit tracer, overriding
    /// [`TrainConfig::trace_path`].
    pub fn with_tracer(tracer: &Tracer) -> Trainer {
        Trainer {
            tracer: Some(tracer.clone()),
        }
    }

    /// The tracer a run will use under schedule `cfg`.
    fn resolve_tracer(&self, cfg: &TrainConfig) -> Tracer {
        match &self.tracer {
            Some(tracer) => tracer.clone(),
            None => cfg.tracer(),
        }
    }

    /// Meta-trains `learner` on tasks sampled from `view`.
    ///
    /// With [`TrainConfig::checkpoint_every`] set, rolling
    /// [`TrainingSnapshot`]s land in [`TrainConfig::checkpoint_dir`]; a run
    /// killed at any point can be continued with [`Trainer::resume`]. With
    /// [`TrainConfig::shards`] > 1 this call becomes one worker of a
    /// multi-process run and blocks until its shard's part is done.
    pub fn train<L>(
        &self,
        learner: &mut L,
        view: &SplitView,
        enc: &TokenEncoder,
        meta: &MetaConfig,
        cfg: &TrainConfig,
    ) -> Result<TrainingLog>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        meta.validate()?;
        let tracer = self.resolve_tracer(cfg);
        let state = LoopState::fresh(meta, cfg);
        let mut feed = TaskFeed::View(EpisodeSampler::new(
            view,
            cfg.n_ways,
            cfg.k_shots,
            cfg.query_size,
        )?);
        let engine = Engine::open(learner.name(), meta, cfg, None, 0);
        let result = engine.and_then(|mut e| {
            run_loop(
                learner, &mut feed, None, enc, meta, cfg, state, &tracer, &mut e,
            )
        });
        finish_trace(result, &tracer)
    }

    /// Meta-trains `learner` on tasks drawn from a chunked corpus stream —
    /// [`Trainer::train`] without ever materializing the corpus. Only the
    /// bounded resident window of `source` is in memory at any point, so
    /// million-sentence runs train in a few megabytes of corpus state. The
    /// snapshot story is unchanged: the stream cursor rides along in every
    /// [`TrainingSnapshot`], and [`Trainer::resume_stream`] continues a
    /// killed run bitwise-identically.
    pub fn train_stream<L>(
        &self,
        learner: &mut L,
        source: &mut StreamSource,
        enc: &TokenEncoder,
        meta: &MetaConfig,
        cfg: &TrainConfig,
    ) -> Result<TrainingLog>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        meta.validate()?;
        let tracer = self.resolve_tracer(cfg);
        let state = LoopState::fresh(meta, cfg);
        let geometry = source.geometry;
        let mut feed = TaskFeed::Stream(&mut source.sampler);
        let engine = Engine::open(learner.name(), meta, cfg, Some(geometry), 0);
        let result = engine.and_then(|mut e| {
            run_loop(
                learner,
                &mut feed,
                Some(geometry),
                enc,
                meta,
                cfg,
                state,
                &tracer,
                &mut e,
            )
        });
        finish_trace(result, &tracer)
    }

    /// Continues a checkpointed *streaming* run from the newest valid
    /// snapshot in `dir`. The snapshot must have been written by a run with
    /// the same stream geometry (corpus length, chunk size, window,
    /// stride): the persisted cursor only addresses the same sentence under
    /// the same chunking, so mismatches are refused like any other schedule
    /// change.
    pub fn resume_stream<L>(
        &self,
        learner: &mut L,
        source: &mut StreamSource,
        enc: &TokenEncoder,
        meta: &MetaConfig,
        cfg: &TrainConfig,
        dir: impl AsRef<Path>,
    ) -> Result<TrainingLog>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        meta.validate()?;
        let tracer = self.resolve_tracer(cfg);
        let dir = dir.as_ref();
        let geometry = source.geometry;
        let expected = fingerprint_of(learner.name(), meta, cfg, Some(geometry));
        let (snap, path) =
            snapshot::latest_valid(dir, Some(&expected))?.ok_or_else(|| Error::Io {
                path: dir.display().to_string(),
                detail: "no training snapshots found".into(),
            })?;
        learner.import_state(&snap.learner)?;
        let state = LoopState::from_snapshot(&snap);
        // Replay the stream window to exactly where the snapshot left it;
        // `sampler_rng` replays the draws, so the continuation is bitwise
        // identical to a straight run.
        source
            .sampler
            .seek(snap.stream_cursor.unwrap_or_default(), &tracer)?;
        tracer.event(
            "train/resume",
            &[
                ("iteration", Json::from(snap.iteration)),
                ("snapshot", Json::from(path.display().to_string())),
            ],
        );
        if state.iteration >= cfg.iterations {
            return finish_trace(
                Ok(TrainingLog {
                    secs_per_iteration: state.prior_wall_secs / cfg.iterations.max(1) as f64,
                    losses: state.losses,
                    tasks_seen: state.tasks_seen,
                    skipped: state.skipped,
                    wall_secs: state.prior_wall_secs,
                }),
                &tracer,
            );
        }
        let mut feed = TaskFeed::Stream(&mut source.sampler);
        let engine = Engine::open(learner.name(), meta, cfg, Some(geometry), state.iteration);
        let result = engine.and_then(|mut e| {
            run_loop(
                learner,
                &mut feed,
                Some(geometry),
                enc,
                meta,
                cfg,
                state,
                &tracer,
                &mut e,
            )
        });
        finish_trace(result, &tracer)
    }

    /// Continues a checkpointed run from the newest valid snapshot in
    /// `dir`.
    ///
    /// `learner` must be freshly constructed with the same architecture and
    /// configuration as the original run (constructors are
    /// seed-deterministic); its mutable state is then replaced wholesale
    /// via [`EpisodicLearner::import_state`]. The snapshot's
    /// [`RunFingerprint`] must match the given schedule — except for
    /// [`TrainConfig::iterations`], which may differ so a finished run can
    /// be extended. Snapshots from a different run configuration (learner,
    /// schedule, seed, or shard topology) are skipped over; if only such
    /// foreign snapshots exist the resume is refused. Because the snapshot
    /// carries every source of randomness, the resumed run's final θ is
    /// bitwise-identical to a straight-through run's, at any thread or
    /// shard count.
    pub fn resume<L>(
        &self,
        learner: &mut L,
        view: &SplitView,
        enc: &TokenEncoder,
        meta: &MetaConfig,
        cfg: &TrainConfig,
        dir: impl AsRef<Path>,
    ) -> Result<TrainingLog>
    where
        L: EpisodicLearner + Sync + ?Sized,
    {
        meta.validate()?;
        let tracer = self.resolve_tracer(cfg);
        let dir = dir.as_ref();
        let expected = fingerprint_of(learner.name(), meta, cfg, None);
        let (snap, path) =
            snapshot::latest_valid(dir, Some(&expected))?.ok_or_else(|| Error::Io {
                path: dir.display().to_string(),
                detail: "no training snapshots found".into(),
            })?;
        learner.import_state(&snap.learner)?;
        let state = LoopState::from_snapshot(&snap);
        tracer.event(
            "train/resume",
            &[
                ("iteration", Json::from(snap.iteration)),
                ("snapshot", Json::from(path.display().to_string())),
            ],
        );
        if state.iteration >= cfg.iterations {
            // Nothing left to train; report the run as the snapshot
            // recorded it.
            return finish_trace(
                Ok(TrainingLog {
                    secs_per_iteration: state.prior_wall_secs / cfg.iterations.max(1) as f64,
                    losses: state.losses,
                    tasks_seen: state.tasks_seen,
                    skipped: state.skipped,
                    wall_secs: state.prior_wall_secs,
                }),
                &tracer,
            );
        }
        let mut feed = TaskFeed::View(EpisodeSampler::new(
            view,
            cfg.n_ways,
            cfg.k_shots,
            cfg.query_size,
        )?);
        let engine = Engine::open(learner.name(), meta, cfg, None, state.iteration);
        let result = engine.and_then(|mut e| {
            run_loop(
                learner, &mut feed, None, enc, meta, cfg, state, &tracer, &mut e,
            )
        });
        finish_trace(result, &tracer)
    }
}

/// Flushes the tracer once a run ends, preserving the run's own error over
/// a trace-write failure (but surfacing the latter when the run was fine —
/// a requested trace that silently vanished would be worse than an error).
fn finish_trace(result: Result<TrainingLog>, tracer: &Tracer) -> Result<TrainingLog> {
    let flushed = tracer.flush();
    let log = result?;
    flushed?;
    Ok(log)
}

/// The shared iteration loop behind [`Trainer::train`] and
/// [`Trainer::resume`].
///
/// In a sharded run every worker executes this exact loop in lockstep:
/// the sampler RNG is part of the snapshot/fingerprint contract, so all
/// shards draw identical meta-batches and only the per-task compute is
/// divided (inside [`Engine::step`]).
#[allow(clippy::too_many_arguments)]
fn run_loop<L>(
    learner: &mut L,
    feed: &mut TaskFeed<'_>,
    stream: Option<StreamFingerprint>,
    enc: &TokenEncoder,
    meta: &MetaConfig,
    cfg: &TrainConfig,
    mut state: LoopState,
    tracer: &Tracer,
    engine: &mut Engine,
) -> Result<TrainingLog>
where
    L: EpisodicLearner + Sync + ?Sized,
{
    let ckpt_dir = if cfg.checkpoint_every > 0 {
        let dir = cfg.checkpoint_dir.as_ref().ok_or_else(|| {
            Error::InvalidConfig("checkpoint_every requires checkpoint_dir".into())
        })?;
        // Refuse up front, not at the first snapshot n iterations in.
        if learner.export_state().is_none() {
            return Err(Error::InvalidConfig(format!(
                "{} does not support training-state export; disable checkpoint_every",
                learner.name()
            )));
        }
        Some(dir.clone())
    } else {
        None
    };
    let fingerprint = fingerprint_of(learner.name(), meta, cfg, stream);
    let start = Instant::now();

    while state.iteration < cfg.iterations {
        let mut iter_span = tracer.span("train/iteration");
        iter_span.set("iter", state.iteration);
        // A rare unconstructible task (possible on sparse splits) is
        // skipped rather than aborting a long run; a batch with no tasks at
        // all is a genuine configuration problem.
        let mut batch = Vec::with_capacity(meta.meta_batch);
        let mut last_err = None;
        {
            let mut sample_span = tracer.span("train/sample_batch");
            for _ in 0..meta.meta_batch {
                match feed.sample(&mut state.rng, tracer) {
                    Ok(task) => batch.push(task),
                    Err(e) => last_err = Some(e),
                }
            }
            sample_span.set("tasks", batch.len());
        }
        if batch.is_empty() {
            return Err(last_err.expect("meta_batch > 0"));
        }
        // Likewise a transient numerical failure skips the batch (the
        // optimizer refuses non-finite gradients, so state stays clean);
        // the log counts the skip instead of recording a poisoned loss.
        // But a long *unbroken* run of skips means θ is ruined, not
        // unlucky: the divergence guard aborts rather than burning the
        // rest of the schedule.
        match engine.step(learner, &batch, enc, tracer) {
            Ok(loss) => {
                iter_span.set("loss", loss);
                tracer.observe("train/outer_loss", f64::from(loss));
                state.losses.push(loss);
                state.tasks_seen += batch.len();
                state.consecutive_skips = 0;
                while state.tasks_seen >= state.next_decay {
                    learner.decay_lr(meta.decay);
                    state.next_decay += meta.decay_every_tasks;
                }
            }
            Err(Error::NonFinite { .. }) => {
                iter_span.set("skipped", true);
                tracer.event("train/skip", &[("iter", Json::from(state.iteration))]);
                tracer.incr("train/skipped", 1);
                state.skipped += 1;
                state.consecutive_skips += 1;
                if meta.max_consecutive_skips > 0
                    && state.consecutive_skips >= meta.max_consecutive_skips
                {
                    tracer.event(
                        "train/diverged",
                        &[("consecutive_skips", Json::from(state.consecutive_skips))],
                    );
                    let tail_from = state.losses.len().saturating_sub(DIVERGED_TAIL);
                    return Err(Error::Diverged {
                        consecutive_skips: state.consecutive_skips,
                        loss_tail: state.losses[tail_from..].to_vec(),
                    });
                }
            }
            Err(e) => return Err(e),
        }
        state.iteration += 1;
        tracer.incr("train/iterations", 1);
        if let Some(dir) = &ckpt_dir {
            if state.iteration.is_multiple_of(cfg.checkpoint_every) {
                let mut ckpt_span = tracer.span("train/checkpoint");
                ckpt_span.set("iter", state.iteration);
                let learner_state = learner.export_state().ok_or_else(|| {
                    Error::InvalidConfig(format!(
                        "{} stopped exporting training state mid-run",
                        learner.name()
                    ))
                })?;
                let snap = TrainingSnapshot {
                    version: SNAPSHOT_VERSION,
                    shard: (cfg.shards > 1).then_some(cfg.shard_id),
                    stream_cursor: feed.cursor(),
                    iteration: state.iteration,
                    sampler_rng: state.rng.clone(),
                    losses: state.losses.clone(),
                    tasks_seen: state.tasks_seen,
                    skipped: state.skipped,
                    consecutive_skips: state.consecutive_skips,
                    next_decay: state.next_decay,
                    wall_secs: state.prior_wall_secs + start.elapsed().as_secs_f64(),
                    fingerprint: fingerprint.clone(),
                    learner: learner_state,
                };
                // A failed snapshot write aborts the run: silently losing
                // durability would defeat the point of checkpointing.
                snapshot::save_rolling(dir, &snap)?;
                tracer.incr("train/checkpoints", 1);
            }
        }
    }
    let wall_secs = state.prior_wall_secs + start.elapsed().as_secs_f64();
    Ok(TrainingLog {
        secs_per_iteration: wall_secs / cfg.iterations.max(1) as f64,
        losses: state.losses,
        tasks_seen: state.tasks_seen,
        skipped: state.skipped,
        wall_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::ProtoLearner;
    use crate::fewner::Fewner;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_models::{BackboneConfig, Conditioning, HeadKind};
    use fewner_tensor::ParamGrads;
    use fewner_text::embed::EmbeddingSpec;

    fn bb_cfg(cond: Conditioning, phi: usize) -> BackboneConfig {
        BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: phi,
            slot_ctx_dim: if phi == 0 { 0 } else { 4 },
            conditioning: cond,
            dropout: 0.1,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways: 3 },
        }
    }

    #[test]
    fn training_loop_runs_and_logs() {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let meta = MetaConfig {
            meta_batch: 2,
            inner_steps_train: 1,
            ..MetaConfig::default()
        };
        let mut learner = Fewner::new(bb_cfg(Conditioning::Film, 8), &enc, meta.clone()).unwrap();
        let cfg = TrainConfig::new(3, 1).iterations(3).query_size(4).seed(9);
        let log = Trainer::new()
            .train(&mut learner, &split.train, &enc, &meta, &cfg)
            .unwrap();
        assert_eq!(log.losses.len(), 3);
        assert_eq!(log.tasks_seen, 6);
        assert_eq!(log.skipped, 0);
        assert!(log.losses.iter().all(|l| l.is_finite()));
        assert!(log.secs_per_iteration > 0.0);
        assert!(log.tail_loss(2).unwrap().is_finite());
    }

    /// A learner whose task gradients blow up: the trainer must count the
    /// skipped iterations instead of recording NaN losses.
    struct Exploding;
    impl EpisodicLearner for Exploding {
        fn name(&self) -> &'static str {
            "exploding"
        }
        fn task_grad(
            &self,
            _task: &Task,
            _enc: &TokenEncoder,
            _rng: &mut Rng,
        ) -> Result<TaskOutcome> {
            Err(Error::NonFinite {
                context: "test gradient".into(),
            })
        }
        fn apply_meta_grads(&mut self, _grads: ParamGrads, _n: usize) -> Result<()> {
            Ok(())
        }
        fn adapt_and_predict(&self, _task: &Task, _enc: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
            Ok(vec![])
        }
    }

    #[test]
    fn non_finite_batches_are_counted_not_logged_as_nan() {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let meta = MetaConfig {
            meta_batch: 2,
            ..MetaConfig::default()
        };
        let cfg = TrainConfig::new(3, 1).iterations(4).query_size(4).seed(9);
        let log = Trainer::new()
            .train(&mut Exploding, &split.train, &enc, &meta, &cfg)
            .unwrap();
        assert_eq!(log.skipped, 4, "every batch must be counted as skipped");
        assert!(log.losses.is_empty(), "no loss entry for a skipped batch");
        assert_eq!(
            log.tail_loss(4),
            None,
            "tail loss over an all-skipped run must be None, not NaN"
        );
    }

    #[test]
    fn unbroken_skips_trip_the_divergence_guard() {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let meta = MetaConfig {
            meta_batch: 2,
            max_consecutive_skips: 3,
            ..MetaConfig::default()
        };
        let cfg = TrainConfig::new(3, 1).iterations(10).query_size(4).seed(9);
        let err = Trainer::new()
            .train(&mut Exploding, &split.train, &enc, &meta, &cfg)
            .unwrap_err();
        match err {
            Error::Diverged {
                consecutive_skips,
                loss_tail,
            } => {
                assert_eq!(consecutive_skips, 3);
                assert!(loss_tail.is_empty(), "no finite loss ever landed");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn decay_fires_on_task_schedule() {
        // With decay_every_tasks = 4 and meta_batch = 2, the decay hook
        // must fire after iterations 2 and 4.
        struct Probe {
            decays: usize,
            // One shared store: every task's grads must reference the same
            // parameter identity for the fixed-order reduction.
            store: fewner_tensor::ParamStore,
        }
        impl EpisodicLearner for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn task_grad(
                &self,
                _task: &Task,
                _enc: &TokenEncoder,
                _rng: &mut Rng,
            ) -> Result<TaskOutcome> {
                Ok(TaskOutcome {
                    loss: 0.0,
                    grads: ParamGrads::zeros_like(&self.store),
                })
            }
            fn apply_meta_grads(&mut self, _grads: ParamGrads, _n: usize) -> Result<()> {
                Ok(())
            }
            fn adapt_and_predict(
                &self,
                _task: &Task,
                _enc: &TokenEncoder,
            ) -> Result<Vec<Vec<usize>>> {
                Ok(vec![])
            }
            fn decay_lr(&mut self, _f: f32) {
                self.decays += 1;
            }
        }
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let meta = MetaConfig {
            meta_batch: 2,
            decay_every_tasks: 4,
            ..MetaConfig::default()
        };
        let mut probe = Probe {
            decays: 0,
            store: fewner_tensor::ParamStore::new(),
        };
        let cfg = TrainConfig::new(3, 1).iterations(4).query_size(4).seed(9);
        Trainer::new()
            .train(&mut probe, &split.train, &enc, &meta, &cfg)
            .unwrap();
        assert_eq!(probe.decays, 2);
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_probe_episode() {
        // Per-iteration losses are noisy across sampled tasks; measure
        // improvement on one *fixed* probe episode before vs after training.
        let d = DatasetProfile::bionlp13cg().generate(0.08).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let sampler = fewner_episode::EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let probe = sampler.sample(&mut Rng::new(777)).unwrap();

        let meta = MetaConfig {
            meta_batch: 2,
            meta_lr: 5e-3,
            ..MetaConfig::default()
        };
        let mut learner =
            ProtoLearner::new(bb_cfg(Conditioning::None, 0), &enc, meta.clone()).unwrap();

        let probe_loss = |l: &mut ProtoLearner| -> f32 {
            // meta_step on a frozen copy would mutate; instead evaluate the
            // episode loss directly through the public learner API by
            // running a step on a clone of the parameters.
            let snapshot = l.theta.snapshot();
            let loss = l.meta_step(std::slice::from_ref(&probe), &enc).unwrap();
            l.theta.restore(&snapshot).unwrap();
            loss
        };
        let before = probe_loss(&mut learner);
        let cfg = TrainConfig::new(3, 1).iterations(24).query_size(4).seed(10);
        Trainer::new()
            .train(&mut learner, &split.train, &enc, &meta, &cfg)
            .unwrap();
        let after = probe_loss(&mut learner);
        assert!(
            after < before,
            "probe loss should improve: {before} -> {after}"
        );
    }
}
