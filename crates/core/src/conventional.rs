//! The non-meta-gradient baselines behind the common learner interface:
//! FineTune, ProtoNet, SNAIL and the five frozen-LM substitutes (§4.1.2).

use fewner_episode::Task;
use fewner_models::{
    encode_task, Backbone, BackboneConfig, FrozenLm, LmFlavor, ProtoNet, Snail, SnailConfig,
    TokenEncoder,
};
use fewner_tensor::{Adam, Graph, ParamStore, Sgd};
use fewner_util::{Error, Result, Rng};

use crate::config::MetaConfig;
use crate::learner::{EpisodicLearner, TaskOutcome};

fn conditioning_free(bb_cfg: &BackboneConfig) -> Result<()> {
    if bb_cfg.conditioning != fewner_models::Conditioning::None {
        return Err(Error::InvalidConfig(
            "baseline backbones must use Conditioning::None".into(),
        ));
    }
    Ok(())
}

/// FineTune: conventional supervised training on the support sets of
/// training tasks, full-network fine-tuning on the test support set.
pub struct FineTuneLearner {
    /// The backbone.
    pub backbone: Backbone,
    /// Trained parameters.
    pub theta: ParamStore,
    cfg: MetaConfig,
    opt: Adam,
    rng: Rng,
}

impl FineTuneLearner {
    /// Builds the learner.
    pub fn new(bb_cfg: BackboneConfig, enc: &TokenEncoder, cfg: MetaConfig) -> Result<Self> {
        cfg.validate()?;
        conditioning_free(&bb_cfg)?;
        let mut rng = Rng::new(cfg.seed ^ 0x46_54);
        let mut theta = ParamStore::new();
        let backbone = Backbone::new(bb_cfg, enc, &mut theta, &mut rng)?;
        let opt = Adam::new(cfg.meta_lr)
            .with_clip(cfg.clip)
            .with_weight_decay(cfg.l2);
        Ok(FineTuneLearner {
            backbone,
            theta,
            cfg,
            opt,
            rng,
        })
    }
}

impl EpisodicLearner for FineTuneLearner {
    fn name(&self) -> &'static str {
        "FineTune"
    }

    fn step_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    // Plain supervised step on the tasks' support sets.
    fn task_grad(&self, task: &Task, enc: &TokenEncoder, rng: &mut Rng) -> Result<TaskOutcome> {
        let tags = task.tag_set();
        let (support, _) = encode_task(enc, task);
        let g = Graph::new(); // training mode: dropout active
        let loss = self
            .backbone
            .batch_loss(&g, &self.theta, None, &support, &tags, rng);
        Ok(TaskOutcome {
            loss: g.value(loss).scalar_value(),
            grads: g.backward(loss)?.for_store(&self.theta),
        })
    }

    fn apply_meta_grads(
        &mut self,
        mut grads: fewner_tensor::ParamGrads,
        n_tasks: usize,
    ) -> Result<()> {
        grads.scale(1.0 / n_tasks.max(1) as f32);
        self.opt.step(&mut self.theta, &grads)
    }

    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        let mut adapted = self.theta.clone();
        let mut sgd = Sgd::new(self.cfg.inner_lr);
        let mut rng = Rng::new(0);
        for _ in 0..self.cfg.inner_steps_test {
            let g = Graph::eval(); // fine-tuning: dropout off, gradients on
            let loss = self
                .backbone
                .batch_loss(&g, &adapted, None, &support, &tags, &mut rng);
            let grads = g.backward(loss)?.for_store(&adapted);
            sgd.step(&mut adapted, &grads)?;
        }
        Ok(self
            .backbone
            .decode_task(&adapted, None, query.iter().map(|(sent, _)| sent), &tags))
    }

    fn decay_lr(&mut self, factor: f32) {
        self.opt.decay_lr(factor);
    }
}

/// ProtoNet behind the learner interface.
pub struct ProtoLearner {
    model: ProtoNet,
    /// Encoder parameters.
    pub theta: ParamStore,
    opt: Adam,
    rng: Rng,
}

impl ProtoLearner {
    /// Builds the learner.
    pub fn new(bb_cfg: BackboneConfig, enc: &TokenEncoder, cfg: MetaConfig) -> Result<Self> {
        cfg.validate()?;
        conditioning_free(&bb_cfg)?;
        let mut rng = Rng::new(cfg.seed ^ 0x50_4E);
        let mut theta = ParamStore::new();
        let backbone = Backbone::new(bb_cfg, enc, &mut theta, &mut rng)?;
        let opt = Adam::new(cfg.meta_lr)
            .with_clip(cfg.clip)
            .with_weight_decay(cfg.l2);
        Ok(ProtoLearner {
            model: ProtoNet::new(backbone),
            theta,
            opt,
            rng,
        })
    }
}

impl EpisodicLearner for ProtoLearner {
    fn name(&self) -> &'static str {
        "ProtoNet"
    }

    fn step_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn task_grad(&self, task: &Task, enc: &TokenEncoder, rng: &mut Rng) -> Result<TaskOutcome> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        let g = Graph::new();
        let loss = self
            .model
            .episode_loss(&g, &self.theta, &support, &query, &tags, rng)?;
        Ok(TaskOutcome {
            loss: g.value(loss).scalar_value(),
            grads: g.backward(loss)?.for_store(&self.theta),
        })
    }

    fn apply_meta_grads(
        &mut self,
        mut grads: fewner_tensor::ParamGrads,
        n_tasks: usize,
    ) -> Result<()> {
        grads.scale(1.0 / n_tasks.max(1) as f32);
        self.opt.step(&mut self.theta, &grads)
    }

    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        Ok(self
            .model
            .predict_task(&self.theta, &support, &query, &tags))
    }

    fn decay_lr(&mut self, factor: f32) {
        self.opt.decay_lr(factor);
    }
}

/// SNAIL behind the learner interface.
pub struct SnailLearner {
    model: Snail,
    /// Encoder + head parameters.
    pub theta: ParamStore,
    opt: Adam,
    rng: Rng,
}

impl SnailLearner {
    /// Builds the learner (the SNAIL head is sized from `snail_cfg`).
    pub fn new(
        bb_cfg: BackboneConfig,
        snail_cfg: SnailConfig,
        enc: &TokenEncoder,
        cfg: MetaConfig,
    ) -> Result<Self> {
        cfg.validate()?;
        conditioning_free(&bb_cfg)?;
        let mut rng = Rng::new(cfg.seed ^ 0x53_4E);
        let mut theta = ParamStore::new();
        let backbone = Backbone::new(bb_cfg, enc, &mut theta, &mut rng)?;
        let model = Snail::new(backbone, snail_cfg, &mut theta, &mut rng);
        let opt = Adam::new(cfg.meta_lr)
            .with_clip(cfg.clip)
            .with_weight_decay(cfg.l2);
        Ok(SnailLearner {
            model,
            theta,
            opt,
            rng,
        })
    }
}

impl EpisodicLearner for SnailLearner {
    fn name(&self) -> &'static str {
        "SNAIL"
    }

    fn step_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn task_grad(&self, task: &Task, enc: &TokenEncoder, rng: &mut Rng) -> Result<TaskOutcome> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        let g = Graph::new();
        let loss = self
            .model
            .episode_loss(&g, &self.theta, &support, &query, &tags, rng)?;
        Ok(TaskOutcome {
            loss: g.value(loss).scalar_value(),
            grads: g.backward(loss)?.for_store(&self.theta),
        })
    }

    fn apply_meta_grads(
        &mut self,
        mut grads: fewner_tensor::ParamGrads,
        n_tasks: usize,
    ) -> Result<()> {
        grads.scale(1.0 / n_tasks.max(1) as f32);
        self.opt.step(&mut self.theta, &grads)
    }

    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        Ok(self
            .model
            .predict_task(&self.theta, &support, &query, &tags))
    }

    fn decay_lr(&mut self, factor: f32) {
        self.opt.decay_lr(factor);
    }
}

/// A frozen-LM baseline behind the learner interface: episodic CRF-head
/// training, CRF-only test-time fine-tuning (the encoder never trains).
pub struct FrozenLmLearner {
    model: FrozenLm,
    cfg: MetaConfig,
    opt: Adam,
}

impl FrozenLmLearner {
    /// Builds the learner for one LM flavour.
    pub fn new(
        flavor: LmFlavor,
        enc: &TokenEncoder,
        n_ways: usize,
        cfg: MetaConfig,
    ) -> Result<Self> {
        cfg.validate()?;
        let model = FrozenLm::new(flavor, enc, n_ways)?;
        let opt = Adam::new(cfg.meta_lr)
            .with_clip(cfg.clip)
            .with_weight_decay(cfg.l2);
        Ok(FrozenLmLearner { model, cfg, opt })
    }

    /// The imitated flavour.
    pub fn flavor(&self) -> LmFlavor {
        self.model.flavor()
    }
}

impl EpisodicLearner for FrozenLmLearner {
    fn name(&self) -> &'static str {
        self.model.flavor().name()
    }

    // The CRF-head loss is deterministic (no dropout), so the default
    // `step_seed` of 0 is fine and `rng` goes unused.
    fn task_grad(&self, task: &Task, enc: &TokenEncoder, _rng: &mut Rng) -> Result<TaskOutcome> {
        let tags = task.tag_set();
        let (support, _) = encode_task(enc, task);
        let g = Graph::new();
        let loss = self.model.batch_loss(&g, &support, &tags)?;
        Ok(TaskOutcome {
            loss: g.value(loss).scalar_value(),
            grads: g.backward(loss)?.for_store(&self.model.head_params),
        })
    }

    fn apply_meta_grads(
        &mut self,
        mut grads: fewner_tensor::ParamGrads,
        n_tasks: usize,
    ) -> Result<()> {
        grads.scale(1.0 / n_tasks.max(1) as f32);
        self.opt.step(&mut self.model.head_params, &grads)
    }

    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);
        let mut head = self.model.head_params.clone();
        let mut sgd = Sgd::new(self.cfg.inner_lr);
        for _ in 0..self.cfg.inner_steps_test {
            let g = Graph::new();
            let loss = self.model.batch_loss_with(&g, &head, &support, &tags)?;
            let grads = g.backward(loss)?.for_store(&head);
            sgd.step(&mut head, &grads)?;
        }
        Ok(self
            .model
            .predict_task_with(&head, query.iter().map(|(sent, _)| sent), &tags))
    }

    fn decay_lr(&mut self, factor: f32) {
        self.opt.decay_lr(factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_models::Conditioning;
    use fewner_text::embed::EmbeddingSpec;

    fn setup() -> (TokenEncoder, Vec<Task>, BackboneConfig, MetaConfig) {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 3, 1, 3).unwrap();
        let mut rng = Rng::new(5);
        let tasks: Vec<Task> = (0..2).map(|_| sampler.sample(&mut rng).unwrap()).collect();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let bb_cfg = BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: 0,
            slot_ctx_dim: 0,
            conditioning: Conditioning::None,
            dropout: 0.1,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: fewner_models::HeadKind::Dense { n_ways: 3 },
        };
        let cfg = MetaConfig {
            inner_steps_test: 3,
            ..MetaConfig::default()
        };
        (enc, tasks, bb_cfg, cfg)
    }

    #[test]
    fn all_baselines_step_and_predict() {
        let (enc, tasks, bb_cfg, cfg) = setup();
        let mut learners: Vec<Box<dyn EpisodicLearner>> = vec![
            Box::new(FineTuneLearner::new(bb_cfg.clone(), &enc, cfg.clone()).unwrap()),
            Box::new(ProtoLearner::new(bb_cfg.clone(), &enc, cfg.clone()).unwrap()),
            Box::new(
                SnailLearner::new(
                    bb_cfg.clone(),
                    SnailConfig::default_for(3),
                    &enc,
                    cfg.clone(),
                )
                .unwrap(),
            ),
            Box::new(FrozenLmLearner::new(LmFlavor::Bert, &enc, 3, cfg.clone()).unwrap()),
        ];
        for learner in &mut learners {
            let loss = learner.meta_step(&tasks, &enc).unwrap();
            assert!(loss.is_finite(), "{} loss {loss}", learner.name());
            let preds = learner.adapt_and_predict(&tasks[0], &enc).unwrap();
            assert_eq!(preds.len(), tasks[0].query.len(), "{}", learner.name());
            learner.decay_lr(0.9);
        }
    }

    #[test]
    fn finetune_adaptation_does_not_mutate_trained_params() {
        let (enc, tasks, bb_cfg, cfg) = setup();
        let ft = FineTuneLearner::new(bb_cfg, &enc, cfg).unwrap();
        let before = ft.theta.snapshot();
        ft.adapt_and_predict(&tasks[0], &enc).unwrap();
        assert_eq!(before, ft.theta.snapshot());
    }

    #[test]
    fn frozen_lm_names_match_flavors() {
        let (enc, _, _, cfg) = setup();
        for flavor in LmFlavor::ALL {
            let l = FrozenLmLearner::new(flavor, &enc, 3, cfg.clone()).unwrap();
            assert_eq!(l.name(), flavor.name());
        }
    }

    #[test]
    fn conditioned_backbone_rejected_by_baselines() {
        let (enc, _, _, cfg) = setup();
        let bad = BackboneConfig {
            word_dim: 20,
            conditioning: Conditioning::Film,
            ..BackboneConfig::default_for(3)
        };
        assert!(FineTuneLearner::new(bad.clone(), &enc, cfg.clone()).is_err());
        assert!(ProtoLearner::new(bad, &enc, cfg).is_err());
    }
}
