//! FEWNER (paper §3.2, Algorithm 1).
//!
//! * **Inner loop** — per task, the context parameters φ are reset to `0`
//!   and adapted by `k` SGD steps on the support loss (Eq. 5), with θ held
//!   fixed. The inner loop runs without dropout so adaptation is a
//!   deterministic function of (θ, support set).
//! * **Outer loop** — θ is updated by the query loss of the adapted model
//!   `(θ, φ_k)` averaged over a meta-batch (Eq. 6), with Adam, gradient
//!   clipping and L2 regularisation per §4.1.3. The dependence of φ_k on θ
//!   is handled per [`SecondOrder`]: first-order by default, or exactly via
//!   finite-difference Hessian-vector products (`second_order` module).
//! * **Adaptation (test)** — θ_Meta stays fixed; a *fresh* φ is adapted for
//!   8 steps on the held-out task's support set, and the query set is
//!   decoded with `(θ_Meta, φ_k)`. Only the low-dimensional φ ever changes,
//!   which is the paper's overfitting and efficiency argument.

use fewner_episode::Task;
use fewner_models::{encode_task, Backbone, BackboneConfig, LabeledSentence, TokenEncoder};
use fewner_tensor::{Adam, Graph, ParamId, ParamStore, SavedAdam, SavedParams, Sgd};
use fewner_text::TagSet;
use fewner_util::{Error, FromJson, Json, Result, Rng, ToJson};

use crate::config::{MetaConfig, SecondOrder};
use crate::learner::{EpisodicLearner, TaskOutcome};
use crate::second_order;
use crate::serve::{AdaptedCtx, ServeOptions};

/// The FEWNER meta-learner.
pub struct Fewner {
    /// The θ network.
    pub backbone: Backbone,
    /// Task-independent parameters θ.
    pub theta: ParamStore,
    cfg: MetaConfig,
    opt: Adam,
    rng: Rng,
}

impl Fewner {
    /// Builds the backbone and meta-optimizer.
    pub fn new(bb_cfg: BackboneConfig, enc: &TokenEncoder, cfg: MetaConfig) -> Result<Fewner> {
        cfg.validate()?;
        if bb_cfg.conditioning == fewner_models::Conditioning::None {
            return Err(Error::InvalidConfig(
                "FEWNER requires Film or ConcatInput conditioning".into(),
            ));
        }
        let mut rng = Rng::new(cfg.seed);
        let mut theta = ParamStore::new();
        let backbone = Backbone::new(bb_cfg, enc, &mut theta, &mut rng)?;
        let opt = Adam::new(cfg.meta_lr)
            .with_clip(cfg.clip)
            .with_weight_decay(cfg.l2);
        Ok(Fewner {
            backbone,
            theta,
            cfg,
            opt,
            rng,
        })
    }

    /// The meta-configuration.
    pub fn config(&self) -> &MetaConfig {
        &self.cfg
    }

    /// Inner loop: adapts a fresh φ on the support set for `steps` SGD
    /// steps (Eq. 5). Returns the context store, the φ id, and the
    /// trajectory of φ values *before* each step (φ_0 … φ_{K−1}), which the
    /// exact meta-gradient needs.
    pub fn adapt_context(
        &self,
        support: &[LabeledSentence],
        tags: &TagSet,
        steps: usize,
    ) -> Result<(ParamStore, ParamId, Vec<fewner_tensor::Array>)> {
        let (phi_store, phi_id) = self.backbone.new_context();
        self.inner_loop(phi_store, phi_id, support, tags, steps)
    }

    /// The inner SGD loop from an explicit starting φ — shared by the fresh
    /// adapt above and the warm-started [`Fewner::extend`].
    fn inner_loop(
        &self,
        mut phi_store: ParamStore,
        phi_id: ParamId,
        support: &[LabeledSentence],
        tags: &TagSet,
        steps: usize,
    ) -> Result<(ParamStore, ParamId, Vec<fewner_tensor::Array>)> {
        let mut sgd = Sgd::new(self.cfg.inner_lr);
        let mut trajectory: Vec<fewner_tensor::Array> = Vec::with_capacity(steps);
        let mut rng = Rng::new(0); // inner loop is dropout-free
        for _ in 0..steps {
            let snapshot = (**phi_store.value(phi_id)).clone();
            let g = Graph::eval(); // inner loop: dropout off, gradients on
            let phi = g.param(&phi_store, phi_id);
            let loss =
                self.backbone
                    .batch_loss(&g, &self.theta, Some(phi), support, tags, &mut rng);
            // A diverging inner loop (possible with many test-time steps on
            // a hard support set) stops early at the last finite φ rather
            // than poisoning the task. (A backtracking line search was
            // evaluated here and measurably *hurt* 5-shot adaptation —
            // meta-training bakes the fixed-α trajectory into θ, so the
            // test-time loop must follow the same dynamics.)
            let Ok(grads) = g.backward(loss) else { break };
            let grads = grads.for_store(&phi_store);
            if sgd.step(&mut phi_store, &grads).is_err() {
                break;
            }
            if !phi_store.value(phi_id).all_finite() {
                phi_store.set(phi_id, snapshot);
                break;
            }
            trajectory.push(snapshot);
        }
        Ok((phi_store, phi_id, trajectory))
    }

    /// Adapts a fresh φ to `task`'s support set and returns it as a
    /// first-class [`AdaptedCtx`] (paper: the adapting procedure of
    /// Algorithm 1; θ is read, never written).
    ///
    /// Observability: the inner loop is recorded as a `serve/adapt` span
    /// with way/shot/support/step context plus a `serve/tasks` counter on
    /// the tracer carried by `opts`. Tracing reads no RNG state — a traced
    /// adaptation is bitwise identical to an untraced one.
    pub fn adapt(
        &self,
        task: &Task,
        enc: &TokenEncoder,
        opts: &ServeOptions,
    ) -> Result<AdaptedCtx> {
        let tags = task.tag_set();
        let support = fewner_models::encode_batch(enc, &task.support, &tags);
        self.adapt_encoded(&support, task.n_ways, Some(task.k_shots), opts)
    }

    /// [`Fewner::adapt`] over already-encoded support sentences — the entry
    /// point for serving daemons whose support sets arrive over the wire
    /// rather than as sampled [`Task`]s.
    pub fn adapt_support(
        &self,
        support: &[LabeledSentence],
        n_ways: usize,
        opts: &ServeOptions,
    ) -> Result<AdaptedCtx> {
        self.adapt_encoded(support, n_ways, None, opts)
    }

    fn adapt_encoded(
        &self,
        support: &[LabeledSentence],
        n_ways: usize,
        shots: Option<usize>,
        opts: &ServeOptions,
    ) -> Result<AdaptedCtx> {
        // A request whose budget is already spent must not start an inner
        // loop it cannot finish in time.
        if let Some(d) = opts.deadline() {
            d.check("adapt")?;
        }
        let tags = TagSet::new(n_ways)?;
        let tracer = opts.tracer_ref();
        let span = {
            let mut span = tracer.span("serve/adapt");
            span.set("ways", n_ways);
            if let Some(k) = shots {
                span.set("shots", k);
            }
            span.set("support", support.len());
            span.set("steps", self.cfg.inner_steps_test);
            span
        };
        let (phi_store, phi_id, _) =
            self.adapt_context(support, &tags, self.cfg.inner_steps_test)?;
        drop(span);
        tracer.incr("serve/tasks", 1);
        Ok(AdaptedCtx::new(
            n_ways,
            phi_store,
            phi_id,
            support.to_vec(),
            1,
        ))
    }

    /// Folds newly arrived support into an existing context *incrementally*:
    /// instead of re-running the full inner loop from a fresh φ, the loop
    /// warm-starts from `ctx`'s current φ and takes a few steps
    /// (`inner_steps_test / 2`, at least one) over the merged old + new
    /// support. Returns a successor context carrying the merged support and
    /// `ctx.revision() + 1`; `ctx` itself is untouched, so a caller can
    /// still fall back to it.
    ///
    /// This is the online-adaptation half of the streaming story: a tenant
    /// whose labelled examples trickle in pays a fraction of a cold adapt
    /// per wave instead of the full loop every time. Recorded as a
    /// `serve/adapt_extend` span plus a `serve/extends` counter, so trace
    /// summaries can split extend latency from cold-adapt latency.
    pub fn extend(
        &self,
        ctx: &AdaptedCtx,
        new_support: &[LabeledSentence],
        opts: &ServeOptions,
    ) -> Result<AdaptedCtx> {
        if let Some(d) = opts.deadline() {
            d.check("extend")?;
        }
        if new_support.is_empty() {
            return Err(Error::InvalidConfig(
                "extend requires at least one new support sentence".into(),
            ));
        }
        let expected = self.backbone.config().phi_total();
        if ctx.phi_values().len() != expected {
            return Err(Error::ShapeMismatch {
                op: "extend",
                detail: format!(
                    "adapted context has {} φ values, model expects {expected}",
                    ctx.phi_values().len()
                ),
            });
        }
        let tags = ctx.tag_set();
        let mut merged = ctx.support().to_vec();
        merged.extend_from_slice(new_support);
        let steps = (self.cfg.inner_steps_test / 2).max(1);
        let tracer = opts.tracer_ref();
        let span = {
            let mut span = tracer.span("serve/adapt_extend");
            span.set("ways", ctx.n_ways());
            span.set("new", new_support.len());
            span.set("support", merged.len());
            span.set("steps", steps);
            span.set("revision", u64::from(ctx.revision()) + 1);
            span
        };
        // Warm start: a fresh context binding whose φ is seeded with the
        // incoming context's adapted values.
        let (mut phi_store, phi_id) = self.backbone.new_context();
        let (src_store, src_id) = ctx.phi();
        phi_store.set(phi_id, (**src_store.value(src_id)).clone());
        let (phi_store, phi_id, _) = self.inner_loop(phi_store, phi_id, &merged, &tags, steps)?;
        drop(span);
        tracer.incr("serve/extends", 1);
        Ok(AdaptedCtx::new(
            ctx.n_ways(),
            phi_store,
            phi_id,
            merged,
            ctx.revision() + 1,
        ))
    }

    /// Decodes `sentences` under a previously adapted context on the
    /// gradient-free `Infer` executor (φ-conditioned work hoisted once per
    /// call — passing many sentences amortises it, which is what the
    /// serving daemon's micro-batching exploits).
    ///
    /// Validates that `ctx` shape-matches this model: a context adapted (or
    /// reloaded from disk) against a different backbone is rejected instead
    /// of silently mis-decoding. Recorded as a `serve/predict` span plus a
    /// `serve/tokens` counter.
    pub fn predict(
        &self,
        ctx: &AdaptedCtx,
        sentences: &[fewner_models::EncodedSentence],
        opts: &ServeOptions,
    ) -> Result<Vec<Vec<usize>>> {
        let expected = self.backbone.config().phi_total();
        let actual = ctx.phi_values().len();
        if actual != expected {
            return Err(Error::ShapeMismatch {
                op: "predict",
                detail: format!("adapted context has {actual} φ values, model expects {expected}"),
            });
        }
        if ctx.n_ways() > self.backbone.config().max_ways() {
            return Err(Error::InvalidConfig(format!(
                "adapted context has {} ways, model supports at most {}",
                ctx.n_ways(),
                self.backbone.config().max_ways()
            )));
        }
        if let Some(d) = opts.deadline() {
            d.check("predict")?;
        }
        let tags = ctx.tag_set();
        let tracer = opts.tracer_ref();
        let tokens: usize = sentences.iter().map(|s| s.len()).sum();
        let predictions = {
            let mut span = tracer.span("serve/predict");
            span.set("sentences", sentences.len());
            span.set("tokens", tokens);
            self.backbone
                .decode_task(&self.theta, Some(ctx.phi()), sentences.iter(), &tags)
        };
        tracer.incr("serve/tokens", tokens as u64);
        Ok(predictions)
    }

    /// Adapt + predict over a task's own query set (the episodic
    /// evaluation shape). Prefer [`Fewner::adapt`] + [`Fewner::predict`]
    /// when the context will be reused.
    pub fn adapt_then_predict(
        &self,
        task: &Task,
        enc: &TokenEncoder,
        opts: &ServeOptions,
    ) -> Result<Vec<Vec<usize>>> {
        let ctx = self.adapt(task, enc, opts)?;
        let query: Vec<fewner_models::EncodedSentence> =
            task.query.iter().map(|s| enc.encode(&s.tokens)).collect();
        self.predict(&ctx, &query, opts)
    }
}

impl EpisodicLearner for Fewner {
    fn name(&self) -> &'static str {
        "FewNER"
    }

    fn step_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn task_grad(&self, task: &Task, enc: &TokenEncoder, rng: &mut Rng) -> Result<TaskOutcome> {
        let tags = task.tag_set();
        let (support, query) = encode_task(enc, task);

        // Inner loop on φ (Algorithm 1, lines 6–8).
        let (phi_store, phi_id, trajectory) =
            self.adapt_context(&support, &tags, self.cfg.inner_steps_train)?;

        // Query loss of the adapted model (line 9).
        let g = Graph::new(); // training mode: dropout active
        let phi = g.param(&phi_store, phi_id);
        let loss = self
            .backbone
            .batch_loss(&g, &self.theta, Some(phi), &query, &tags, rng);
        let loss_value = g.value(loss).scalar_value();
        let grads = g.backward(loss)?;
        let mut theta_grads = grads.for_store(&self.theta);

        if let SecondOrder::FiniteDiffHvp { epsilon } = self.cfg.second_order {
            let phi_grad = grads.for_store(&phi_store);
            if let Some(v) = phi_grad.get(phi_id) {
                let correction = second_order::theta_correction(
                    &self.backbone,
                    &self.theta,
                    &support,
                    &tags,
                    &trajectory,
                    v,
                    self.cfg.inner_lr,
                    epsilon,
                )?;
                theta_grads.add_assign(&correction);
            }
        }
        Ok(TaskOutcome {
            loss: loss_value,
            grads: theta_grads,
        })
    }

    fn apply_meta_grads(
        &mut self,
        mut grads: fewner_tensor::ParamGrads,
        n_tasks: usize,
    ) -> Result<()> {
        grads.scale(1.0 / n_tasks.max(1) as f32);
        self.opt.step(&mut self.theta, &grads)
    }

    fn adapt_and_predict(&self, task: &Task, enc: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
        self.adapt_then_predict(task, enc, &ServeOptions::new())
    }

    fn decay_lr(&mut self, factor: f32) {
        self.opt.decay_lr(factor);
    }

    fn export_state(&self) -> Option<Json> {
        Some(Json::Obj(vec![
            ("theta".into(), self.theta.to_saved().to_json()),
            ("opt".into(), self.opt.to_saved().to_json()),
            ("rng".into(), self.rng.to_json()),
        ]))
    }

    fn import_state(&mut self, state: &Json) -> Result<()> {
        self.theta
            .load_saved(&SavedParams::from_json(state.field("theta")?)?)?;
        self.opt
            .load_saved(&SavedAdam::from_json(state.field("opt")?)?);
        self.rng = Rng::from_json(state.field("rng")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_models::Conditioning;
    use fewner_text::embed::EmbeddingSpec;

    fn tiny_setup() -> (TokenEncoder, Vec<Task>, Fewner) {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let mut rng = Rng::new(5);
        let tasks: Vec<Task> = (0..3).map(|_| sampler.sample(&mut rng).unwrap()).collect();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let bb_cfg = fewner_models::BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: 8,
            slot_ctx_dim: 4,
            conditioning: Conditioning::Film,
            dropout: 0.1,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: fewner_models::HeadKind::Dense { n_ways: 3 },
        };
        let cfg = MetaConfig {
            inner_steps_train: 2,
            inner_steps_test: 4,
            meta_batch: 3,
            ..MetaConfig::default()
        };
        let fewner = Fewner::new(bb_cfg, &enc, cfg).unwrap();
        (enc, tasks, fewner)
    }

    #[test]
    fn meta_step_runs_and_updates_theta() {
        let (enc, tasks, mut fewner) = tiny_setup();
        let before = fewner.theta.snapshot();
        let loss = fewner.meta_step(&tasks, &enc).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        let after = fewner.theta.snapshot();
        assert!(
            before.iter().zip(&after).any(|(a, b)| a != b),
            "theta must change after a meta step"
        );
    }

    #[test]
    fn adaptation_leaves_theta_untouched() {
        let (enc, tasks, fewner) = tiny_setup();
        let before = fewner.theta.snapshot();
        let preds = fewner.adapt_and_predict(&tasks[0], &enc).unwrap();
        let after = fewner.theta.snapshot();
        assert_eq!(before, after, "test-time adaptation must only touch φ");
        assert_eq!(preds.len(), tasks[0].query.len());
        for (p, q) in preds.iter().zip(&tasks[0].query) {
            assert_eq!(p.len(), q.len());
        }
    }

    #[test]
    fn inner_loop_reduces_support_loss() {
        let (enc, tasks, fewner) = tiny_setup();
        let tags = tasks[0].tag_set();
        let (support, _) = encode_task(&enc, &tasks[0]);
        let loss_at = |phi_store: &ParamStore, phi_id| {
            let g = Graph::eval();
            let phi = g.param(phi_store, phi_id);
            let mut rng = Rng::new(0);
            let l =
                fewner
                    .backbone
                    .batch_loss(&g, &fewner.theta, Some(phi), &support, &tags, &mut rng);
            g.value(l).scalar_value()
        };
        let (phi0, id0) = fewner.backbone.new_context();
        let before = loss_at(&phi0, id0);
        let (phi_k, id_k, traj) = fewner.adapt_context(&support, &tags, 6).unwrap();
        let after = loss_at(&phi_k, id_k);
        assert!(after < before, "inner loop: {before} -> {after}");
        assert_eq!(traj.len(), 6);
        assert!(traj[0].data().iter().all(|&v| v == 0.0), "φ starts at 0");
    }

    #[test]
    fn extend_grows_support_and_bumps_revision() {
        let (enc, tasks, fewner) = tiny_setup();
        let opts = ServeOptions::new();
        let ctx = fewner.adapt(&tasks[0], &enc, &opts).unwrap();
        assert_eq!(ctx.revision(), 1);
        assert_eq!(ctx.support().len(), tasks[0].support.len());

        let (new_support, _) = encode_task(&enc, &tasks[1]);
        let before_theta = fewner.theta.snapshot();
        let extended = fewner.extend(&ctx, &new_support, &opts).unwrap();
        assert_eq!(
            fewner.theta.snapshot(),
            before_theta,
            "extend must only touch φ"
        );
        assert_eq!(extended.revision(), 2);
        assert_eq!(
            extended.support().len(),
            ctx.support().len() + new_support.len(),
            "merged support = old + new"
        );
        assert_ne!(
            extended.phi_values(),
            ctx.phi_values(),
            "the warm-started inner loop must move φ"
        );
        // The predecessor is untouched and still usable.
        assert_eq!(ctx.revision(), 1);

        // Extending is deterministic: same inputs, same successor φ.
        let again = fewner.extend(&ctx, &new_support, &opts).unwrap();
        assert_eq!(again.phi_values(), extended.phi_values());

        // Successive extensions keep counting.
        let third = fewner.extend(&extended, &new_support, &opts).unwrap();
        assert_eq!(third.revision(), 3);

        // An empty wave is a caller error, not a no-op.
        assert!(matches!(
            fewner.extend(&ctx, &[], &opts),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn extend_rejects_a_foreign_shaped_context() {
        let (enc, tasks, fewner) = tiny_setup();
        let mut store = ParamStore::new();
        let id = store.add("phi", fewner_tensor::Array::zeros(1, 3));
        let foreign = AdaptedCtx::new(3, store, id, Vec::new(), 1);
        let (support, _) = encode_task(&enc, &tasks[0]);
        assert!(matches!(
            fewner.extend(&foreign, &support, &ServeOptions::new()),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn second_order_mode_runs() {
        let (enc, tasks, _) = tiny_setup();
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let _ = d;
        let bb_cfg = fewner_models::BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: 8,
            slot_ctx_dim: 4,
            conditioning: Conditioning::Film,
            dropout: 0.0,
            use_char_cnn: true,
            encoder: fewner_models::backbone::EncoderKind::BiGru,
            head: fewner_models::HeadKind::Dense { n_ways: 3 },
        };
        let cfg = MetaConfig {
            second_order: SecondOrder::FiniteDiffHvp { epsilon: 1e-2 },
            inner_steps_train: 2,
            ..MetaConfig::default()
        };
        let mut fewner = Fewner::new(bb_cfg, &enc, cfg).unwrap();
        let loss = fewner.meta_step(&tasks[..2], &enc).unwrap();
        assert!(loss.is_finite());
    }

    #[test]
    fn conditioning_none_is_rejected() {
        let (enc, _, _) = tiny_setup();
        let bb_cfg = fewner_models::BackboneConfig {
            word_dim: 20,
            conditioning: Conditioning::None,
            ..fewner_models::BackboneConfig::default_for(3)
        };
        assert!(Fewner::new(bb_cfg, &enc, MetaConfig::default()).is_err());
    }
}
