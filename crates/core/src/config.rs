//! Meta-learning hyper-parameters (paper §4.1.3).

use fewner_util::{Error, FromJson, Json, Result, ToJson};

/// How the outer-loop meta-gradient treats the inner-loop dependence of
/// φ_k on θ (see `second_order` module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SecondOrder {
    /// First-order approximation: φ_k is treated as a constant w.r.t. θ.
    /// The standard, cheap choice; matches FOMAML.
    FirstOrder,
    /// Adds the curvature terms with central-difference Hessian-vector
    /// products against the low-dimensional φ (two extra passes per inner
    /// step) — the paper's observation that FEWNER needs second-order
    /// derivatives only through φ, made computable without a higher-order
    /// tape.
    FiniteDiffHvp {
        /// Finite-difference step (relative to the direction's norm).
        epsilon: f32,
    },
}

impl ToJson for SecondOrder {
    fn to_json(&self) -> Json {
        match self {
            SecondOrder::FirstOrder => Json::Str("first_order".into()),
            SecondOrder::FiniteDiffHvp { epsilon } => Json::Obj(vec![
                ("mode".into(), Json::Str("finite_diff_hvp".into())),
                ("epsilon".into(), Json::from(*epsilon)),
            ]),
        }
    }
}

impl FromJson for SecondOrder {
    fn from_json(json: &Json) -> Result<SecondOrder> {
        match json {
            Json::Str(s) if s == "first_order" => Ok(SecondOrder::FirstOrder),
            Json::Obj(_)
                if json.get("mode").and_then(|m| m.as_str().ok()) == Some("finite_diff_hvp") =>
            {
                Ok(SecondOrder::FiniteDiffHvp {
                    epsilon: json.field("epsilon")?.as_f32()?,
                })
            }
            other => Err(Error::Serde(format!("unknown SecondOrder: {other:?}"))),
        }
    }
}

/// Hyper-parameters shared by the episodic learners.
#[derive(Debug, Clone)]
pub struct MetaConfig {
    /// Inner-loop learning rate α (paper: 0.1).
    pub inner_lr: f32,
    /// Outer-loop meta learning rate β (paper: 8·10⁻⁴).
    pub meta_lr: f32,
    /// Inner gradient steps during training (paper: 2).
    pub inner_steps_train: usize,
    /// Inner gradient steps at test time (paper: 8).
    pub inner_steps_test: usize,
    /// Meta-batch size |T| (paper: 8).
    pub meta_batch: usize,
    /// Gradient clip (paper: 5.0).
    pub clip: f32,
    /// L2 regularisation (paper: 10⁻⁷).
    pub l2: f32,
    /// Learning-rate decay factor (paper: 0.9 …).
    pub decay: f32,
    /// … applied every this many *tasks* (paper: 5000).
    pub decay_every_tasks: usize,
    /// Second-order treatment of the FEWNER meta-gradient.
    pub second_order: SecondOrder,
    /// Base seed for training-task sampling and dropout.
    pub seed: u64,
    /// Divergence guard: abort training with [`Error::Diverged`] after this
    /// many *consecutive* meta-batches are skipped for non-finite
    /// losses/gradients, instead of silently spinning through the rest of
    /// the schedule with θ frozen. `0` disables the guard.
    ///
    /// [`Error::Diverged`]: fewner_util::Error::Diverged
    pub max_consecutive_skips: usize,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            inner_lr: 0.1,
            meta_lr: 8e-4,
            inner_steps_train: 2,
            inner_steps_test: 8,
            meta_batch: 8,
            clip: 5.0,
            l2: 1e-7,
            decay: 0.9,
            decay_every_tasks: 5000,
            second_order: SecondOrder::FirstOrder,
            seed: 0xF3A7,
            max_consecutive_skips: 64,
        }
    }
}

impl ToJson for MetaConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("inner_lr".into(), Json::from(self.inner_lr)),
            ("meta_lr".into(), Json::from(self.meta_lr)),
            (
                "inner_steps_train".into(),
                Json::from(self.inner_steps_train),
            ),
            ("inner_steps_test".into(), Json::from(self.inner_steps_test)),
            ("meta_batch".into(), Json::from(self.meta_batch)),
            ("clip".into(), Json::from(self.clip)),
            ("l2".into(), Json::from(self.l2)),
            ("decay".into(), Json::from(self.decay)),
            (
                "decay_every_tasks".into(),
                Json::from(self.decay_every_tasks),
            ),
            ("second_order".into(), self.second_order.to_json()),
            ("seed".into(), Json::from(self.seed)),
            (
                "max_consecutive_skips".into(),
                Json::from(self.max_consecutive_skips),
            ),
        ])
    }
}

impl FromJson for MetaConfig {
    fn from_json(json: &Json) -> Result<MetaConfig> {
        Ok(MetaConfig {
            inner_lr: json.field("inner_lr")?.as_f32()?,
            meta_lr: json.field("meta_lr")?.as_f32()?,
            inner_steps_train: json.field("inner_steps_train")?.as_usize()?,
            inner_steps_test: json.field("inner_steps_test")?.as_usize()?,
            meta_batch: json.field("meta_batch")?.as_usize()?,
            clip: json.field("clip")?.as_f32()?,
            l2: json.field("l2")?.as_f32()?,
            decay: json.field("decay")?.as_f32()?,
            decay_every_tasks: json.field("decay_every_tasks")?.as_usize()?,
            second_order: SecondOrder::from_json(json.field("second_order")?)?,
            seed: json.field("seed")?.as_u64()?,
            // Absent in pre-divergence-guard checkpoints; default rather
            // than reject so old files keep loading.
            max_consecutive_skips: match json.get("max_consecutive_skips") {
                Some(v) => v.as_usize()?,
                None => MetaConfig::default().max_consecutive_skips,
            },
        })
    }
}

impl MetaConfig {
    /// Validates ranges.
    pub fn validate(&self) -> Result<()> {
        if !(self.inner_lr > 0.0 && self.meta_lr > 0.0) {
            return Err(Error::InvalidConfig("learning rates must be > 0".into()));
        }
        if self.inner_steps_train == 0 || self.inner_steps_test == 0 {
            return Err(Error::InvalidConfig("inner steps must be ≥ 1".into()));
        }
        if self.meta_batch == 0 {
            return Err(Error::InvalidConfig("meta batch must be ≥ 1".into()));
        }
        if !(0.0 < self.decay && self.decay <= 1.0) {
            return Err(Error::InvalidConfig("decay must be in (0, 1]".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MetaConfig::default();
        assert_eq!(c.inner_lr, 0.1);
        assert_eq!(c.meta_lr, 8e-4);
        assert_eq!(c.inner_steps_train, 2);
        assert_eq!(c.inner_steps_test, 8);
        assert_eq!(c.meta_batch, 8);
        assert_eq!(c.clip, 5.0);
        assert_eq!(c.decay, 0.9);
        assert_eq!(c.decay_every_tasks, 5000);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_nonsense() {
        let zero_lr = MetaConfig {
            inner_lr: 0.0,
            ..MetaConfig::default()
        };
        assert!(zero_lr.validate().is_err());
        let zero_steps = MetaConfig {
            inner_steps_test: 0,
            ..MetaConfig::default()
        };
        assert!(zero_steps.validate().is_err());
        let bad_decay = MetaConfig {
            decay: 1.5,
            ..MetaConfig::default()
        };
        assert!(bad_decay.validate().is_err());
    }

    #[test]
    fn old_checkpoints_without_skip_guard_still_load() {
        let c = MetaConfig {
            max_consecutive_skips: 7,
            ..MetaConfig::default()
        };
        let Json::Obj(mut fields) = c.to_json() else {
            panic!("MetaConfig must serialise to an object");
        };
        fields.retain(|(k, _)| k != "max_consecutive_skips");
        let back = MetaConfig::from_json(&Json::Obj(fields)).unwrap();
        assert_eq!(
            back.max_consecutive_skips,
            MetaConfig::default().max_consecutive_skips
        );
    }

    #[test]
    fn json_round_trip() {
        let c = MetaConfig {
            second_order: SecondOrder::FiniteDiffHvp { epsilon: 1e-2 },
            ..MetaConfig::default()
        };
        let json = c.to_json().to_string();
        let back = MetaConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.second_order, c.second_order);
        assert_eq!(back.meta_lr, c.meta_lr);
        assert_eq!(back.seed, c.seed);
    }
}
