//! Meta-learning hyper-parameters (paper §4.1.3).

use fewner_util::{Error, Result};
use serde::{Deserialize, Serialize};

/// How the outer-loop meta-gradient treats the inner-loop dependence of
/// φ_k on θ (see `second_order` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SecondOrder {
    /// First-order approximation: φ_k is treated as a constant w.r.t. θ.
    /// The standard, cheap choice; matches FOMAML.
    FirstOrder,
    /// Adds the curvature terms with central-difference Hessian-vector
    /// products against the low-dimensional φ (two extra passes per inner
    /// step) — the paper's observation that FEWNER needs second-order
    /// derivatives only through φ, made computable without a higher-order
    /// tape.
    FiniteDiffHvp {
        /// Finite-difference step (relative to the direction's norm).
        epsilon: f32,
    },
}

/// Hyper-parameters shared by the episodic learners.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaConfig {
    /// Inner-loop learning rate α (paper: 0.1).
    pub inner_lr: f32,
    /// Outer-loop meta learning rate β (paper: 8·10⁻⁴).
    pub meta_lr: f32,
    /// Inner gradient steps during training (paper: 2).
    pub inner_steps_train: usize,
    /// Inner gradient steps at test time (paper: 8).
    pub inner_steps_test: usize,
    /// Meta-batch size |T| (paper: 8).
    pub meta_batch: usize,
    /// Gradient clip (paper: 5.0).
    pub clip: f32,
    /// L2 regularisation (paper: 10⁻⁷).
    pub l2: f32,
    /// Learning-rate decay factor (paper: 0.9 …).
    pub decay: f32,
    /// … applied every this many *tasks* (paper: 5000).
    pub decay_every_tasks: usize,
    /// Second-order treatment of the FEWNER meta-gradient.
    pub second_order: SecondOrder,
    /// Base seed for training-task sampling and dropout.
    pub seed: u64,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            inner_lr: 0.1,
            meta_lr: 8e-4,
            inner_steps_train: 2,
            inner_steps_test: 8,
            meta_batch: 8,
            clip: 5.0,
            l2: 1e-7,
            decay: 0.9,
            decay_every_tasks: 5000,
            second_order: SecondOrder::FirstOrder,
            seed: 0xF3A7,
        }
    }
}

impl MetaConfig {
    /// Validates ranges.
    pub fn validate(&self) -> Result<()> {
        if !(self.inner_lr > 0.0 && self.meta_lr > 0.0) {
            return Err(Error::InvalidConfig("learning rates must be > 0".into()));
        }
        if self.inner_steps_train == 0 || self.inner_steps_test == 0 {
            return Err(Error::InvalidConfig("inner steps must be ≥ 1".into()));
        }
        if self.meta_batch == 0 {
            return Err(Error::InvalidConfig("meta batch must be ≥ 1".into()));
        }
        if !(0.0 < self.decay && self.decay <= 1.0) {
            return Err(Error::InvalidConfig("decay must be in (0, 1]".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MetaConfig::default();
        assert_eq!(c.inner_lr, 0.1);
        assert_eq!(c.meta_lr, 8e-4);
        assert_eq!(c.inner_steps_train, 2);
        assert_eq!(c.inner_steps_test, 8);
        assert_eq!(c.meta_batch, 8);
        assert_eq!(c.clip, 5.0);
        assert_eq!(c.decay, 0.9);
        assert_eq!(c.decay_every_tasks, 5000);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_nonsense() {
        let zero_lr = MetaConfig {
            inner_lr: 0.0,
            ..MetaConfig::default()
        };
        assert!(zero_lr.validate().is_err());
        let zero_steps = MetaConfig {
            inner_steps_test: 0,
            ..MetaConfig::default()
        };
        assert!(zero_steps.validate().is_err());
        let bad_decay = MetaConfig {
            decay: 1.5,
            ..MetaConfig::default()
        };
        assert!(bad_decay.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = MetaConfig {
            second_order: SecondOrder::FiniteDiffHvp { epsilon: 1e-2 },
            ..MetaConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: MetaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.second_order, c.second_order);
    }
}
