//! Streaming-training acceptance suite (ISSUE 10 tentpole): training from a
//! chunked corpus stream must be a pure refactor of the materialized path —
//! serial, 2-shard and killed-and-resumed streaming runs all leave bitwise
//! identical learner state, and the persisted stream cursor refuses to
//! resume under a different stream geometry.
//!
//! Every training test runs inside [`fault::with_plan`] — even the ones
//! with no faults to inject — because the fault plan is process-global and
//! parallel tests would otherwise steal each other's injected arms.

use std::path::PathBuf;

use fewner_core::{
    Checkpoint, CoordinatorReport, EpisodicLearner, Fewner, MetaConfig, ShardCoordinator,
    StreamSource, TrainConfig, Trainer,
};
use fewner_corpus::{
    partition_type_ids, CorpusSource, DatasetProfile, StreamingCorpus, TypePartition,
};
use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};
use fewner_obs::Tracer;
use fewner_text::embed::EmbeddingSpec;
use fewner_text::TypeId;
use fewner_util::fault::{self, FaultPlan};
use fewner_util::{Error, Result};

const CHUNK: usize = 64;
const WINDOW: usize = 200;
const STRIDE: usize = 20;

/// The streaming corpus every test draws from, plus its train-side type
/// partition and an encoder built from the materialized equivalent (the
/// encoder needs corpus-wide statistics; building it from the same
/// generator keeps the vocabularies identical across paths).
fn setup() -> (StreamingCorpus, TypePartition, TokenEncoder) {
    let p = DatasetProfile::bionlp13cg();
    let corpus = p.stream(0.05, None, CHUNK).unwrap();
    let ids: Vec<TypeId> = corpus.types().iter().map(|t| t.id).collect();
    let (train, _, _) = partition_type_ids(ids, (8, 3, 5), 1).unwrap();
    let d = corpus.clone().materialize().unwrap();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    (corpus, train, enc)
}

fn meta() -> MetaConfig {
    MetaConfig {
        meta_batch: 2,
        inner_steps_train: 1,
        ..MetaConfig::default()
    }
}

fn learner(enc: &TokenEncoder) -> Fewner {
    let bb = BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        conditioning: Conditioning::Film,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    };
    Fewner::new(bb, enc, meta()).unwrap()
}

fn cfg(iterations: usize) -> TrainConfig {
    TrainConfig::new(3, 1)
        .query_size(4)
        .seed(9)
        .threads(1)
        .iterations(iterations)
}

fn source(
    corpus: &StreamingCorpus,
    partition: &TypePartition,
    schedule: &TrainConfig,
) -> StreamSource {
    StreamSource::open(corpus.clone(), partition.clone(), schedule, WINDOW, STRIDE).unwrap()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fewner-stream-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The learner's complete exported training state as a comparable string.
fn state_of(l: &Fewner) -> String {
    l.export_state()
        .expect("Fewner is checkpointable")
        .to_string()
}

/// The θ_Meta checkpoint a run would ship, as on-disk bytes.
fn checkpoint_bytes(l: &Fewner, dir: &std::path::Path, name: &str) -> Vec<u8> {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(name);
    Checkpoint::capture(l).save(&path).unwrap();
    std::fs::read(&path).unwrap()
}

/// Runs a full sharded round-trip in-process: a coordinator thread plus
/// `shards` worker threads (same harness as the sharded-determinism suite).
fn sharded<T, F>(shards: usize, work: F) -> (Vec<Result<T>>, CoordinatorReport)
where
    T: Send,
    F: Fn(usize, &str) -> Result<T> + Sync,
{
    let coordinator = ShardCoordinator::bind("127.0.0.1:0", shards).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| coordinator.run(&Tracer::disabled()));
        let workers: Vec<_> = (0..shards)
            .map(|shard| {
                let (addr, work) = (addr.as_str(), &work);
                scope.spawn(move || work(shard, addr))
            })
            .collect();
        let results = workers
            .into_iter()
            .map(|w| w.join().expect("worker thread panicked"))
            .collect();
        let report = driver
            .join()
            .expect("coordinator thread panicked")
            .expect("coordinator run failed");
        (results, report)
    })
}

/// Acceptance: streaming training killed at iteration k and resumed through
/// [`Trainer::resume_stream`] — with the window replayed from the persisted
/// cursor — produces the byte-identical final checkpoint of a
/// straight-through streaming run.
#[test]
fn streaming_kill_and_resume_is_bitwise_identical() {
    let (corpus, train, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let dir = tmp_dir("resume");
        let m = meta();

        // Straight-through reference: 12 iterations, no checkpoints.
        let mut straight = learner(&enc);
        let schedule = cfg(12);
        let mut src = source(&corpus, &train, &schedule);
        Trainer::new()
            .train_stream(&mut straight, &mut src, &enc, &m, &schedule)
            .unwrap();
        assert!(
            src.sampler().high_water() <= WINDOW,
            "residency {} exceeded the {WINDOW}-sentence window",
            src.sampler().high_water()
        );

        // "Killed" run: stops after 7 iterations with snapshots at 3 and 6.
        let mut killed = learner(&enc);
        let ck = cfg(7).checkpoint_every(3).checkpoint_dir(&dir);
        let mut src = source(&corpus, &train, &ck);
        Trainer::new()
            .train_stream(&mut killed, &mut src, &enc, &m, &ck)
            .unwrap();
        drop(killed); // the process is gone; only the snapshots survive

        // Resume into the full 12-iteration schedule from a *fresh* stream:
        // the cursor in the snapshot replays the window to where it was.
        let mut resumed = learner(&enc);
        let rk = cfg(12).checkpoint_every(3).checkpoint_dir(&dir);
        let mut src = source(&corpus, &train, &rk);
        let log = Trainer::new()
            .resume_stream(&mut resumed, &mut src, &enc, &m, &rk, &dir)
            .unwrap();

        assert_eq!(log.losses.len(), 12, "full loss history is restored");
        assert_eq!(
            state_of(&straight),
            state_of(&resumed),
            "θ, optimizer moments and RNG must all match"
        );
        assert_eq!(
            checkpoint_bytes(&straight, &dir, "straight.json"),
            checkpoint_bytes(&resumed, &dir, "resumed.json"),
            "final checkpoint files must be byte-identical"
        );
        std::fs::remove_dir_all(dir).ok();
    });
}

/// Acceptance: a 2-shard streaming run leaves every worker with exactly the
/// serial streaming bytes — window advancement is draw-driven and RNG-free,
/// so shard lockstep holds across the stream exactly as it does for
/// materialized views.
#[test]
fn streaming_2_shard_run_matches_serial_bitwise() {
    let (corpus, train, enc) = setup();
    let m = MetaConfig {
        // 4 tasks per meta-batch so the reduce tree splits across shards.
        meta_batch: 4,
        inner_steps_train: 1,
        ..MetaConfig::default()
    };
    const ITERS: usize = 6;

    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let mut serial = learner(&enc);
        let schedule = cfg(ITERS);
        let mut src = source(&corpus, &train, &schedule);
        Trainer::new()
            .train_stream(&mut serial, &mut src, &enc, &m, &schedule)
            .unwrap();
        let reference = state_of(&serial);

        let (states, report) = sharded(2, |shard, addr| {
            let schedule = cfg(ITERS).shards(2).shard_id(shard).coordinator(addr);
            let mut src = source(&corpus, &train, &schedule);
            let mut l = learner(&enc);
            Trainer::new()
                .train_stream(&mut l, &mut src, &enc, &m, &schedule)
                .map(|_| state_of(&l))
        });
        assert_eq!(report.rounds, ITERS, "one reduce round per iteration");
        assert_eq!((report.deaths, report.skipped), (0, 0));
        for (shard, state) in states.into_iter().enumerate() {
            assert_eq!(
                state.unwrap(),
                reference,
                "streaming 2-shard worker {shard} diverged from serial"
            );
        }
    });
}

/// The stream geometry (corpus length, chunk size, window, stride) is part
/// of the run fingerprint: snapshots written under one geometry refuse to
/// resume under another, and materialized-run snapshots refuse a streaming
/// resume outright — the persisted cursor would address different
/// sentences.
#[test]
fn resume_refuses_a_mismatched_stream_geometry() {
    let (corpus, train, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let dir = tmp_dir("geometry");
        let m = meta();

        let mut l = learner(&enc);
        let ck = cfg(3).checkpoint_every(3).checkpoint_dir(&dir);
        let mut src = source(&corpus, &train, &ck);
        Trainer::new()
            .train_stream(&mut l, &mut src, &enc, &m, &ck)
            .unwrap();

        // Same schedule, different window: the cursor semantics change, so
        // the fingerprint check must refuse before touching the learner.
        let mut other = learner(&enc);
        let rk = cfg(6).checkpoint_every(3).checkpoint_dir(&dir);
        let mut narrow =
            StreamSource::open(corpus.clone(), train.clone(), &rk, WINDOW / 2, STRIDE).unwrap();
        let err = Trainer::new()
            .resume_stream(&mut other, &mut narrow, &enc, &m, &rk, &dir)
            .unwrap_err();
        assert!(
            matches!(err, Error::InvalidConfig(_)),
            "expected InvalidConfig on geometry mismatch, got {err:?}"
        );

        // A materialized-view resume must not accept streaming snapshots
        // either: its fingerprint carries no stream geometry at all.
        let d = corpus.clone().materialize().unwrap();
        let split = fewner_corpus::split_types(&d, (8, 3, 5), 1).unwrap();
        let err = Trainer::new()
            .resume(&mut other, &split.train, &enc, &m, &rk, &dir)
            .unwrap_err();
        assert!(
            matches!(err, Error::InvalidConfig(_)),
            "expected InvalidConfig resuming a stream snapshot as a view run, got {err:?}"
        );
        std::fs::remove_dir_all(dir).ok();
    });
}
