//! Properties of the meta-learning layer: deterministic adaptation,
//! monotone inner loops, and isolation between learners.

use fewner_core::{EpisodicLearner, Fewner, Maml, MetaConfig};
use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::{EpisodeSampler, Task};
use fewner_models::{encode_task, BackboneConfig, Conditioning, HeadKind, TokenEncoder};
use fewner_tensor::Graph;
use fewner_text::embed::EmbeddingSpec;
use fewner_util::Rng;

fn fixture() -> (TokenEncoder, Vec<Task>, fewner_corpus::TypeSplit) {
    let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&d, (8, 3, 5), 42).unwrap();
    let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
    let mut rng = Rng::new(5);
    let tasks: Vec<Task> = (0..3).map(|_| sampler.sample(&mut rng).unwrap()).collect();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    (enc, tasks, split)
}

fn bb(cond: Conditioning) -> BackboneConfig {
    BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        conditioning: cond,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    }
}

#[test]
fn adaptation_is_a_deterministic_function_of_support() {
    let (enc, tasks, _) = fixture();
    let learner = Fewner::new(bb(Conditioning::Film), &enc, MetaConfig::default()).unwrap();
    let a = learner.adapt_and_predict(&tasks[0], &enc).unwrap();
    let b = learner.adapt_and_predict(&tasks[0], &enc).unwrap();
    assert_eq!(a, b, "same θ + same support must give same predictions");
}

#[test]
fn inner_loop_loss_is_monotone_enough() {
    // Each inner step should not increase the support loss by much; the
    // cumulative trend over the trajectory must be downward.
    let (enc, tasks, _) = fixture();
    let learner = Fewner::new(bb(Conditioning::Film), &enc, MetaConfig::default()).unwrap();
    let tags = tasks[0].tag_set();
    let (support, _) = encode_task(&enc, &tasks[0]);

    let loss_with_phi = |phi_store: &fewner_tensor::ParamStore, phi_id| -> f32 {
        let g = Graph::eval();
        let phi = g.param(phi_store, phi_id);
        let mut rng = Rng::new(0);
        let l =
            learner
                .backbone
                .batch_loss(&g, &learner.theta, Some(phi), &support, &tags, &mut rng);
        g.value(l).scalar_value()
    };

    let mut prev = {
        let (ps, id) = learner.backbone.new_context();
        loss_with_phi(&ps, id)
    };
    for steps in [2usize, 4, 8] {
        let (ps, id, _) = learner.adapt_context(&support, &tags, steps).unwrap();
        let now = loss_with_phi(&ps, id);
        assert!(
            now <= prev + 0.05,
            "support loss increased markedly at {steps} steps: {prev} -> {now}"
        );
        prev = now;
    }
}

#[test]
fn two_learners_never_interfere() {
    // Meta-training learner A must not move learner B's parameters, even
    // though both bind stores into graphs concurrently built.
    let (enc, tasks, _) = fixture();
    let cfg = MetaConfig {
        meta_batch: 3,
        ..MetaConfig::default()
    };
    let mut a = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();
    let b = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();
    let b_before = b.theta.snapshot();
    a.meta_step(&tasks, &enc).unwrap();
    assert_eq!(b_before, b.theta.snapshot());
}

#[test]
fn fewner_and_maml_adapt_different_parameter_counts() {
    // The paper's efficiency claim in parameter terms: FEWNER's test-time
    // adaptation moves |φ| scalars, MAML moves the whole network.
    let (enc, tasks, _) = fixture();
    let cfg = MetaConfig::default();
    let fewner = Fewner::new(bb(Conditioning::Film), &enc, cfg.clone()).unwrap();
    let maml = Maml::new(bb(Conditioning::None), &enc, cfg).unwrap();
    let phi_scalars = fewner.backbone.config().phi_total();
    let theta_scalars = maml.theta.num_scalars();
    assert!(
        phi_scalars * 100 < theta_scalars,
        "φ ({phi_scalars}) should be ≪ θ ({theta_scalars})"
    );
    // And both still produce full predictions.
    assert_eq!(
        fewner.adapt_and_predict(&tasks[0], &enc).unwrap().len(),
        tasks[0].query.len()
    );
    assert_eq!(
        maml.adapt_and_predict(&tasks[0], &enc).unwrap().len(),
        tasks[0].query.len()
    );
}

#[test]
fn meta_step_moves_theta_in_the_descent_direction() {
    // One meta-step must reduce the (deterministic) query loss of the batch
    // it was computed on, for a small enough step. We verify the weaker,
    // robust property: repeating the same meta-batch several times trends
    // the loss down.
    let (enc, tasks, _) = fixture();
    let cfg = MetaConfig {
        meta_lr: 5e-3,
        meta_batch: 3,
        ..MetaConfig::default()
    };
    let mut learner = Fewner::new(bb(Conditioning::Film), &enc, cfg).unwrap();
    let mut losses = Vec::new();
    for _ in 0..12 {
        losses.push(learner.meta_step(&tasks, &enc).unwrap());
    }
    let first: f32 = losses[..4].iter().sum::<f32>() / 4.0;
    let last: f32 = losses[8..].iter().sum::<f32>() / 4.0;
    assert!(
        last < first,
        "repeated meta-steps on one batch should reduce its loss: {losses:?}"
    );
}
