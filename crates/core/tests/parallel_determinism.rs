//! The load-bearing guarantee of the parallel training engine: fanning
//! [`EpisodicLearner::task_grad`] over worker threads is **bitwise**
//! equivalent to the serial [`EpisodicLearner::meta_step`] — same θ after
//! the update, down to the last mantissa bit, at any thread count.
//!
//! The guarantee holds by construction (per-task RNG is a pure function of
//! the step seed and the task index; gradients always reduce on one thread
//! in task-index order); these tests pin it against regressions.

use fewner_core::{task_rng, EpisodicLearner, Fewner, MetaConfig, ParallelTrainer, TaskOutcome};
use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::{EpisodeSampler, Task};
use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};
use fewner_text::embed::EmbeddingSpec;
use fewner_util::Rng;
use proptest::prelude::*;

fn fixture(n_tasks: usize, task_seed: u64) -> (TokenEncoder, Vec<Task>) {
    let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&d, (8, 3, 5), 1).unwrap();
    let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
    let mut rng = Rng::new(task_seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|_| sampler.sample(&mut rng).unwrap())
        .collect();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    (enc, tasks)
}

fn learner(enc: &TokenEncoder, seed: u64) -> Fewner {
    let bb = BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        conditioning: Conditioning::Film,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    };
    let meta = MetaConfig {
        meta_batch: 4,
        inner_steps_train: 2,
        seed,
        ..MetaConfig::default()
    };
    Fewner::new(bb, enc, meta).unwrap()
}

/// θ as raw bits — `==` on floats would also pass for -0.0 vs 0.0.
fn theta_bits(l: &Fewner) -> Vec<u32> {
    l.theta
        .snapshot()
        .iter()
        .flat_map(|a| a.data().iter().map(|v| v.to_bits()))
        .collect()
}

#[test]
fn parallel_meta_step_is_bitwise_identical_to_serial() {
    let (enc, tasks) = fixture(4, 11);
    let mut serial = learner(&enc, 42);
    let serial_loss = serial.meta_step(&tasks, &enc).unwrap();
    let reference = theta_bits(&serial);

    for threads in [1usize, 2, 4] {
        let mut parallel = learner(&enc, 42);
        let loss = ParallelTrainer::new(threads)
            .meta_step(&mut parallel, &tasks, &enc)
            .unwrap();
        assert_eq!(
            serial_loss.to_bits(),
            loss.to_bits(),
            "loss must match bitwise at {threads} threads"
        );
        assert_eq!(
            reference,
            theta_bits(&parallel),
            "θ must match bitwise at {threads} threads"
        );
    }
}

#[test]
fn repeated_parallel_steps_stay_in_lockstep_with_serial() {
    // One step could match by luck; three consecutive steps also exercise
    // the step-seed sequence (each iteration draws a fresh seed from the
    // learner's RNG before the fan-out).
    let (enc, tasks) = fixture(3, 23);
    let mut serial = learner(&enc, 7);
    let mut parallel = learner(&enc, 7);
    let pool = ParallelTrainer::new(2);
    for step in 0..3 {
        serial.meta_step(&tasks, &enc).unwrap();
        pool.meta_step(&mut parallel, &tasks, &enc).unwrap();
        assert_eq!(
            theta_bits(&serial),
            theta_bits(&parallel),
            "θ diverged at step {step}"
        );
    }
}

#[test]
fn reduction_is_stable_under_out_of_order_arrival() {
    // Workers can finish in any order; the engine restores task-index order
    // before reducing. Simulate the worst case: outcomes computed in
    // reverse, then reassembled by index, must reduce to the same bits.
    let (enc, tasks) = fixture(4, 31);
    let l = learner(&enc, 3);
    let step_seed = 0xD1CE;

    let outcome = |index: usize| {
        let mut rng = task_rng(step_seed, index);
        l.task_grad(&tasks[index], &enc, &mut rng).unwrap()
    };
    let natural: Vec<TaskOutcome> = (0..tasks.len()).map(outcome).collect();
    let mut arrived: Vec<(usize, TaskOutcome)> =
        (0..tasks.len()).rev().map(|i| (i, outcome(i))).collect();
    arrived.sort_by_key(|(i, _)| *i);
    let reordered: Vec<TaskOutcome> = arrived.into_iter().map(|(_, o)| o).collect();

    let (loss_a, grads_a) = TaskOutcome::reduce(natural).unwrap();
    let (loss_b, grads_b) = TaskOutcome::reduce(reordered).unwrap();
    assert_eq!(loss_a.to_bits(), loss_b.to_bits());
    assert_eq!(
        grads_a.global_norm().to_bits(),
        grads_b.global_norm().to_bits()
    );
}

#[test]
fn task_rng_streams_are_independent_of_thread_chunking() {
    // The per-task RNG depends only on (step_seed, index), never on which
    // worker runs the task — spot-check that equal inputs give equal
    // streams and distinct indices give distinct streams.
    for index in 0..8 {
        let mut a = task_rng(99, index);
        let mut b = task_rng(99, index);
        for _ in 0..4 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
    let mut first = task_rng(99, 0);
    let mut second = task_rng(99, 1);
    assert_ne!(first.next_u64(), second.next_u64());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The decomposed API (step_seed → task_grad per index → reduce →
    /// apply_meta_grads) is exactly the provided `meta_step`, for any
    /// learner seed and batch size.
    #[test]
    fn decomposed_api_equals_meta_step(seed in 0u64..1000, n_tasks in 1usize..4) {
        let (enc, tasks) = fixture(n_tasks, 17);
        let mut composed = learner(&enc, seed);
        let mut reference = learner(&enc, seed);

        let step_seed = composed.step_seed();
        let outcomes: Vec<TaskOutcome> = tasks
            .iter()
            .enumerate()
            .map(|(index, task)| {
                let mut rng = task_rng(step_seed, index);
                composed.task_grad(task, &enc, &mut rng).unwrap()
            })
            .collect();
        let (loss, grads) = TaskOutcome::reduce(outcomes).unwrap();
        composed.apply_meta_grads(grads, tasks.len()).unwrap();

        let reference_loss = reference.meta_step(&tasks, &enc).unwrap();
        prop_assert_eq!(loss.to_bits(), reference_loss.to_bits());
        prop_assert_eq!(theta_bits(&composed), theta_bits(&reference));
    }
}
