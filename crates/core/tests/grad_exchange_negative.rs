//! Negative-path tests for the sharded gradient exchange (ISSUE 8,
//! satellite 3), mirroring `crates/util/tests/durable_negative.rs` at the
//! protocol level: a corrupt or torn partial-gradient frame must be caught
//! by the CRC and *retransmitted* — never silently applied, never allowed
//! to diverge the run by a single byte.
//!
//! Faults are injected through [`fault::with_plan`] (process-global, hence
//! the wrapper even where no arm fires) using the `@shard` scope so only
//! the targeted worker mangles its frames.

use fewner_core::{
    CoordinatorReport, EpisodicLearner, Fewner, MetaConfig, ShardCoordinator, TrainConfig, Trainer,
};
use fewner_corpus::{split_types, DatasetProfile, TypeSplit};
use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};
use fewner_obs::Tracer;
use fewner_text::embed::EmbeddingSpec;
use fewner_util::fault::{self, FaultPlan};
use fewner_util::Result;

const ITERS: usize = 5;

fn setup() -> (TypeSplit, TokenEncoder) {
    let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&d, (8, 3, 5), 1).unwrap();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    (split, enc)
}

fn meta() -> MetaConfig {
    MetaConfig {
        meta_batch: 2,
        inner_steps_train: 1,
        ..MetaConfig::default()
    }
}

fn learner(enc: &TokenEncoder) -> Fewner {
    let bb = BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        conditioning: Conditioning::Film,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    };
    Fewner::new(bb, enc, meta()).unwrap()
}

fn cfg() -> TrainConfig {
    TrainConfig::new(3, 1)
        .query_size(4)
        .seed(9)
        .threads(1)
        .iterations(ITERS)
}

fn state_of(l: &Fewner) -> String {
    l.export_state().expect("checkpointable").to_string()
}

/// A 2-shard run over real TCP; returns both workers' final states and the
/// coordinator's report.
fn two_shard_run(
    split: &TypeSplit,
    enc: &TokenEncoder,
) -> (Vec<Result<String>>, CoordinatorReport) {
    let m = meta();
    let coordinator = ShardCoordinator::bind("127.0.0.1:0", 2).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| coordinator.run(&Tracer::disabled()));
        let workers: Vec<_> = (0..2)
            .map(|shard| {
                let (addr, m) = (addr.as_str(), &m);
                scope.spawn(move || {
                    let schedule = cfg().shards(2).shard_id(shard).coordinator(addr);
                    let mut l = learner(enc);
                    Trainer::new()
                        .train(&mut l, &split.train, enc, m, &schedule)
                        .map(|_| state_of(&l))
                })
            })
            .collect();
        let states = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let report = driver.join().unwrap().expect("coordinator run failed");
        (states, report)
    })
}

/// The serial reference every faulted run must match byte for byte.
fn serial_reference(split: &TypeSplit, enc: &TokenEncoder) -> String {
    let mut l = learner(enc);
    Trainer::new()
        .train(&mut l, &split.train, enc, &meta(), &cfg())
        .unwrap();
    state_of(&l)
}

/// Runs the faulted 2-shard exchange and asserts the recovery invariants:
/// at least one retransmit, no deaths, every round applied, and both
/// workers bitwise identical to the serial run.
fn assert_recovers_bitwise(plan: &str) {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse(plan).unwrap(), || {
        let reference = serial_reference(&split, &enc);
        let (states, report) = two_shard_run(&split, &enc);
        assert!(
            report.retransmits >= 1,
            "`{plan}` must force a retransmit, report: {report:?}"
        );
        assert_eq!(report.deaths, 0, "a recoverable frame is not a death");
        assert_eq!(report.rounds, ITERS);
        assert_eq!(report.applied, ITERS, "no round may be lost to the fault");
        for (shard, state) in states.into_iter().enumerate() {
            assert_eq!(
                state.unwrap(),
                reference,
                "worker {shard} diverged after `{plan}`"
            );
        }
    });
}

#[test]
fn a_corrupt_partial_frame_is_retransmitted_not_applied() {
    // Shard 1's second partial goes out with a flipped payload byte: the
    // coordinator's CRC check must catch it and ask for a resend.
    assert_recovers_bitwise("shard_frame_corrupt:2@1");
}

#[test]
fn a_torn_partial_frame_is_retransmitted_not_applied() {
    // Half of shard 0's third partial is zeroed with the declared length
    // left honest — the boundary holds, so the frame is retransmittable.
    assert_recovers_bitwise("shard_frame_torn:3@0");
}

#[test]
fn repeated_frame_damage_across_shards_still_converges() {
    // Both workers damage a frame in different rounds; every one is
    // recovered independently.
    assert_recovers_bitwise("shard_frame_corrupt:1@0,shard_frame_torn:2@1");
}

#[test]
fn a_clean_exchange_never_retransmits() {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let reference = serial_reference(&split, &enc);
        let (states, report) = two_shard_run(&split, &enc);
        assert_eq!(report.retransmits, 0, "report: {report:?}");
        assert_eq!((report.deaths, report.skipped), (0, 0));
        for state in states {
            assert_eq!(state.unwrap(), reference);
        }
    });
}
