//! Observability acceptance suite: tracing must be a pure *observer*.
//!
//! The contract under test (ISSUE 4, tentpole): enabling the tracer must
//! not perturb any RNG stream or reduction order, so a traced run's
//! learner state and shipped checkpoints are **bitwise identical** to an
//! untraced run's — serial, multi-threaded, and across a kill-and-resume.
//!
//! Every training test runs inside [`fault::with_plan`] (even with an
//! empty plan) because the fault hook is process-global and parallel test
//! threads would otherwise steal each other's arms.

use std::path::PathBuf;
use std::sync::Arc;

use fewner_core::{Checkpoint, EpisodicLearner, Fewner, MetaConfig, TrainConfig, Trainer};
use fewner_corpus::{split_types, DatasetProfile, TypeSplit};
use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};
use fewner_obs::{Clock, ManualClock, MemorySink, TraceSummary, Tracer};
use fewner_text::embed::EmbeddingSpec;
use fewner_util::fault::{self, FaultPlan};

fn setup() -> (TypeSplit, TokenEncoder) {
    let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&d, (8, 3, 5), 1).unwrap();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    (split, enc)
}

fn meta() -> MetaConfig {
    MetaConfig {
        meta_batch: 2,
        inner_steps_train: 1,
        ..MetaConfig::default()
    }
}

fn learner(enc: &TokenEncoder) -> Fewner {
    let bb = BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        conditioning: Conditioning::Film,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    };
    Fewner::new(bb, enc, meta()).unwrap()
}

fn cfg(threads: usize) -> TrainConfig {
    TrainConfig::new(3, 1)
        .query_size(4)
        .seed(9)
        .threads(threads)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fewner-obs-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn state_of(l: &Fewner) -> String {
    l.export_state()
        .expect("Fewner is checkpointable")
        .to_string()
}

fn checkpoint_bytes(l: &Fewner, dir: &std::path::Path, name: &str) -> Vec<u8> {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(name);
    Checkpoint::capture(l).save(&path).unwrap();
    std::fs::read(&path).unwrap()
}

/// Acceptance: with tracing ON, training reaches bitwise-identical learner
/// state and checkpoints as with tracing OFF — at 1 thread and at 4.
#[test]
fn traced_training_is_bitwise_identical_to_untraced() {
    let (split, enc) = setup();
    for threads in [1usize, 4] {
        fault::with_plan(FaultPlan::parse("").unwrap(), || {
            let dir = tmp_dir(&format!("identical-{threads}"));
            std::fs::create_dir_all(&dir).unwrap();
            let m = meta();

            let mut plain = learner(&enc);
            Trainer::new()
                .train(
                    &mut plain,
                    &split.train,
                    &enc,
                    &m,
                    &cfg(threads).iterations(6),
                )
                .unwrap();

            let trace_path = dir.join("train.jsonl");
            let mut traced = learner(&enc);
            Trainer::new()
                .train(
                    &mut traced,
                    &split.train,
                    &enc,
                    &m,
                    &cfg(threads).iterations(6).trace(&trace_path),
                )
                .unwrap();

            assert_eq!(
                state_of(&plain),
                state_of(&traced),
                "tracing must not perturb θ, optimizer moments or RNG (threads = {threads})"
            );
            assert_eq!(
                checkpoint_bytes(&plain, &dir, "plain.json"),
                checkpoint_bytes(&traced, &dir, "traced.json"),
                "shipped checkpoints must stay byte-identical (threads = {threads})"
            );

            // The trace itself must exist, parse, and cover the run.
            let summary = TraceSummary::from_file(&trace_path).unwrap();
            let iters = summary
                .spans
                .get("train/iteration")
                .expect("iteration spans");
            assert_eq!(iters.count(), 6);
            assert_eq!(summary.counters.get("train/iterations"), Some(&6));
            assert_eq!(summary.counters.get("train/tasks"), Some(&12));
            assert!(summary.spans.contains_key("sampler/sample"));
            let hist_free = summary.render();
            assert!(hist_free.contains("train/iteration"), "render lists phases");
            std::fs::remove_dir_all(&dir).ok();
        });
    }
}

/// Acceptance: a traced kill-and-resume produces the same final state and
/// checkpoint bytes as an *untraced* straight run — the CI smoke job's
/// `cmp` in test form.
#[test]
fn traced_kill_and_resume_matches_untraced_straight_run() {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let dir = tmp_dir("resume");
        std::fs::create_dir_all(&dir).unwrap();
        let m = meta();

        // Untraced straight-through reference.
        let mut straight = learner(&enc);
        Trainer::new()
            .train(
                &mut straight,
                &split.train,
                &enc,
                &m,
                &cfg(2).iterations(12),
            )
            .unwrap();

        // Traced run killed at iteration 7 (snapshots at 3 and 6)…
        let mut killed = learner(&enc);
        let ck = cfg(2)
            .iterations(7)
            .checkpoint_every(3)
            .checkpoint_dir(&dir)
            .trace(dir.join("killed.jsonl"));
        Trainer::new()
            .train(&mut killed, &split.train, &enc, &m, &ck)
            .unwrap();
        drop(killed);

        // …resumed, still traced, into the full schedule.
        let resumed_trace = dir.join("resumed.jsonl");
        let mut resumed = learner(&enc);
        let rk = cfg(2)
            .iterations(12)
            .checkpoint_every(3)
            .checkpoint_dir(&dir)
            .trace(&resumed_trace);
        Trainer::new()
            .resume(&mut resumed, &split.train, &enc, &m, &rk, &dir)
            .unwrap();

        assert_eq!(
            state_of(&straight),
            state_of(&resumed),
            "traced resume must land on the untraced straight-run state"
        );
        assert_eq!(
            checkpoint_bytes(&straight, &dir, "straight.json"),
            checkpoint_bytes(&resumed, &dir, "resumed.json"),
            "final checkpoints must be byte-identical"
        );

        // The resumed trace records where it picked up.
        let summary = TraceSummary::from_file(&resumed_trace).unwrap();
        assert_eq!(summary.events.get("train/resume"), Some(&1));
        // Resumed from iteration 6: exactly 6 more iterations were traced.
        assert_eq!(summary.spans["train/iteration"].count(), 6);
        std::fs::remove_dir_all(&dir).ok();
    });
}

/// A manual clock drives deterministic span durations through a real
/// training run, and checkpoint spans appear exactly when snapshots are due.
#[test]
fn trainer_records_checkpoint_spans_and_phase_latencies() {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let dir = tmp_dir("spans");
        std::fs::create_dir_all(&dir).unwrap();

        // Arc<ManualClock> shim: span starts/ends read a clock we control.
        struct SharedClock(Arc<ManualClock>);
        impl Clock for SharedClock {
            fn now_ns(&self) -> u64 {
                self.0.now_ns()
            }
        }
        let clock = Arc::new(ManualClock::new());
        let sink = MemorySink::new();
        let tracer = Tracer::new(SharedClock(Arc::clone(&clock)), sink.clone());

        let m = meta();
        let mut l = learner(&enc);
        let schedule = cfg(1)
            .iterations(4)
            .checkpoint_every(2)
            .checkpoint_dir(&dir);
        fewner_core::Trainer::with_tracer(&tracer)
            .train(&mut l, &split.train, &enc, &m, &schedule)
            .unwrap();

        let summary = TraceSummary::parse(&sink.text()).unwrap();
        assert_eq!(summary.spans["train/iteration"].count(), 4);
        assert_eq!(
            summary.spans["train/checkpoint"].count(),
            2,
            "snapshots at iterations 2 and 4"
        );
        assert_eq!(summary.counters.get("train/checkpoints"), Some(&2));
        assert_eq!(summary.counters.get("sampler/tasks_drawn"), Some(&8));
        // The manual clock never advanced, so every span is zero-length —
        // percentile math must handle that degenerate (but exact) case.
        assert_eq!(summary.spans["train/iteration"].percentile_ns(99.0), 0);
        std::fs::remove_dir_all(&dir).ok();
    });
}
