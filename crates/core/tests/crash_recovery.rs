//! Crash-recovery acceptance suite: kill-and-resume determinism, corrupted
//! snapshot fall-back, and fault-injected checkpoint writes.
//!
//! Every test that trains runs inside [`fault::with_plan`] — even the ones
//! with no faults to inject — because the fault plan is process-global and
//! the tests here would otherwise steal each other's injected arms when the
//! test harness runs them on parallel threads.

use std::path::PathBuf;

use fewner_core::{
    Checkpoint, EpisodicLearner, Fewner, MetaConfig, ParallelTrainer, TaskOutcome, TrainConfig,
    Trainer, TrainingSnapshot,
};
use fewner_corpus::{split_types, DatasetProfile, TypeSplit};
use fewner_episode::{EpisodeSampler, Task};
use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};
use fewner_tensor::ParamGrads;
use fewner_text::embed::EmbeddingSpec;
use fewner_util::fault::{self, FaultPlan};
use fewner_util::{Error, Result, Rng};

fn setup() -> (TypeSplit, TokenEncoder) {
    let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&d, (8, 3, 5), 1).unwrap();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    (split, enc)
}

fn meta() -> MetaConfig {
    MetaConfig {
        meta_batch: 2,
        inner_steps_train: 1,
        ..MetaConfig::default()
    }
}

fn learner(enc: &TokenEncoder) -> Fewner {
    let bb = BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        conditioning: Conditioning::Film,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    };
    Fewner::new(bb, enc, meta()).unwrap()
}

fn cfg(threads: usize) -> TrainConfig {
    TrainConfig::new(3, 1)
        .query_size(4)
        .seed(9)
        .threads(threads)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fewner-crash-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The learner's complete exported training state as a comparable string.
fn state_of(l: &Fewner) -> String {
    l.export_state()
        .expect("Fewner is checkpointable")
        .to_string()
}

/// The θ_Meta checkpoint a run would ship, as on-disk bytes.
fn checkpoint_bytes(l: &Fewner, dir: &std::path::Path, name: &str) -> Vec<u8> {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(name);
    Checkpoint::capture(l).save(&path).unwrap();
    std::fs::read(&path).unwrap()
}

/// Acceptance (a): training killed at iteration k and resumed produces the
/// byte-identical final checkpoint of a straight-through run — serial and
/// at 4 threads.
#[test]
fn kill_and_resume_is_bitwise_identical_at_1_and_4_threads() {
    let (split, enc) = setup();
    for threads in [1usize, 4] {
        fault::with_plan(FaultPlan::parse("").unwrap(), || {
            let dir = tmp_dir(&format!("resume-{threads}"));
            let m = meta();

            // Straight-through reference: 12 iterations, no checkpoints.
            let mut straight = learner(&enc);
            Trainer::new()
                .train(
                    &mut straight,
                    &split.train,
                    &enc,
                    &m,
                    &cfg(threads).iterations(12),
                )
                .unwrap();

            // "Killed" run: stops after 7 iterations with snapshots at 3
            // and 6 — exactly what a kill at iteration 7 leaves on disk.
            let mut killed = learner(&enc);
            let ck = cfg(threads)
                .iterations(7)
                .checkpoint_every(3)
                .checkpoint_dir(&dir);
            Trainer::new()
                .train(&mut killed, &split.train, &enc, &m, &ck)
                .unwrap();
            drop(killed); // the process is gone; only the snapshots survive

            // Resume into the full 12-iteration schedule.
            let mut resumed = learner(&enc);
            let rk = cfg(threads)
                .iterations(12)
                .checkpoint_every(3)
                .checkpoint_dir(&dir);
            let log = Trainer::new()
                .resume(&mut resumed, &split.train, &enc, &m, &rk, &dir)
                .unwrap();

            assert_eq!(log.losses.len(), 12, "full loss history is restored");
            assert_eq!(
                state_of(&straight),
                state_of(&resumed),
                "θ, optimizer moments and RNG must all match (threads = {threads})"
            );
            assert_eq!(
                checkpoint_bytes(&straight, &dir, "straight.json"),
                checkpoint_bytes(&resumed, &dir, "resumed.json"),
                "final checkpoint files must be byte-identical (threads = {threads})"
            );
            std::fs::remove_dir_all(dir).ok();
        });
    }
}

/// Acceptance (b): a truncated or bit-flipped snapshot is rejected with a
/// typed error — no panic — and resume falls back to the previous rolling
/// snapshot, still converging on the bitwise-identical final state.
#[test]
fn corrupted_newest_snapshot_falls_back_to_its_predecessor() {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let dir = tmp_dir("corrupt");
        let m = meta();

        let mut straight = learner(&enc);
        Trainer::new()
            .train(
                &mut straight,
                &split.train,
                &enc,
                &m,
                &cfg(1).iterations(12),
            )
            .unwrap();

        let mut killed = learner(&enc);
        let ck = cfg(1)
            .iterations(7)
            .checkpoint_every(3)
            .checkpoint_dir(&dir);
        Trainer::new()
            .train(&mut killed, &split.train, &enc, &m, &ck)
            .unwrap();

        // Bit-flip the newest snapshot (snap-6) in the middle of θ.
        let newest = dir.join("snap-00000006.fsnap");
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        assert!(
            matches!(TrainingSnapshot::load(&newest), Err(Error::Io { .. })),
            "a bit-flipped snapshot must fail CRC verification with Error::Io"
        );

        // Resume silently falls back to snap-3 and recomputes the rest.
        let mut resumed = learner(&enc);
        let rk = cfg(1)
            .iterations(12)
            .checkpoint_every(3)
            .checkpoint_dir(&dir);
        Trainer::new()
            .resume(&mut resumed, &split.train, &enc, &m, &rk, &dir)
            .unwrap();
        assert_eq!(
            state_of(&straight),
            state_of(&resumed),
            "resuming from the older snapshot must still reach the same state"
        );
        std::fs::remove_dir_all(dir).ok();
    });
}

/// Acceptance (c): a crash injected *during* a snapshot write (a torn
/// write: half the frame lands at the final path) aborts the run but never
/// leaves it unresumable — the previous rolling snapshot is intact.
#[test]
fn torn_snapshot_write_never_leaves_the_run_unresumable() {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("ckpt_truncate:2").unwrap(), || {
        let dir = tmp_dir("torn");
        let m = meta();

        // The 2nd durable write (snap-6) is torn mid-write; the run aborts
        // rather than pretending the checkpoint landed.
        let mut killed = learner(&enc);
        let ck = cfg(1)
            .iterations(7)
            .checkpoint_every(3)
            .checkpoint_dir(&dir);
        let err = Trainer::new()
            .train(&mut killed, &split.train, &enc, &m, &ck)
            .unwrap_err();
        assert!(
            matches!(err, Error::Io { .. }),
            "a torn snapshot write must surface as Error::Io, got {err:?}"
        );
        assert!(
            TrainingSnapshot::load(dir.join("snap-00000006.fsnap")).is_err(),
            "the torn file must not verify"
        );

        // The fault arm is exhausted, so resume's own writes succeed: it
        // falls back to snap-3 and trains through to the end.
        let mut resumed = learner(&enc);
        let rk = cfg(1)
            .iterations(12)
            .checkpoint_every(3)
            .checkpoint_dir(&dir);
        Trainer::new()
            .resume(&mut resumed, &split.train, &enc, &m, &rk, &dir)
            .unwrap();

        let mut straight = learner(&enc);
        Trainer::new()
            .train(
                &mut straight,
                &split.train,
                &enc,
                &m,
                &cfg(1).iterations(12),
            )
            .unwrap();
        assert_eq!(
            state_of(&straight),
            state_of(&resumed),
            "recovery from a torn write must reach the straight-through state"
        );
        std::fs::remove_dir_all(dir).ok();
    });
}

/// An injected task-gradient error takes the skip path (and only that
/// path): the iteration is counted as skipped, θ is untouched by it, and
/// training carries on.
#[test]
fn injected_task_grad_error_exercises_the_skip_path() {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("task_grad_err:1").unwrap(), || {
        let m = meta();
        let mut l = learner(&enc);
        let log = Trainer::new()
            .train(&mut l, &split.train, &enc, &m, &cfg(1).iterations(4))
            .unwrap();
        assert_eq!(log.skipped, 1, "exactly the faulted iteration is skipped");
        assert_eq!(log.losses.len(), 3, "the other iterations complete");
    });
}

/// Satellite: a panicking `task_grad` inside the parallel fan-out surfaces
/// as `Error::WorkerPanic` — the trainer must not unwind or deadlock.
#[test]
fn panicking_worker_surfaces_as_worker_panic() {
    struct Panicky;
    impl EpisodicLearner for Panicky {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn task_grad(&self, _t: &Task, _e: &TokenEncoder, _r: &mut Rng) -> Result<TaskOutcome> {
            panic!("worker goes down mid-task");
        }
        fn apply_meta_grads(&mut self, _g: ParamGrads, _n: usize) -> Result<()> {
            Ok(())
        }
        fn adapt_and_predict(&self, _t: &Task, _e: &TokenEncoder) -> Result<Vec<Vec<usize>>> {
            Ok(vec![])
        }
    }

    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let mut rng = Rng::new(11);
        let tasks: Vec<Task> = (0..4).map(|_| sampler.sample(&mut rng).unwrap()).collect();
        let mut l = Panicky;
        let err = ParallelTrainer::new(4)
            .meta_step(&mut l, &tasks, &enc)
            .unwrap_err();
        assert!(
            matches!(err, Error::WorkerPanic { .. }),
            "expected WorkerPanic, got {err:?}"
        );
    });
}

/// Resuming under a different schedule is refused: the snapshot's run
/// fingerprint pins seed and task shape (but not the iteration budget).
#[test]
fn resume_refuses_a_mismatched_run_fingerprint() {
    let (split, enc) = setup();
    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        let dir = tmp_dir("fingerprint");
        let m = meta();
        let mut l = learner(&enc);
        let ck = cfg(1)
            .iterations(3)
            .checkpoint_every(3)
            .checkpoint_dir(&dir);
        Trainer::new()
            .train(&mut l, &split.train, &enc, &m, &ck)
            .unwrap();

        let mut other = learner(&enc);
        let wrong_seed = cfg(1).iterations(6).seed(1234);
        let err = Trainer::new()
            .resume(&mut other, &split.train, &enc, &m, &wrong_seed, &dir)
            .unwrap_err();
        assert!(
            matches!(err, Error::InvalidConfig(_)),
            "expected InvalidConfig on fingerprint mismatch, got {err:?}"
        );

        // An empty directory is a precise Io error, not a panic.
        let empty = tmp_dir("fingerprint-empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = Trainer::new()
            .resume(&mut other, &split.train, &enc, &m, &cfg(1), &empty)
            .unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
        std::fs::remove_dir_all(dir).ok();
        std::fs::remove_dir_all(empty).ok();
    });
}
