//! Sharded-training acceptance suite (ISSUE 8 tentpole): serial, threaded
//! and 2/4-shard runs must leave bitwise-identical learner state; a worker
//! death mid-run is absorbed by reassignment without changing a single
//! byte; and a killed sharded run resumes to the same bytes as a
//! straight-through one.
//!
//! Every training test runs inside [`fault::with_plan`] — even the ones
//! with no faults to inject — because the fault plan is process-global and
//! parallel tests would otherwise steal each other's injected arms.
//!
//! The workers here are threads (each with its own learner and
//! [`Trainer`]), exchanging gradients with an in-process coordinator over
//! real TCP — the same wire protocol `fewner train-sharded` drives across
//! processes. Death is injected as a connection drop: the process-abort arm
//! (`shard_die`) would take the whole test harness down and is exercised by
//! the CI smoke job instead.

use std::path::PathBuf;

use fewner_core::{
    Checkpoint, CoordinatorReport, EpisodicLearner, Fewner, MetaConfig, ShardCoordinator,
    TrainConfig, Trainer,
};
use fewner_corpus::{split_types, DatasetProfile, TypeSplit};
use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};
use fewner_obs::Tracer;
use fewner_text::embed::EmbeddingSpec;
use fewner_util::fault::{self, FaultPlan};
use fewner_util::{Error, Result};

fn setup() -> (TypeSplit, TokenEncoder) {
    let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&d, (8, 3, 5), 1).unwrap();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    (split, enc)
}

fn meta() -> MetaConfig {
    MetaConfig {
        // 4 tasks per meta-batch so the reduce tree splits across up to
        // 4 shards.
        meta_batch: 4,
        inner_steps_train: 1,
        ..MetaConfig::default()
    }
}

fn learner(enc: &TokenEncoder) -> Fewner {
    let bb = BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: 8,
        slot_ctx_dim: 4,
        conditioning: Conditioning::Film,
        dropout: 0.1,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways: 3 },
    };
    Fewner::new(bb, enc, meta()).unwrap()
}

fn cfg(iterations: usize) -> TrainConfig {
    TrainConfig::new(3, 1)
        .query_size(4)
        .seed(9)
        .threads(1)
        .iterations(iterations)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fewner-shard-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The learner's complete exported training state as a comparable string.
fn state_of(l: &Fewner) -> String {
    l.export_state()
        .expect("Fewner is checkpointable")
        .to_string()
}

/// The θ_Meta checkpoint a run would ship, as on-disk bytes.
fn checkpoint_bytes(l: &Fewner, dir: &std::path::Path, name: &str) -> Vec<u8> {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(name);
    Checkpoint::capture(l).save(&path).unwrap();
    std::fs::read(&path).unwrap()
}

/// Runs a full sharded round-trip in-process: a coordinator thread plus
/// `shards` worker threads, each executing `work(shard_id)` — which builds
/// its own schedule via [`topology`]. Returns every worker's result (shard
/// order) and the coordinator's report.
fn sharded<T, F>(shards: usize, work: F) -> (Vec<Result<T>>, CoordinatorReport)
where
    T: Send,
    F: Fn(usize, &str) -> Result<T> + Sync,
{
    let coordinator = ShardCoordinator::bind("127.0.0.1:0", shards).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| coordinator.run(&Tracer::disabled()));
        let workers: Vec<_> = (0..shards)
            .map(|shard| {
                let (addr, work) = (addr.as_str(), &work);
                scope.spawn(move || work(shard, addr))
            })
            .collect();
        let results = workers
            .into_iter()
            .map(|w| w.join().expect("worker thread panicked"))
            .collect();
        let report = driver
            .join()
            .expect("coordinator thread panicked")
            .expect("coordinator run failed");
        (results, report)
    })
}

/// Wires one worker's shard topology into a training schedule.
fn topology(schedule: TrainConfig, shards: usize, shard: usize, addr: &str) -> TrainConfig {
    schedule.shards(shards).shard_id(shard).coordinator(addr)
}

#[test]
fn sharded_runs_match_serial_and_threaded_bitwise() {
    let (split, enc) = setup();
    let m = meta();
    const ITERS: usize = 6;

    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        // Serial and threaded references.
        let mut serial = learner(&enc);
        Trainer::new()
            .train(&mut serial, &split.train, &enc, &m, &cfg(ITERS))
            .unwrap();
        let reference = state_of(&serial);

        let mut threaded = learner(&enc);
        Trainer::new()
            .train(
                &mut threaded,
                &split.train,
                &enc,
                &m,
                &cfg(ITERS).threads(2),
            )
            .unwrap();
        assert_eq!(
            state_of(&threaded),
            reference,
            "threaded run diverged from serial"
        );

        for shards in [2usize, 4] {
            let (states, report) = sharded(shards, |shard, addr| {
                let mut l = learner(&enc);
                let schedule = topology(cfg(ITERS), shards, shard, addr);
                Trainer::new()
                    .train(&mut l, &split.train, &enc, &m, &schedule)
                    .map(|_| state_of(&l))
            });
            assert_eq!(report.rounds, ITERS, "one reduce round per iteration");
            assert_eq!(report.applied, ITERS);
            assert_eq!((report.deaths, report.skipped), (0, 0));
            for (shard, state) in states.into_iter().enumerate() {
                assert_eq!(
                    state.unwrap(),
                    reference,
                    "{shards}-shard worker {shard} diverged from serial"
                );
            }
        }

        // The shipped θ_Meta checkpoint is byte-identical too.
        let dir = tmp_dir("ckpt-eq");
        let serial_bytes = checkpoint_bytes(&serial, &dir, "serial.fsnap");
        let threaded_bytes = checkpoint_bytes(&threaded, &dir, "threaded.fsnap");
        assert_eq!(serial_bytes, threaded_bytes);
        std::fs::remove_dir_all(&dir).ok();
    });
}

#[test]
fn a_dead_worker_is_reassigned_without_changing_a_byte() {
    let (split, enc) = setup();
    let m = meta();
    const ITERS: usize = 6;

    // Shard 1's connection drops while sending its round-2 partial: the
    // coordinator must reassign its task ranges to shard 0 and the run
    // must finish with exactly the serial bytes.
    fault::with_plan(FaultPlan::parse("shard_conn_drop:2@1").unwrap(), || {
        let mut serial = learner(&enc);
        Trainer::new()
            .train(&mut serial, &split.train, &enc, &m, &cfg(ITERS))
            .unwrap();
        let reference = state_of(&serial);

        let (mut states, report) = sharded(2, |shard, addr| {
            let mut l = learner(&enc);
            let schedule = topology(cfg(ITERS), 2, shard, addr);
            Trainer::new()
                .train(&mut l, &split.train, &enc, &m, &schedule)
                .map(|_| state_of(&l))
        });
        assert_eq!(report.deaths, 1, "shard 1 must be seen dying");
        assert!(report.reassignments >= 1, "its ranges must be reassigned");
        assert_eq!(report.rounds, ITERS, "the run still completes every round");
        assert_eq!(report.applied, ITERS);

        let survivor = states.remove(0).expect("shard 0 survives");
        assert_eq!(survivor, reference, "survivor diverged from serial");
        assert!(
            states.remove(0).is_err(),
            "shard 1's session must error out"
        );
    });
}

#[test]
fn a_killed_sharded_run_resumes_to_the_serial_bytes() {
    let (split, enc) = setup();
    let m = meta();
    let dir = tmp_dir("resume");

    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        // Straight-through serial reference: 8 iterations, no checkpoints.
        let mut reference = learner(&enc);
        Trainer::new()
            .train(&mut reference, &split.train, &enc, &m, &cfg(8))
            .unwrap();

        // "Killed" 2-shard run: stops after 5 iterations with snapshots
        // every 2. Both workers snapshot into the same directory — the
        // shard-scoped file names keep them apart.
        let (states, _) = sharded(2, |shard, addr| {
            let base = cfg(5).checkpoint_every(2).checkpoint_dir(&dir);
            let schedule = topology(base, 2, shard, addr);
            let mut l = learner(&enc);
            Trainer::new()
                .train(&mut l, &split.train, &enc, &m, &schedule)
                .map(|_| ())
        });
        states.into_iter().for_each(|s| s.unwrap());
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        for shard in ["snap-s00-", "snap-s01-"] {
            assert!(
                names.iter().any(|n| n.starts_with(shard)),
                "missing {shard}* snapshot in {names:?}"
            );
        }

        // Resumed 2-shard run: picks up at iteration 4 and finishes 8.
        let (states, report) = sharded(2, |shard, addr| {
            let base = cfg(8).checkpoint_every(2).checkpoint_dir(&dir);
            let schedule = topology(base, 2, shard, addr);
            let mut l = learner(&enc);
            Trainer::new()
                .resume(&mut l, &split.train, &enc, &m, &schedule, &dir)
                .map(|_| state_of(&l))
        });
        assert_eq!(report.deaths, 0);
        for (shard, state) in states.into_iter().enumerate() {
            assert_eq!(
                state.unwrap(),
                state_of(&reference),
                "resumed worker {shard} diverged from the straight-through run"
            );
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_different_shard_topology() {
    let (split, enc) = setup();
    let m = meta();
    let dir = tmp_dir("topology");

    fault::with_plan(FaultPlan::parse("").unwrap(), || {
        // Seed the directory with snapshots from an *unsharded* run.
        let mut l = learner(&enc);
        let schedule = cfg(3).checkpoint_every(1).checkpoint_dir(&dir);
        Trainer::new()
            .train(&mut l, &split.train, &enc, &m, &schedule)
            .unwrap();

        // Resuming as one worker of a 2-shard layout must be refused by
        // the fingerprint check — before any coordinator is even dialled
        // (the address below is not listening).
        let mut other = learner(&enc);
        let sharded_schedule = cfg(6)
            .checkpoint_every(1)
            .checkpoint_dir(&dir)
            .shards(2)
            .shard_id(0)
            .coordinator("127.0.0.1:9");
        let err = Trainer::new()
            .resume(&mut other, &split.train, &enc, &m, &sharded_schedule, &dir)
            .unwrap_err();
        assert!(
            matches!(err, Error::InvalidConfig(_)),
            "expected InvalidConfig, got {err}"
        );
        assert!(
            err.to_string().contains("different run configuration"),
            "the refusal must name the mismatch: {err}"
        );
    });
    std::fs::remove_dir_all(&dir).ok();
}
