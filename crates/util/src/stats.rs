//! Episode statistics as defined in the paper (§4.1.1).
//!
//! Every table cell in the evaluation is "the average of the F1 scores over
//! all the episodes … mean ± 1.96 × standard deviation / √(sample size)".
//! [`MeanCi`] is exactly that summary; [`OnlineStats`] accumulates it in one
//! pass (Welford's algorithm) so harnesses never need to buffer per-episode
//! scores.

/// Mean with a 95 % normal-approximation confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// 1.96 · σ / √n (zero when n < 2).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl MeanCi {
    /// Formats the statistic the way the paper prints table cells, in
    /// percentage points: `23.74 ± 0.65%`.
    pub fn as_percent(&self) -> String {
        format!("{:.2} ± {:.2}%", self.mean * 100.0, self.ci95 * 100.0)
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.ci95, self.n)
    }
}

/// Arithmetic mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Computes mean ± 1.96·σ/√n over a slice of per-episode scores.
///
/// Uses the sample (n−1) standard deviation, matching common evaluation
/// scripts for episodic few-shot benchmarks.
pub fn ci95(xs: &[f64]) -> MeanCi {
    let mut acc = OnlineStats::new();
    for &x in xs {
        acc.push(x);
    }
    acc.summary()
}

/// Single-pass mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: usize,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Current sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with Bessel's correction (0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The paper's summary statistic.
    pub fn summary(&self) -> MeanCi {
        let ci = if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        };
        MeanCi {
            mean: self.mean,
            ci95: ci,
            n: self.n,
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(ci95(&[]).n, 0);
    }

    #[test]
    fn mean_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ci_matches_hand_computation() {
        // xs = [0.1, 0.2, 0.3]: mean 0.2, sd 0.1, ci = 1.96*0.1/sqrt(3).
        let s = ci95(&[0.1, 0.2, 0.3]);
        assert!((s.mean - 0.2).abs() < 1e-12);
        let expected = 1.96 * 0.1 / 3f64.sqrt();
        assert!((s.ci95 - expected).abs() < 1e-9, "{} vs {expected}", s.ci95);
    }

    #[test]
    fn single_sample_has_zero_ci() {
        let s = ci95(&[0.5]);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.mean, 0.5);
    }

    #[test]
    fn online_matches_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let batch = ci95(&xs);
        let mut online = OnlineStats::new();
        xs.iter().for_each(|&x| online.push(x));
        let o = online.summary();
        assert!((batch.mean - o.mean).abs() < 1e-12);
        assert!((batch.ci95 - o.ci95).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let (a, b) = xs.split_at(123);
        let mut s1 = OnlineStats::new();
        a.iter().for_each(|&x| s1.push(x));
        let mut s2 = OnlineStats::new();
        b.iter().for_each(|&x| s2.push(x));
        s1.merge(&s2);
        let full = ci95(&xs);
        let merged = s1.summary();
        assert!((full.mean - merged.mean).abs() < 1e-10);
        assert!((full.ci95 - merged.ci95).abs() < 1e-10);
    }

    #[test]
    fn percent_formatting_matches_paper_style() {
        let s = MeanCi {
            mean: 0.2374,
            ci95: 0.0065,
            n: 1000,
        };
        assert_eq!(s.as_percent(), "23.74 ± 0.65%");
    }
}
