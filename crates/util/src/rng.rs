//! Portable, seedable randomness.
//!
//! Everything in the reproduction that involves chance — corpus synthesis,
//! greedy episode sampling, parameter initialisation, dropout masks, task
//! order — flows through [`Rng`], a xoshiro256\*\* generator seeded via
//! SplitMix64. Both algorithms are public domain (Blackman & Vigna) and are
//! implemented here in ~60 lines so that results are bit-identical on every
//! platform and never drift with a dependency upgrade.
//!
//! The paper fixes the evaluation seed so that all methods are scored on the
//! *same* 1000 tasks (§4.2.1); [`Rng::fork`] provides cheap independent
//! streams for that purpose without consuming state from the parent.

use crate::error::{Error, Result};
use crate::json::{FromJson, Json, ToJson};

/// A xoshiro256\*\* pseudo-random number generator.
///
/// Not cryptographically secure; statistically excellent and extremely fast,
/// which is what simulation workloads need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created with the same seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The raw 256-bit generator state — the stream position — for
    /// training snapshots. A generator rebuilt with [`Rng::from_state`]
    /// continues the stream exactly where this one stands.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`Rng::state`].
    ///
    /// Note this is *not* [`Rng::new`]: the argument is the raw state, not
    /// a seed, so the returned generator resumes mid-stream.
    pub fn from_state(s: [u64; 4]) -> Rng {
        Rng { s }
    }

    /// Derives an independent child generator, leaving `self`'s future
    /// stream unchanged except for the single draw used to key the child.
    ///
    /// Mixing in `stream` lets callers derive many labelled sub-streams
    /// (e.g. one per evaluation episode) from one parent deterministically.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        self.f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.f32()
    }

    /// Standard normal deviate (Box–Muller; one value per call).
    pub fn normal(&mut self) -> f32 {
        // Rejection-free polar-less form: u1 in (0,1] avoids ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift bounded rejection method (no modulo bias).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "Rng::below called with n = 0");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly chooses a reference from a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    ///
    /// Floyd's algorithm followed by a shuffle; O(k) expected time.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        self.shuffle(&mut chosen);
        chosen
    }

    /// Draws an index `i` with probability `weights[i] / Σ weights`.
    ///
    /// Weights must be non-negative with a positive sum.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weighted sampling needs a positive total");
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl ToJson for Rng {
    /// Serialises the stream position. The state words are full 64-bit
    /// values, beyond JSON's exact-integer range, so they are written as
    /// hex strings.
    fn to_json(&self) -> Json {
        Json::Arr(
            self.s
                .iter()
                .map(|w| Json::Str(format!("{w:016x}")))
                .collect(),
        )
    }
}

impl FromJson for Rng {
    fn from_json(json: &Json) -> Result<Rng> {
        let words = json.as_arr()?;
        if words.len() != 4 {
            return Err(Error::Serde(format!(
                "Rng state must have 4 words, got {}",
                words.len()
            )));
        }
        let mut s = [0u64; 4];
        for (slot, word) in s.iter_mut().zip(words) {
            *slot = u64::from_str_radix(word.as_str()?, 16)
                .map_err(|_| Error::Serde(format!("bad Rng state word {word:?}")))?;
        }
        Ok(Rng { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Different stream ids give different children.
        let mut p = Rng::new(7);
        let mut d1 = p.fork(3);
        let mut p2 = Rng::new(7);
        let mut d2 = p2.fork(4);
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::new(9);
        let n = 10;
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.below(n);
            assert!(v < n);
            counts[v] += 1;
        }
        for &c in &counts {
            // Expect 10_000 ± a generous tolerance.
            assert!((8_500..11_500).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::new(13);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = rng.normal() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_complete() {
        let mut rng = Rng::new(21);
        for _ in 0..200 {
            let n = rng.range(1, 30);
            let k = rng.range(0, n + 1);
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {s:?}");
            assert!(s.iter().all(|&i| i < n));
        }
        // k == n must be a permutation.
        let s = rng.sample_indices(8, 8);
        let mut sorted = s;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(31);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = Rng::new(41);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut a = Rng::new(99);
        for _ in 0..37 {
            a.next_u64();
        }
        // Through the raw state…
        let mut b = Rng::from_state(a.state());
        // …and through the JSON wire format.
        let json = a.to_json().to_string();
        let mut c = Rng::from_json(&crate::json::Json::parse(&json).unwrap()).unwrap();
        for _ in 0..100 {
            let expected = a.next_u64();
            assert_eq!(b.next_u64(), expected);
            assert_eq!(c.next_u64(), expected);
        }
    }

    #[test]
    fn malformed_state_json_is_rejected() {
        let short = crate::json::Json::parse(r#"["0","0","0"]"#).unwrap();
        assert!(Rng::from_json(&short).is_err());
        let junk = crate::json::Json::parse(r#"["zz","0","0","0"]"#).unwrap();
        assert!(Rng::from_json(&junk).is_err());
    }

    #[test]
    fn known_reference_values_never_change() {
        // Guards reproducibility: these values must stay fixed forever.
        let mut rng = Rng::new(0xDEADBEEF);
        let observed: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Rng::new(0xDEADBEEF);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(observed, again);
    }
}
