//! Durable, integrity-checked file writes.
//!
//! Checkpoints and training snapshots are the only thing standing between a
//! multi-hour meta-training run and a `kill -9`, so they are written with
//! the classic crash-safe recipe:
//!
//! 1. the payload is framed with a versioned header carrying its length and
//!    a CRC-32 ([`crate::crc32`]),
//! 2. the frame is written to a temporary file *in the same directory*,
//! 3. the temporary file is fsynced,
//! 4. it is atomically renamed over the final path,
//! 5. the directory is fsynced (best effort) so the rename itself survives
//!    a power cut.
//!
//! A reader therefore sees either the complete previous file or the
//! complete new one — never a torn mixture — and [`read_verified`] rejects
//! any truncated or bit-flipped file with a precise [`Error::Io`] instead
//! of handing garbage to the JSON parser.
//!
//! The frame is plain text followed by the payload bytes:
//!
//! ```text
//! FEWNERD1 <crc32-as-8-hex-digits> <payload-length-in-bytes>\n<payload>
//! ```
//!
//! All writes consult the fault-injection hooks ([`crate::fault`]) so the
//! crash-recovery suite can simulate failed, torn, and silently corrupted
//! writes.

use std::fs;
use std::io::{Read, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::error::{Error, Result};
use crate::fault::{self, WriteFault};

/// Magic + format version prefix of every durable file.
pub const MAGIC: &str = "FEWNERD1";

fn io_err(path: &Path, detail: impl std::fmt::Display) -> Error {
    Error::Io {
        path: path.display().to_string(),
        detail: detail.to_string(),
    }
}

/// Frames `payload` with the versioned header and CRC.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let header = format!("{MAGIC} {:08x} {}\n", crc32(payload), payload.len());
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Atomically writes `payload` (framed, checksummed) to `path`.
pub fn write_atomic(path: impl AsRef<Path>, payload: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let mut framed = frame(payload);

    match fault::durable_write_fault() {
        Some(WriteFault::Fail) => {
            return Err(io_err(path, "injected fault: write failed"));
        }
        Some(WriteFault::Truncate) => {
            // Simulate a crash mid-write on a filesystem without atomic
            // replace: half a frame lands at the final path.
            fs::write(path, &framed[..framed.len() / 2]).map_err(|e| io_err(path, e))?;
            return Err(io_err(path, "injected fault: torn write"));
        }
        Some(WriteFault::Corrupt) => {
            // Silent bit rot: flip one payload byte *after* the CRC was
            // computed, and report success.
            let header_len = framed.len() - payload.len();
            let mid = header_len + payload.len() / 2;
            framed[mid] ^= 0x01;
        }
        None => {}
    }

    // Append `.tmp` to the whole file name (never `with_extension`, which
    // would collapse `trace.jsonl.s0` and `trace.jsonl.s1` onto the same
    // `trace.jsonl.tmp` — concurrent writers of sibling files would then
    // race each other's renames).
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.write_all(&framed).map_err(|e| io_err(&tmp, e))?;
    file.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    // Persist the rename itself. Directory fsync is not portable, so this
    // is best effort (it works on Linux, which is where long runs live).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads `path`, verifies the header and CRC, and returns the payload.
pub fn read_verified(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    let path = path.as_ref();
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| io_err(path, "not a FEWNER durable file (no header line)"))?;
    let header =
        std::str::from_utf8(&bytes[..newline]).map_err(|_| io_err(path, "header is not UTF-8"))?;
    let mut parts = header.split(' ');
    let magic = parts.next().unwrap_or("");
    if magic != MAGIC {
        return Err(io_err(
            path,
            format!("bad magic `{magic}` (expected `{MAGIC}`)"),
        ));
    }
    let stored_crc = parts
        .next()
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| io_err(path, "header is missing the CRC field"))?;
    let stored_len: usize = parts
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or_else(|| io_err(path, "header is missing the length field"))?;
    let payload = &bytes[newline + 1..];
    if payload.len() != stored_len {
        return Err(io_err(
            path,
            format!(
                "truncated or padded: header says {stored_len} payload bytes, found {}",
                payload.len()
            ),
        ));
    }
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(io_err(
            path,
            format!("CRC mismatch: stored {stored_crc:08x}, computed {computed:08x}"),
        ));
    }
    Ok(payload.to_vec())
}

/// [`read_verified`] for text payloads.
pub fn read_verified_string(path: impl AsRef<Path>) -> Result<String> {
    let path = path.as_ref();
    String::from_utf8(read_verified(path)?).map_err(|_| io_err(path, "payload is not valid UTF-8"))
}

/// The longest header line [`read_wire_frame`] will scan for before
/// declaring the stream garbled (`FEWNERD1 <8 hex> <len>\n` is ≤ 32 bytes
/// for any plausible length).
const MAX_WIRE_HEADER: usize = 64;

/// One read from a FEWNERD1-framed byte stream (the sharded-training
/// gradient exchange). Unlike [`read_verified`] — where a damaged file is
/// simply an error — a stream reader must distinguish *recoverable*
/// damage (the frame boundary is intact, so the peer can retransmit) from
/// damage that kills the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// A complete, CRC-verified payload.
    Frame(Vec<u8>),
    /// Clean end of stream before any header byte: the peer closed the
    /// connection between frames.
    Eof,
    /// The stream ended mid-header or mid-payload: the peer died while
    /// sending. The connection is unusable.
    Truncated(String),
    /// The declared length arrived but the CRC does not match: the frame
    /// boundary is intact, so the reader may request a retransmit.
    Corrupt(String),
    /// The header is unparseable (bad magic, missing fields, absurd
    /// length): frame alignment is lost and the connection is unusable.
    Garbled(String),
}

fn wire_err(detail: impl std::fmt::Display) -> Error {
    Error::Io {
        path: "<wire>".to_string(),
        detail: detail.to_string(),
    }
}

/// Writes one framed, checksummed payload to a byte stream and flushes it.
pub fn write_wire_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    w.write_all(&frame(payload)).map_err(wire_err)?;
    w.flush().map_err(wire_err)
}

/// Reads one frame from a byte stream, classifying damage (see
/// [`WireFrame`]). `max_payload` caps the declared length so a hostile or
/// garbled header can never balloon memory; larger declarations are
/// `Garbled`, not trusted. `Err` is reserved for genuine I/O errors (which
/// also kill the connection).
pub fn read_wire_frame(r: &mut impl Read, max_payload: usize) -> Result<WireFrame> {
    // Header: byte-at-a-time until `\n`. Frames carry multi-KiB payloads,
    // so the ~30 single-byte reads are noise (and callers wrap sockets in
    // a BufReader when it matters).
    let mut header = Vec::with_capacity(32);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if header.is_empty() => return Ok(WireFrame::Eof),
            Ok(0) => {
                return Ok(WireFrame::Truncated(format!(
                    "stream ended after {} header bytes",
                    header.len()
                )));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                header.push(byte[0]);
                if header.len() > MAX_WIRE_HEADER {
                    return Ok(WireFrame::Garbled(
                        "no newline within the header budget".to_string(),
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(wire_err(e)),
        }
    }
    let Ok(header) = std::str::from_utf8(&header) else {
        return Ok(WireFrame::Garbled("header is not UTF-8".to_string()));
    };
    let mut parts = header.split(' ');
    let magic = parts.next().unwrap_or("");
    if magic != MAGIC {
        return Ok(WireFrame::Garbled(format!(
            "bad magic `{magic}` (expected `{MAGIC}`)"
        )));
    }
    let Some(stored_crc) = parts.next().and_then(|h| u32::from_str_radix(h, 16).ok()) else {
        return Ok(WireFrame::Garbled("header is missing the CRC field".into()));
    };
    let Some(stored_len) = parts.next().and_then(|l| l.parse::<usize>().ok()) else {
        return Ok(WireFrame::Garbled(
            "header is missing the length field".into(),
        ));
    };
    if stored_len > max_payload {
        return Ok(WireFrame::Garbled(format!(
            "declared payload of {stored_len} bytes exceeds the {max_payload}-byte cap"
        )));
    }
    let mut payload = vec![0u8; stored_len];
    if let Err(e) = r.read_exact(&mut payload) {
        return if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Ok(WireFrame::Truncated(format!(
                "stream ended inside a {stored_len}-byte payload"
            )))
        } else {
            Err(wire_err(e))
        };
    }
    let computed = crc32(&payload);
    if computed != stored_crc {
        return Ok(WireFrame::Corrupt(format!(
            "CRC mismatch: stored {stored_crc:08x}, computed {computed:08x}"
        )));
    }
    Ok(WireFrame::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fewner-durable-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_payload() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("file.bin");
        let payload = b"{\"theta\": [1, 2, 3]}";
        write_atomic(&path, payload).unwrap();
        assert_eq!(read_verified(&path).unwrap(), payload);
        assert_eq!(
            read_verified_string(&path).unwrap(),
            "{\"theta\": [1, 2, 3]}"
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncation_is_rejected_with_io_error() {
        let dir = tmp_dir("truncate");
        let path = dir.join("file.bin");
        write_atomic(&path, b"a payload that will lose its tail").unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        match read_verified(&path) {
            Err(Error::Io { detail, .. }) => assert!(detail.contains("truncated")),
            other => panic!("expected Io error, got {other:?}"),
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bit_flip_is_rejected_with_crc_mismatch() {
        let dir = tmp_dir("bitflip");
        let path = dir.join("file.bin");
        write_atomic(&path, b"bytes that must stay intact").unwrap();
        let mut full = fs::read(&path).unwrap();
        let last = full.len() - 1;
        full[last] ^= 0x40;
        fs::write(&path, &full).unwrap();
        match read_verified(&path) {
            Err(Error::Io { detail, .. }) => assert!(detail.contains("CRC mismatch")),
            other => panic!("expected Io error, got {other:?}"),
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_and_garbage_are_io_errors() {
        let dir = tmp_dir("garbage");
        assert!(matches!(
            read_verified(dir.join("nope.bin")),
            Err(Error::Io { .. })
        ));
        let path = dir.join("garbage.bin");
        fs::write(&path, b"not a durable file at all\nreally").unwrap();
        assert!(matches!(read_verified(&path), Err(Error::Io { .. })));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn injected_write_faults_behave_as_specified() {
        let dir = tmp_dir("faults");

        // Fail: nothing lands on disk.
        let path = dir.join("fail.bin");
        let err = crate::fault::with_plan(FaultPlan::parse("ckpt_write_fail:1").unwrap(), || {
            write_atomic(&path, b"payload")
        });
        assert!(matches!(err, Err(Error::Io { .. })));
        assert!(!path.exists());

        // Truncate: a torn file lands, and the read rejects it.
        let path = dir.join("torn.bin");
        let err = crate::fault::with_plan(FaultPlan::parse("ckpt_truncate:1").unwrap(), || {
            write_atomic(&path, b"payload payload payload")
        });
        assert!(matches!(err, Err(Error::Io { .. })));
        assert!(path.exists());
        assert!(matches!(read_verified(&path), Err(Error::Io { .. })));

        // Corrupt: the write "succeeds" but the CRC catches it at load.
        let path = dir.join("rot.bin");
        crate::fault::with_plan(FaultPlan::parse("ckpt_corrupt:1").unwrap(), || {
            write_atomic(&path, b"payload payload payload")
        })
        .unwrap();
        match read_verified(&path) {
            Err(Error::Io { detail, .. }) => assert!(detail.contains("CRC mismatch")),
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
        fs::remove_dir_all(dir).ok();
    }
}
