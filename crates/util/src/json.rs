//! A small, dependency-free JSON value type with parser and writers.
//!
//! The reproduction runs in offline / vendored environments where pulling
//! `serde` + `serde_json` from a registry is not always possible, and the
//! only serialisation the project needs is a handful of report and
//! checkpoint formats. This module provides exactly that: an ordered
//! [`Json`] value, a strict parser, compact and pretty writers, and the
//! [`crate::json!`] object-literal macro. Types that persist themselves
//! implement [`ToJson`] / [`FromJson`] by hand — the formats are part of
//! the public contract and reviewed like code.
//!
//! Numbers are stored as `f64` (JSON's native model); integers up to 2⁵³
//! round-trip exactly, which covers every count and seed the project
//! serialises. F32 tensors round-trip bit-exactly through the `f64`
//! widening.

use std::fmt::Write as _;

use crate::error::{Error, Result};

/// A JSON value. Object keys keep insertion order so written files are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (the whole input must be one value).
    ///
    /// Nesting is capped at [`MAX_DEPTH`] containers: the parser recurses
    /// per `[`/`{`, so without the cap a hostile `[[[[…` document would
    /// overflow the stack instead of returning `Err`.
    pub fn parse(text: &str) -> Result<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::Serde(format!(
                "trailing characters at byte {pos} of JSON input"
            )));
        }
        Ok(value)
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors with the missing key's name.
    pub fn field(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| Error::Serde(format!("missing JSON field `{key}`")))
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(Error::Serde(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as an `f32` (checkpoint tensors).
    pub fn as_f32(&self) -> Result<f32> {
        Ok(self.as_f64()? as f32)
    }

    /// The value as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
            return Err(Error::Serde(format!("expected unsigned integer, got {n}")));
        }
        Ok(n as usize)
    }

    /// The value as a `u64` (seeds). Accepts integers up to 2⁵³.
    pub fn as_u64(&self) -> Result<u64> {
        Ok(self.as_usize()? as u64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(Error::Serde(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::Serde(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(Error::Serde(format!("expected array, got {other:?}"))),
        }
    }
}

/// Compact single-line rendering (and `.to_string()` via [`ToString`]).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        f.write_str(&out)
    }
}

/// Serialises a value to [`Json`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Reconstructs a value from [`Json`].
pub trait FromJson: Sized {
    /// Parses `self` out of `json`, with descriptive [`Error::Serde`]
    /// failures on shape mismatches.
    fn from_json(json: &Json) -> Result<Self>;
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Json`] object literal: `json!({ "key": value, ... })`.
/// Values are any `Into<Json>` expression, including nested `json!` calls.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::json::Json::Obj(vec![
            $(($key.to_string(), $crate::json::Json::from($value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::json::Json::Arr(vec![$($crate::json::Json::from($value)),*])
    };
    ($value:expr) => {
        $crate::json::Json::from($value)
    };
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<()> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(Error::Serde(format!(
            "expected `{token}` at byte {pos} of JSON input"
        )))
    }
}

/// Deepest container nesting [`Json::parse`] accepts. Far beyond anything
/// the writers emit, and small enough that the recursive parser stays well
/// inside even a conservative thread stack.
pub const MAX_DEPTH: usize = 512;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json> {
    if depth > MAX_DEPTH {
        return Err(Error::Serde(format!(
            "JSON nesting deeper than {MAX_DEPTH} at byte {pos}"
        )));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::Serde("unexpected end of JSON input".into())),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(Error::Serde(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(Error::Serde(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::Serde(format!("expected `\"` at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::Serde("unterminated JSON string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::Serde("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::Serde("non-ASCII \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::Serde(format!("bad \\u escape `{hex}`")))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(Error::Serde(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole character.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::Serde("invalid UTF-8 in JSON string".into()))?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::Serde("invalid number bytes".into()))?;
    text.parse::<f64>()
        .map_err(|_| Error::Serde(format!("invalid JSON number `{text}`")))
}

fn write_value(value: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(out, indent, depth, ('[', ']'), items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1)
        }),
        Json::Obj(fields) => write_seq(out, indent, depth, ('{', '}'), fields.len(), |out, i| {
            write_string(&fields[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(&fields[i].1, out, indent, depth + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(brackets.0);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The integer fast path below would erase the sign of -0.0, and
        // gradients exchanged between shards must survive bit-exactly.
        out.push_str("-0.0");
    } else if n == n.trunc() && n.abs() < (1u64 << 53) as f64 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest round-trip representation (Rust's float Display).
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_round_trip() {
        let text = r#"{"name":"fewner","n":3,"scores":[0.5,-1.25,2e3],"ok":true,"none":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.field("name").unwrap().as_str().unwrap(), "fewner");
        assert_eq!(v.field("n").unwrap().as_usize().unwrap(), 3);
        assert_eq!(v.field("scores").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.field("ok").unwrap().as_bool().unwrap());
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_reparseable_and_indented() {
        let v = json!({
            "a": 1usize,
            "b": json!([1.5f64, 2.5f64]),
            "c": json!({ "d": "x" }),
        });
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn f32_values_round_trip_bit_exactly() {
        let values = [
            0.1f32,
            -3.4028235e38,
            1.1754944e-38,
            f32::MIN_POSITIVE,
            1.0 / 3.0,
        ];
        for &x in &values {
            let text = Json::from(x).to_string();
            let back = Json::parse(&text).unwrap().as_f32().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t unicode é 中";
        let text = Json::from(s).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        let v = json!({ "a": 1usize });
        assert!(v.field("b").unwrap_err().to_string().contains("`b`"));
        assert!(v.field("a").unwrap().as_str().is_err());
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::from(5000usize).to_string(), "5000");
        assert_eq!(Json::from(0xF3A7u64).to_string(), "62375");
        assert_eq!(Json::from(-3i64).to_string(), "-3");
    }

    #[test]
    fn json_macro_builds_ordered_objects() {
        let v = json!({ "z": 1usize, "a": 2usize });
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }
}
