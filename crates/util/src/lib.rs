//! Shared utilities for the FEWNER reproduction.
//!
//! This crate deliberately has no dependencies: it provides
//!
//! * [`rng`] — a vendored, portable, seedable random number generator
//!   (SplitMix64 seeding a xoshiro256\*\*). Episode sampling, corpus synthesis
//!   and parameter initialisation must be bit-identical across runs and across
//!   library-version upgrades, so we do not rely on an external RNG crate for
//!   anything that affects reproducibility.
//! * [`stats`] — the paper's episode statistics: mean F1 with a 95 % normal
//!   confidence interval (mean ± 1.96·σ/√n, §4.1.1).
//! * [`error`] — the library-wide error type.
//! * [`json`] — a small JSON value with parser/writers for reports and
//!   checkpoints, so the workspace builds without registry access.
//! * [`crc32`] + [`durable`] — integrity-checked, atomic (write-temp,
//!   fsync, rename) file persistence for checkpoints and training
//!   snapshots.
//! * [`fault`] — zero-cost-when-off fault injection (failed/torn/corrupt
//!   writes, failing or panicking task gradients, serve-path connection
//!   drops / adapt stalls / frame corruption) behind the `FEWNER_FAULTS`
//!   environment variable, for crash-recovery and chaos testing.
//! * [`deadline`] — per-request wall-clock budgets, enforced as typed
//!   [`Error::DeadlineExceeded`] at every serving checkpoint.

pub mod crc32;
pub mod deadline;
pub mod durable;
pub mod error;
pub mod fault;
pub mod json;
pub mod rng;
pub mod stats;

pub use crc32::{crc32, Crc32};
pub use deadline::Deadline;
pub use durable::WireFrame;
pub use error::{Error, Result};
pub use json::{FromJson, Json, ToJson};
pub use rng::Rng;
pub use stats::{ci95, mean, MeanCi, OnlineStats};
