//! Fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] arms a small set of failure points that the training,
//! persistence and serving layers consult: the i-th [`task_grad`] call can
//! fail or panic; the i-th durable file write can fail outright, tear
//! (leave a truncated file behind), or silently corrupt a byte; the i-th
//! serve-path response write can drop the connection or corrupt the frame,
//! and the i-th server-side adaptation can stall. The `crash_recovery` and
//! `chaos` test suites plus the CI kill-and-resume / chaos-smoke steps
//! drive these hooks to prove that an interrupted run is always resumable
//! and a faulted daemon stays within its deadlines.
//!
//! The hooks are **zero-cost when off**: the fast path is a single relaxed
//! atomic load. A plan is installed either programmatically
//! ([`install`] / [`with_plan`]) or from the `FEWNER_FAULTS` environment
//! variable, e.g.
//!
//! ```text
//! FEWNER_FAULTS=task_grad_panic:40            # panic on the 40th task_grad
//! FEWNER_FAULTS=ckpt_write_fail:2,ckpt_corrupt:3
//! FEWNER_FAULTS=shard_die:3@1                 # shard 1 aborts in round 3
//! ```
//!
//! Counts are 1-based over the process lifetime. An arm may carry an
//! `@<shard>` scope: it then only counts (and fires) on threads that have
//! declared that shard id via [`set_thread_shard`] — this is how the
//! sharded-training suites and the CI smoke job target exactly one worker
//! even when several shards share a process (or inherit the same
//! `FEWNER_FAULTS` from a driver).
//!
//! [`task_grad`]: https://docs.rs/fewner-core (EpisodicLearner::task_grad)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use crate::error::{Error, Result};

/// What an armed `task_grad` fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// Return a non-finite-gradient error (exercises the skip/divergence
    /// path: the trainer treats it like a numerical blow-up).
    Error,
    /// Panic (exercises the crash path: a worker panic in the parallel
    /// trainer, or a process abort in the serial one).
    Panic,
}

/// What an armed durable-write fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write fails cleanly: nothing reaches disk, an error is returned.
    Fail,
    /// A torn write: half the framed bytes land at the final path, then the
    /// write errors — simulating a crash on a filesystem without atomic
    /// replace semantics.
    Truncate,
    /// Silent bit rot: the full frame is written with one payload byte
    /// flipped, and the write *succeeds* — only the CRC check at load time
    /// can catch it.
    Corrupt,
}

/// What an armed serve-path fault does when it fires (counted per response
/// write for [`ServeFault::ConnDrop`] / [`ServeFault::FrameCorrupt`], per
/// server-side adaptation for [`ServeFault::AdaptStall`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// The server drops the connection instead of writing the response —
    /// the client sees an EOF mid-request and must reconnect + retry.
    ConnDrop,
    /// The server-side adaptation stalls (bounded sleep) before running —
    /// exercises deadline enforcement around a wedged inner loop.
    AdaptStall,
    /// The server corrupts the response frame before writing it — the
    /// client sees a parse failure and must treat the connection as dead.
    FrameCorrupt,
}

/// What an armed shard-exchange fault does to the i-th gradient frame a
/// shard worker sends (counted per partial-gradient send).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFrameFault {
    /// One payload byte is flipped after the CRC was computed — the
    /// coordinator must detect the mismatch and request a retransmit.
    Corrupt,
    /// The second half of the payload is zeroed, length intact — a torn
    /// gradient frame that only the CRC can catch (retransmit, not silent
    /// divergence).
    Torn,
    /// The worker writes half the frame, then drops the connection — the
    /// coordinator sees a truncated stream and must treat the shard as
    /// dead and reassign its task range.
    ConnDrop,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    TaskGradError,
    TaskGradPanic,
    WriteFail,
    WriteTruncate,
    WriteCorrupt,
    ServeConnDrop,
    ServeAdaptStall,
    ServeFrameCorrupt,
    ShardDie,
    ShardConnDrop,
    ShardFrameCorrupt,
    ShardFrameTorn,
}

std::thread_local! {
    static THREAD_SHARD: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Declares which shard the current thread belongs to, for `@<shard>`-scoped
/// arms. `None` clears the scope. Scoped arms never fire (or count) on
/// threads without a matching declaration.
pub fn set_thread_shard(shard: Option<u64>) {
    THREAD_SHARD.with(|s| s.set(shard));
}

#[derive(Debug)]
struct Arm {
    kind: Kind,
    /// Fires on the `at`-th matching call (1-based).
    at: u64,
    /// `Some(k)`: only counts on threads that declared shard `k`.
    scope: Option<u64>,
    seen: AtomicU64,
}

impl Arm {
    /// Counts one matching call; true exactly when this call is the
    /// `at`-th. Out-of-scope calls neither count nor fire.
    fn tick(&self) -> bool {
        if let Some(scope) = self.scope {
            if THREAD_SHARD.with(|s| s.get()) != Some(scope) {
                return false;
            }
        }
        self.seen.fetch_add(1, Ordering::Relaxed) + 1 == self.at
    }
}

/// An armed set of failure points. See the module docs for the spec syntax.
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: Vec<Arm>,
}

impl FaultPlan {
    /// Parses a comma-separated `kind:count[@shard]` spec
    /// (`task_grad_err | task_grad_panic | ckpt_write_fail | ckpt_truncate
    /// | ckpt_corrupt | serve_conn_drop | serve_adapt_stall |
    /// serve_frame_corrupt | shard_die | shard_conn_drop |
    /// shard_frame_corrupt | shard_frame_torn`).
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let mut arms = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (kind, count) = part.trim().split_once(':').ok_or_else(|| {
                Error::InvalidConfig(format!("fault spec `{part}` is not `kind:count`"))
            })?;
            let (count, scope) = match count.split_once('@') {
                Some((count, shard)) => {
                    let shard: u64 = shard.trim().parse().map_err(|_| {
                        Error::InvalidConfig(format!("fault scope `@{shard}` is not a shard id"))
                    })?;
                    (count, Some(shard))
                }
                None => (count, None),
            };
            let at: u64 = count.trim().parse().map_err(|_| {
                Error::InvalidConfig(format!("fault count `{count}` is not an integer"))
            })?;
            if at == 0 {
                return Err(Error::InvalidConfig(
                    "fault counts are 1-based; 0 never fires".into(),
                ));
            }
            let kind = match kind.trim() {
                "task_grad_err" => Kind::TaskGradError,
                "task_grad_panic" => Kind::TaskGradPanic,
                "ckpt_write_fail" => Kind::WriteFail,
                "ckpt_truncate" => Kind::WriteTruncate,
                "ckpt_corrupt" => Kind::WriteCorrupt,
                "serve_conn_drop" => Kind::ServeConnDrop,
                "serve_adapt_stall" => Kind::ServeAdaptStall,
                "serve_frame_corrupt" => Kind::ServeFrameCorrupt,
                "shard_die" => Kind::ShardDie,
                "shard_conn_drop" => Kind::ShardConnDrop,
                "shard_frame_corrupt" => Kind::ShardFrameCorrupt,
                "shard_frame_torn" => Kind::ShardFrameTorn,
                other => {
                    return Err(Error::InvalidConfig(format!(
                        "unknown fault kind `{other}`"
                    )));
                }
            };
            arms.push(Arm {
                kind,
                at,
                scope,
                seen: AtomicU64::new(0),
            });
        }
        Ok(FaultPlan { arms })
    }

    /// Parses the `FEWNER_FAULTS` environment variable, if set and valid.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("FEWNER_FAULTS").ok()?;
        FaultPlan::parse(&spec).ok().filter(|p| !p.arms.is_empty())
    }

    /// Counts one `task_grad` call; returns a fault if one fires now.
    pub fn on_task_grad(&self) -> Option<TaskFault> {
        let mut fired = None;
        for arm in &self.arms {
            let matches = matches!(arm.kind, Kind::TaskGradError | Kind::TaskGradPanic);
            if matches && arm.tick() {
                fired = Some(match arm.kind {
                    Kind::TaskGradError => TaskFault::Error,
                    _ => TaskFault::Panic,
                });
            }
        }
        fired
    }

    /// Counts one serve-path response write; returns a fault if one fires
    /// now. Connection-drop and frame-corrupt arms share this tick stream
    /// (each arm keeps its own counter, like the write faults).
    pub fn on_serve_response(&self) -> Option<ServeFault> {
        let mut fired = None;
        for arm in &self.arms {
            let matches = matches!(arm.kind, Kind::ServeConnDrop | Kind::ServeFrameCorrupt);
            if matches && arm.tick() {
                fired = Some(match arm.kind {
                    Kind::ServeConnDrop => ServeFault::ConnDrop,
                    _ => ServeFault::FrameCorrupt,
                });
            }
        }
        fired
    }

    /// Counts one server-side adaptation; true when a stall fires now.
    pub fn on_serve_adapt(&self) -> bool {
        let mut fired = false;
        for arm in &self.arms {
            if arm.kind == Kind::ServeAdaptStall && arm.tick() {
                fired = true;
            }
        }
        fired
    }

    /// Counts one shard-round entry; true when the worker must abort the
    /// whole process now (simulating a machine loss mid-training).
    pub fn on_shard_round(&self) -> bool {
        let mut fired = false;
        for arm in &self.arms {
            if arm.kind == Kind::ShardDie && arm.tick() {
                fired = true;
            }
        }
        fired
    }

    /// Counts one partial-gradient frame send; returns a fault if one
    /// fires now. Corrupt/torn/conn-drop arms share this tick stream (each
    /// arm keeps its own counter, like the write faults).
    pub fn on_shard_frame(&self) -> Option<ShardFrameFault> {
        let mut fired = None;
        for arm in &self.arms {
            let matches = matches!(
                arm.kind,
                Kind::ShardConnDrop | Kind::ShardFrameCorrupt | Kind::ShardFrameTorn
            );
            if matches && arm.tick() {
                fired = Some(match arm.kind {
                    Kind::ShardConnDrop => ShardFrameFault::ConnDrop,
                    Kind::ShardFrameCorrupt => ShardFrameFault::Corrupt,
                    _ => ShardFrameFault::Torn,
                });
            }
        }
        fired
    }

    /// Counts one durable write; returns a fault if one fires now.
    pub fn on_durable_write(&self) -> Option<WriteFault> {
        let mut fired = None;
        for arm in &self.arms {
            let matches = matches!(
                arm.kind,
                Kind::WriteFail | Kind::WriteTruncate | Kind::WriteCorrupt
            );
            if matches && arm.tick() {
                fired = Some(match arm.kind {
                    Kind::WriteFail => WriteFault::Fail,
                    Kind::WriteTruncate => WriteFault::Truncate,
                    _ => WriteFault::Corrupt,
                });
            }
        }
        fired
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
    &SLOT
}

fn lock_slot() -> std::sync::MutexGuard<'static, Option<Arc<FaultPlan>>> {
    // A panicking fault *is* the point of this module; don't let the poison
    // flag cascade into unrelated tests.
    plan_slot().lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs (or clears, with `None`) the process-wide fault plan.
pub fn install(plan: Option<Arc<FaultPlan>>) {
    // Make sure the env probe doesn't later overwrite an explicit install.
    ENV_INIT.call_once(|| {});
    let enabled = plan.is_some();
    *lock_slot() = plan;
    ENABLED.store(enabled, Ordering::Release);
}

/// The active plan, if any. First use probes `FEWNER_FAULTS`.
pub fn active() -> Option<Arc<FaultPlan>> {
    ENV_INIT.call_once(|| {
        if let Some(plan) = FaultPlan::from_env() {
            *lock_slot() = Some(Arc::new(plan));
            ENABLED.store(true, Ordering::Release);
        }
    });
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    lock_slot().clone()
}

/// Fault check for one `task_grad` call (no-op without an active plan).
pub fn task_grad_fault() -> Option<TaskFault> {
    active()?.on_task_grad()
}

/// Fault check for one durable write (no-op without an active plan).
pub fn durable_write_fault() -> Option<WriteFault> {
    active()?.on_durable_write()
}

/// Fault check for one serve-path response write (no-op without a plan).
pub fn serve_response_fault() -> Option<ServeFault> {
    active()?.on_serve_response()
}

/// Fault check for one server-side adaptation (no-op without a plan).
pub fn serve_adapt_stall_fault() -> bool {
    active().is_some_and(|p| p.on_serve_adapt())
}

/// Fault check for one shard round (no-op without a plan). True means the
/// worker must abort the process.
pub fn shard_die_fault() -> bool {
    active().is_some_and(|p| p.on_shard_round())
}

/// Fault check for one partial-gradient frame send (no-op without a plan).
pub fn shard_frame_fault() -> Option<ShardFrameFault> {
    active()?.on_shard_frame()
}

/// Runs `f` with `plan` installed, then clears it. Calls are serialised
/// process-wide so concurrent tests cannot observe each other's faults.
pub fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    install(Some(Arc::new(plan)));
    struct Clear;
    impl Drop for Clear {
        fn drop(&mut self) {
            install(None);
        }
    }
    let _clear = Clear;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_kinds_and_rejects_junk() {
        let plan = FaultPlan::parse("task_grad_err:3, ckpt_corrupt:1").unwrap();
        assert_eq!(plan.arms.len(), 2);
        assert!(FaultPlan::parse("task_grad_err").is_err());
        assert!(FaultPlan::parse("task_grad_err:x").is_err());
        assert!(FaultPlan::parse("task_grad_err:0").is_err());
        assert!(FaultPlan::parse("explode:1").is_err());
        assert!(FaultPlan::parse("").unwrap().arms.is_empty());
    }

    #[test]
    fn arms_fire_exactly_once_at_their_count() {
        let plan = FaultPlan::parse("task_grad_panic:3").unwrap();
        assert_eq!(plan.on_task_grad(), None);
        assert_eq!(plan.on_task_grad(), None);
        assert_eq!(plan.on_task_grad(), Some(TaskFault::Panic));
        assert_eq!(plan.on_task_grad(), None);
    }

    #[test]
    fn task_and_write_counters_are_independent() {
        let plan = FaultPlan::parse("task_grad_err:1,ckpt_write_fail:2").unwrap();
        assert_eq!(plan.on_durable_write(), None);
        assert_eq!(plan.on_task_grad(), Some(TaskFault::Error));
        assert_eq!(plan.on_durable_write(), Some(WriteFault::Fail));
    }

    #[test]
    fn serve_faults_parse_and_fire_independently() {
        let plan = FaultPlan::parse("serve_conn_drop:1,serve_frame_corrupt:2,serve_adapt_stall:2")
            .unwrap();
        // Response writes and adaptations are separate tick streams.
        assert!(!plan.on_serve_adapt());
        assert_eq!(plan.on_serve_response(), Some(ServeFault::ConnDrop));
        assert_eq!(plan.on_serve_response(), Some(ServeFault::FrameCorrupt));
        assert_eq!(plan.on_serve_response(), None);
        assert!(plan.on_serve_adapt());
        assert!(!plan.on_serve_adapt());
        assert!(FaultPlan::parse("serve_conn_drop:0").is_err());
    }

    #[test]
    fn shard_faults_parse_and_fire_independently() {
        let plan = FaultPlan::parse(
            "shard_die:2,shard_frame_corrupt:1,shard_frame_torn:2,shard_conn_drop:3",
        )
        .unwrap();
        assert!(!plan.on_shard_round());
        assert!(plan.on_shard_round());
        assert!(!plan.on_shard_round());
        assert_eq!(plan.on_shard_frame(), Some(ShardFrameFault::Corrupt));
        assert_eq!(plan.on_shard_frame(), Some(ShardFrameFault::Torn));
        assert_eq!(plan.on_shard_frame(), Some(ShardFrameFault::ConnDrop));
        assert_eq!(plan.on_shard_frame(), None);
    }

    #[test]
    fn scoped_arms_only_count_on_the_declared_shard() {
        let plan = FaultPlan::parse("shard_die:2@1").unwrap();
        // No declaration: never counts.
        assert!(!plan.on_shard_round());
        assert!(!plan.on_shard_round());
        // Wrong shard: never counts.
        set_thread_shard(Some(0));
        assert!(!plan.on_shard_round());
        // Matching shard: the scoped counter starts from zero here.
        set_thread_shard(Some(1));
        assert!(!plan.on_shard_round());
        assert!(plan.on_shard_round());
        assert!(!plan.on_shard_round());
        set_thread_shard(None);

        assert!(FaultPlan::parse("shard_die:1@x").is_err());
        assert!(FaultPlan::parse("shard_die:0@1").is_err());
    }

    #[test]
    fn with_plan_scopes_the_installation() {
        assert!(task_grad_fault().is_none());
        let fired = with_plan(FaultPlan::parse("task_grad_err:1").unwrap(), || {
            task_grad_fault()
        });
        assert_eq!(fired, Some(TaskFault::Error));
        assert!(task_grad_fault().is_none());
    }
}
