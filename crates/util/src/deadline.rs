//! Per-request time budgets.
//!
//! A [`Deadline`] is created when a request enters the system and travels
//! with it through every layer — admission, the bounded queue, the φ-cache
//! single-flight wait, the adapt loop. Each enforcement point calls
//! [`Deadline::check`] (or sizes a timed wait from [`Deadline::remaining`])
//! so a slow stage surfaces as a typed [`Error::DeadlineExceeded`] instead
//! of a pinned thread. The budget is wall-clock ([`Instant`]-based): it
//! bounds what the *caller* experiences, which is the point.

use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// A wall-clock time budget anchored at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget_ms` milliseconds from now.
    pub fn from_ms(budget_ms: u64) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget: Duration::from_millis(budget_ms),
        }
    }

    /// The total budget in milliseconds (for error reporting and the wire).
    pub fn budget_ms(&self) -> u64 {
        self.budget.as_millis() as u64
    }

    /// Time left, or `None` once the budget is spent. Use this to size
    /// timed waits (`Condvar::wait_timeout`, `recv_timeout`, socket
    /// timeouts) so a blocked request wakes exactly when its budget does.
    pub fn remaining(&self) -> Option<Duration> {
        self.budget.checked_sub(self.start.elapsed())
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }

    /// Returns [`Error::DeadlineExceeded`] naming `stage` if the budget is
    /// spent; cheap enough to call between loop iterations.
    pub fn check(&self, stage: &str) -> Result<()> {
        if self.expired() {
            return Err(Error::DeadlineExceeded {
                budget_ms: self.budget_ms(),
                stage: stage.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_its_budget() {
        let d = Deadline::from_ms(10_000);
        assert_eq!(d.budget_ms(), 10_000);
        assert!(!d.expired());
        assert!(d.check("test").is_ok());
        let rem = d.remaining().expect("fresh deadline has time left");
        assert!(rem <= Duration::from_millis(10_000));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::from_ms(0);
        assert!(d.expired());
        assert_eq!(d.remaining(), None);
        match d.check("admission") {
            Err(Error::DeadlineExceeded { budget_ms, stage }) => {
                assert_eq!(budget_ms, 0);
                assert_eq!(stage, "admission");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_budget_expires() {
        let d = Deadline::from_ms(1);
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert!(d.check("queue_wait").is_err());
    }
}
