//! CRC-32 (IEEE 802.3) checksums.
//!
//! Durable files (checkpoints, training snapshots) carry a CRC over their
//! payload so that truncation and bit rot are detected at load time instead
//! of surfacing as a confusing parse error — or worse, as silently wrong
//! parameters. The workspace builds offline, so the polynomial table is
//! generated in a `const fn` rather than pulled from a crate.

/// The reflected IEEE polynomial used by zip, PNG, Ethernet, …
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state; feed bytes with [`Crc32::update`] and read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The final digest.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_reference_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"durable checkpoints need integrity checks";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..64 {
            data[byte] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {byte} undetected");
            data[byte] ^= 1;
        }
    }
}
