//! Library-wide error type.
//!
//! The FEWNER crates are a library first: fallible public APIs return
//! [`Result`] rather than panicking, and the error variants carry enough
//! context to act on programmatically (which dimension mismatched, which
//! vocabulary was missing a token, why an episode could not be built).

use std::fmt;

/// Errors produced by the FEWNER crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A tensor operation received operands with incompatible shapes.
    ShapeMismatch {
        /// The operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Human-readable description of the offending shapes.
        detail: String,
    },
    /// An index was out of bounds for the container it addressed.
    IndexOutOfBounds {
        /// What was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// An N-way K-shot episode could not be constructed from the data given
    /// (e.g. fewer than N classes present, or a class with < K mentions).
    EpisodeConstruction(String),
    /// A configuration value was invalid (zero ways, empty corpus, …).
    InvalidConfig(String),
    /// A tag sequence violated the BIO scheme in a way that cannot be
    /// repaired (used by strict decoders; lenient decoding never fails).
    InvalidTagSequence(String),
    /// Numerical failure: a loss or gradient became non-finite.
    NonFinite {
        /// Where the non-finite value was observed.
        context: String,
    },
    /// (De)serialisation failure.
    Serde(String),
    /// A filesystem operation failed. Distinct from [`Error::Serde`]: the
    /// bytes never made it to or from disk intact (missing file, permission
    /// problem, truncation, checksum mismatch), as opposed to well-read
    /// bytes that failed to parse.
    Io {
        /// The path the operation concerned.
        path: String,
        /// What went wrong (usually the OS error or the integrity failure).
        detail: String,
    },
    /// Meta-training diverged: every recent meta-batch produced a
    /// non-finite loss or gradient and was skipped. Carries the tail of the
    /// loss history so the abort message shows the trajectory into the
    /// divergence.
    Diverged {
        /// How many consecutive meta-batches were skipped.
        consecutive_skips: usize,
        /// The most recent recorded (finite) losses, oldest first.
        loss_tail: Vec<f32>,
    },
    /// A worker thread panicked inside a parallel section. The panic is
    /// contained and surfaced as an error so one bad episode or task cannot
    /// abort a multi-hour table run.
    WorkerPanic {
        /// Which parallel section the worker belonged to.
        context: String,
    },
    /// A serving request was shed by admission control: the work queue was
    /// at capacity, and waiting would trade bounded latency for unbounded.
    /// The caller should back off and retry; this is load shedding, not a
    /// fault.
    Overloaded {
        /// Queue depth observed at admission time.
        queue_depth: usize,
        /// The configured admission limit the depth hit.
        limit: usize,
    },
    /// A request ran out of its time budget before the work finished. The
    /// request was abandoned at a checkpoint (admission, queue wait, cache
    /// wait, adapt) rather than allowed to pin a thread indefinitely; the
    /// caller may retry with a fresh budget.
    DeadlineExceeded {
        /// The request's total budget in milliseconds.
        budget_ms: u64,
        /// The enforcement point that observed the expiry (`admission`,
        /// `queue_wait`, `phi_wait`, `adapt`, …).
        stage: String,
    },
    /// A wire frame exceeded the protocol's size bound before its
    /// terminator arrived. The connection is no longer at a frame boundary,
    /// so the peer closes it after reporting this error.
    FrameTooLarge {
        /// Bytes observed before the read was abandoned.
        len: usize,
        /// The configured maximum frame size in bytes.
        limit: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in `{op}`: {detail}")
            }
            Error::IndexOutOfBounds { what, index, len } => {
                write!(f, "index {index} out of bounds for {what} of length {len}")
            }
            Error::EpisodeConstruction(msg) => write!(f, "episode construction failed: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidTagSequence(msg) => write!(f, "invalid tag sequence: {msg}"),
            Error::NonFinite { context } => write!(f, "non-finite value encountered: {context}"),
            Error::Serde(msg) => write!(f, "serialisation error: {msg}"),
            Error::Io { path, detail } => write!(f, "io error on `{path}`: {detail}"),
            Error::Diverged {
                consecutive_skips,
                loss_tail,
            } => {
                write!(
                    f,
                    "training diverged: {consecutive_skips} consecutive meta-batches skipped \
                     (non-finite loss/gradient); last finite losses: {loss_tail:?}"
                )
            }
            Error::WorkerPanic { context } => {
                write!(f, "worker thread panicked in {context}")
            }
            Error::Overloaded { queue_depth, limit } => {
                write!(
                    f,
                    "server overloaded: queue depth {queue_depth} at admission limit {limit}; \
                     request shed, retry with backoff"
                )
            }
            Error::DeadlineExceeded { budget_ms, stage } => {
                write!(
                    f,
                    "deadline exceeded: {budget_ms}ms budget ran out during {stage}"
                )
            }
            Error::FrameTooLarge { len, limit } => {
                write!(
                    f,
                    "frame too large: {len} bytes exceed the {limit}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across all FEWNER crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::ShapeMismatch {
            op: "matmul",
            detail: "[2, 3] x [4, 5]".into(),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn io_and_diverged_display_their_context() {
        let e = Error::Io {
            path: "/tmp/model.json".into(),
            detail: "CRC mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("/tmp/model.json") && s.contains("CRC mismatch"));
        let d = Error::Diverged {
            consecutive_skips: 12,
            loss_tail: vec![1.5, 2.0],
        };
        let s = d.to_string();
        assert!(s.contains("12") && s.contains("1.5"));
    }

    #[test]
    fn overloaded_reports_depth_and_limit() {
        let e = Error::Overloaded {
            queue_depth: 64,
            limit: 64,
        };
        let s = e.to_string();
        assert!(s.contains("overloaded") && s.contains("64"));
    }

    #[test]
    fn deadline_and_frame_errors_carry_their_numbers() {
        let e = Error::DeadlineExceeded {
            budget_ms: 150,
            stage: "phi_wait".into(),
        };
        let s = e.to_string();
        assert!(s.contains("150ms") && s.contains("phi_wait"));
        let e = Error::FrameTooLarge {
            len: 2048,
            limit: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("2048") && s.contains("1024"));
    }

    #[test]
    fn index_error_formats_fields() {
        let e = Error::IndexOutOfBounds {
            what: "vocab",
            index: 7,
            len: 3,
        };
        assert_eq!(e.to_string(), "index 7 out of bounds for vocab of length 3");
    }
}
