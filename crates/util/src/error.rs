//! Library-wide error type.
//!
//! The FEWNER crates are a library first: fallible public APIs return
//! [`Result`] rather than panicking, and the error variants carry enough
//! context to act on programmatically (which dimension mismatched, which
//! vocabulary was missing a token, why an episode could not be built).

use std::fmt;

/// Errors produced by the FEWNER crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A tensor operation received operands with incompatible shapes.
    ShapeMismatch {
        /// The operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Human-readable description of the offending shapes.
        detail: String,
    },
    /// An index was out of bounds for the container it addressed.
    IndexOutOfBounds {
        /// What was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// An N-way K-shot episode could not be constructed from the data given
    /// (e.g. fewer than N classes present, or a class with < K mentions).
    EpisodeConstruction(String),
    /// A configuration value was invalid (zero ways, empty corpus, …).
    InvalidConfig(String),
    /// A tag sequence violated the BIO scheme in a way that cannot be
    /// repaired (used by strict decoders; lenient decoding never fails).
    InvalidTagSequence(String),
    /// Numerical failure: a loss or gradient became non-finite.
    NonFinite {
        /// Where the non-finite value was observed.
        context: String,
    },
    /// (De)serialisation failure.
    Serde(String),
    /// A worker thread panicked inside a parallel section. The panic is
    /// contained and surfaced as an error so one bad episode or task cannot
    /// abort a multi-hour table run.
    WorkerPanic {
        /// Which parallel section the worker belonged to.
        context: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in `{op}`: {detail}")
            }
            Error::IndexOutOfBounds { what, index, len } => {
                write!(f, "index {index} out of bounds for {what} of length {len}")
            }
            Error::EpisodeConstruction(msg) => write!(f, "episode construction failed: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidTagSequence(msg) => write!(f, "invalid tag sequence: {msg}"),
            Error::NonFinite { context } => write!(f, "non-finite value encountered: {context}"),
            Error::Serde(msg) => write!(f, "serialisation error: {msg}"),
            Error::WorkerPanic { context } => {
                write!(f, "worker thread panicked in {context}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across all FEWNER crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::ShapeMismatch {
            op: "matmul",
            detail: "[2, 3] x [4, 5]".into(),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn index_error_formats_fields() {
        let e = Error::IndexOutOfBounds {
            what: "vocab",
            index: 7,
            len: 3,
        };
        assert_eq!(e.to_string(), "index 7 out of bounds for vocab of length 3");
    }
}
