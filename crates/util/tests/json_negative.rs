//! Negative-path tests for the hand-rolled JSON parser (ISSUE 4,
//! satellite 3): malformed, truncated, and adversarially nested input must
//! return `Err` — never panic, never overflow the stack.
//!
//! The fuzz-style loops mutate *valid* documents (truncation at every byte
//! boundary, single-byte substitutions) because mutations of near-valid
//! input reach far deeper into the parser than random byte soup.

use fewner_util::json::MAX_DEPTH;
use fewner_util::{Json, Rng};

/// A representative valid document exercising every value type, escapes,
/// nesting and number shapes.
const VALID: &str = r#"{"name":"trace \"x\" é","on":true,"off":false,"none":null,"n":-12.5e-3,"list":[1,2,[3,{"k":"v"}]],"empty":{},"blank":[]}"#;

#[test]
fn the_reference_document_parses() {
    let v = Json::parse(VALID).unwrap();
    assert!(v.get("list").is_some());
}

/// Every proper prefix of a valid document is itself invalid JSON (the
/// document only closes at the final byte) — each must be a clean `Err`.
#[test]
fn every_truncation_errors_without_panicking() {
    for cut in 0..VALID.len() {
        if !VALID.is_char_boundary(cut) {
            continue;
        }
        let prefix = &VALID[..cut];
        assert!(
            Json::parse(prefix).is_err(),
            "prefix of {cut} bytes parsed: {prefix:?}"
        );
    }
}

/// Single-byte substitutions over the whole document: any outcome is
/// allowed (some mutations stay valid JSON) but the parser must return,
/// not panic. ~3k mutated documents.
#[test]
fn byte_mutations_never_panic() {
    let mut rng = Rng::new(0xF00D);
    let bytes = VALID.as_bytes();
    for i in 0..bytes.len() {
        for _ in 0..12 {
            let mut mutated = bytes.to_vec();
            mutated[i] = rng.below(256) as u8;
            // Only valid UTF-8 can reach Json::parse (&str input); invalid
            // mutations are exactly the ones the type system already stops.
            if let Ok(text) = std::str::from_utf8(&mutated) {
                let _ = Json::parse(text);
            }
        }
    }
}

/// Structural characters are the highest-value mutation targets: flip each
/// brace/bracket/quote/comma/colon to each other structural character.
#[test]
fn structural_swaps_never_panic() {
    let structural = [b'{', b'}', b'[', b']', b'"', b',', b':'];
    let bytes = VALID.as_bytes();
    for i in 0..bytes.len() {
        if !structural.contains(&bytes[i]) {
            continue;
        }
        for &alt in &structural {
            let mut mutated = bytes.to_vec();
            mutated[i] = alt;
            if let Ok(text) = std::str::from_utf8(&mutated) {
                let _ = Json::parse(text);
            }
        }
    }
}

/// 100k unclosed `[`: without the depth cap this is a stack overflow
/// (an abort, not a catchable panic); with it, a plain `Err`.
#[test]
fn deep_array_nesting_errors_instead_of_overflowing() {
    let deep = "[".repeat(100_000);
    assert!(Json::parse(&deep).is_err());
    // Same attack, properly closed — still rejected, not parsed slowly.
    let closed = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
    assert!(Json::parse(&closed).is_err());
    // Objects recurse through the same path.
    let objs = r#"{"k":"#.repeat(100_000);
    assert!(Json::parse(&objs).is_err());
}

/// Nesting exactly at the cap parses; one past it errors. Pins the cap so
/// a refactor can't silently lower it below what the writers emit.
#[test]
fn depth_limit_is_exact() {
    let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    assert!(Json::parse(&ok).is_ok(), "depth {MAX_DEPTH} must parse");
    let too_deep = format!(
        "{}0{}",
        "[".repeat(MAX_DEPTH + 1),
        "]".repeat(MAX_DEPTH + 1)
    );
    assert!(Json::parse(&too_deep).is_err());
}

/// Classic malformed shapes, each a specific parser branch.
#[test]
fn malformed_documents_error_cleanly() {
    for doc in [
        "",
        "   ",
        "nul",
        "tru",
        "falsy",
        "1.2.3",
        "1e",
        "--5",
        "\"unterminated",
        "\"bad \\q escape\"",
        "\"trunc \\u12",
        "\"lone surrogate ok\\ud800\"", // must not panic even if accepted
        "[1,]",
        "[1 2]",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{a:1}",
        "{\"a\":1 \"b\":2}",
        "[}",
        "{]",
        "1 2",
        "[1] []",
    ] {
        // Every document must return; all but the lone-surrogate case err.
        let parsed = Json::parse(doc);
        if doc.contains("surrogate") {
            let _ = parsed;
        } else {
            assert!(parsed.is_err(), "`{doc}` should not parse");
        }
    }
}

/// Documented leniency: numbers delegate to Rust's `f64` grammar, which is
/// a superset of JSON's (`+1`, `.5`, `5.` parse). Pinned so a future
/// strictness change is a conscious one.
#[test]
fn number_parsing_is_lenient_by_design() {
    assert_eq!(Json::parse("+1").unwrap(), Json::Num(1.0));
    assert_eq!(Json::parse(".5").unwrap(), Json::Num(0.5));
    assert_eq!(Json::parse("5.").unwrap(), Json::Num(5.0));
}
