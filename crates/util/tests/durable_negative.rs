//! Negative-path tests for the durable file header (ISSUE 7, satellite 1):
//! corrupt length prefixes, absurd declared lengths, and truncation at
//! every byte must all fail verification with a clean `Err` — the reader
//! never trusts the header to size an allocation, and it never panics.

use std::path::PathBuf;

use fewner_util::durable::{read_verified, write_atomic, MAGIC};

const PAYLOAD: &[u8] = b"{\"phi\":[1.0,2.0,3.0],\"n_ways\":2}";

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fewner-durable-neg-{tag}-{}", std::process::id()))
}

/// Writes a valid durable file, then hands its header fields and payload to
/// `mutate` to produce the adversarial bytes actually written back.
fn with_mutated_file(
    tag: &str,
    mutate: impl FnOnce(&str, u32, usize, &[u8]) -> Vec<u8>,
) -> PathBuf {
    let path = scratch(tag);
    write_atomic(&path, PAYLOAD).expect("seed write");
    let bytes = std::fs::read(&path).expect("read back");
    let newline = bytes.iter().position(|&b| b == b'\n').expect("header line");
    let header = std::str::from_utf8(&bytes[..newline]).expect("utf8 header");
    let mut parts = header.split(' ');
    let magic = parts.next().expect("magic");
    assert_eq!(magic, MAGIC);
    let crc = u32::from_str_radix(parts.next().expect("crc"), 16).expect("crc hex");
    let len: usize = parts.next().expect("len").parse().expect("len digits");
    let mutated = mutate(magic, crc, len, &bytes[newline + 1..]);
    std::fs::write(&path, mutated).expect("write mutation");
    path
}

#[test]
fn the_reference_file_verifies() {
    let path = scratch("ok");
    write_atomic(&path, PAYLOAD).unwrap();
    assert_eq!(read_verified(&path).unwrap(), PAYLOAD);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_length_prefix_is_rejected() {
    let path = with_mutated_file("badlen", |magic, crc, _len, payload| {
        let mut out = format!("{magic} {crc:08x} not-a-number\n").into_bytes();
        out.extend_from_slice(payload);
        out
    });
    let err = read_verified(&path).unwrap_err().to_string();
    assert!(err.contains("length"), "unexpected error: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn huge_declared_length_is_rejected_not_trusted() {
    // A header claiming ~4 GiB over a 32-byte payload: the reader compares
    // against the bytes actually present instead of allocating what the
    // header demands.
    let path = with_mutated_file("hugelen", |magic, crc, _len, payload| {
        let mut out = format!("{magic} {crc:08x} 4294967296\n").into_bytes();
        out.extend_from_slice(payload);
        out
    });
    let err = read_verified(&path).unwrap_err().to_string();
    assert!(
        err.contains("truncated or padded"),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_crc_field_is_rejected() {
    let path = with_mutated_file("badcrc", |magic, _crc, len, payload| {
        let mut out = format!("{magic} zzzzzzzz {len}\n").into_bytes();
        out.extend_from_slice(payload);
        out
    });
    assert!(read_verified(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_payload_byte_fails_the_crc() {
    let path = with_mutated_file("bitflip", |magic, crc, len, payload| {
        let mut out = format!("{magic} {crc:08x} {len}\n").into_bytes();
        let mut payload = payload.to_vec();
        payload[len / 2] ^= 0x01;
        out.extend_from_slice(&payload);
        out
    });
    let err = read_verified(&path).unwrap_err().to_string();
    assert!(err.contains("CRC mismatch"), "unexpected error: {err}");
    std::fs::remove_file(&path).ok();
}

/// Mirrors `json_negative`'s truncation sweep: every proper prefix of a
/// valid durable file must fail verification cleanly — a half-written file
/// (torn write, full disk) can never be mistaken for a good one.
#[test]
fn every_truncation_errors_without_panicking() {
    let path = scratch("trunc");
    write_atomic(&path, PAYLOAD).unwrap();
    let full = std::fs::read(&path).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        assert!(
            read_verified(&path).is_err(),
            "prefix of {cut}/{} bytes verified",
            full.len()
        );
    }
    std::fs::remove_file(&path).ok();
}
